//! Offline shim for the `serde_json` entry points this workspace calls:
//! [`to_string`] and [`to_string_pretty`] over the vendored `serde`
//! [`Serialize`](serde::Serialize) trait. See `vendor/README.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::fmt;

/// Serialization error.
///
/// The shim's emitters are infallible, so this type is never constructed; it
/// exists to keep call sites (`Result`-based signatures, `?`, `.expect`)
/// source-compatible with real `serde_json`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.write_json(&mut out, false, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.write_json(&mut out, true, 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn compact_and_pretty() {
        let v = vec![1u32, 2];
        assert_eq!(super::to_string(&v).unwrap(), "[1,2]");
        assert_eq!(super::to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
