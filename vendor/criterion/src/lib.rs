//! Offline shim for the slice of the [`criterion`] benchmarking API this
//! workspace uses: `criterion_group!`/`criterion_main!`, benchmark groups
//! with `sample_size`/`warm_up_time`/`measurement_time`, `bench_function`,
//! `bench_with_input`, and `Bencher::{iter, iter_batched}`.
//!
//! Instead of criterion's full statistical pipeline the shim runs a short
//! warm-up, then takes `sample_size` timed samples and reports
//! median / mean / min per-iteration latency to stdout. That is enough to
//! compare structures at a glance and, more importantly, keeps
//! `cargo bench` runnable in the offline container. Swap the real crate back
//! in via `[workspace.dependencies]`; see `vendor/README.md`.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
///
/// Forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost across routine calls. The shim
/// always runs one setup per routine call, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; criterion would batch many per sample.
    SmallInput,
    /// Large inputs; criterion would batch few per sample.
    LargeInput,
    /// Exactly one setup+routine per measured iteration.
    PerIteration,
}

/// Identifies a benchmark within a group: a function name plus an optional
/// parameter rendered as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id labelled `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; drives the measured iterations.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, one sample per call, after a short warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_until = Instant::now() + self.warm_up_time.min(Duration::from_millis(50));
        while Instant::now() < warm_up_until {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up round keeps large-input benches from doubling their
        // runtime in the shim.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine a mutable
    /// reference to the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup()));
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{name:<40} median {:>10}   mean {:>10}   min {:>10}   ({} samples)",
        format_duration(median),
        format_duration(mean),
        format_duration(min),
        sorted.len()
    );
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration (capped at 50 ms in the shim).
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Accepted for API compatibility; the shim's measurement length is
    /// `sample_size` iterations, not wall-clock time.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &samples);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (separator line, matching criterion's API).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Reads CLI configuration. The shim accepts and ignores criterion's
    /// flags (`--bench`, filters) so `cargo bench` invocations pass through.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(10),
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(10);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: 10,
            warm_up_time: Duration::from_millis(10),
        };
        f(&mut bencher);
        report(&id.to_string(), &samples);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("iter", |b| b.iter(|| 1 + 1));
            g.bench_function(BenchmarkId::new("batched", 7), |b| {
                b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
            });
            g.finish();
            ran += 1;
        }
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
