//! Offline shim for the subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API used by this workspace.
//!
//! The build container has no access to crates.io, so the workspace vendors a
//! minimal, API-compatible replacement (see `vendor/README.md`). The shim
//! provides:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits with `gen`, `gen_range`
//!   (half-open and inclusive integer ranges, plus float ranges), `gen_bool`,
//!   `next_u32`/`next_u64`/`fill_bytes`, and `seed_from_u64`;
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256\*\* seeded through SplitMix64, the standard construction);
//! * [`rngs::OsRng`] — process-entropy draws built on
//!   `std::collections::hash_map::RandomState`, which sources OS entropy.
//!
//! The workspace's history-independence tests χ²-test the *distributions*
//! these generators produce, so statistical quality matters: xoshiro256\*\*
//! passes BigCrush and its low-order bits are full-period. The shim is **not**
//! cryptographically secure — the real `StdRng` (ChaCha12) is, and deployments
//! that rely on secret coins should swap the real crate back in via the
//! `[workspace.dependencies]` entry.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw output blocks.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (fixed-size byte array for concrete generators).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it with SplitMix64
    /// (the same construction the real `rand` crate documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence; used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly over their full value range (the
/// `Standard` distribution of the real crate, folded into the trait).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that support uniform sampling from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`. `low < high` must hold.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`. `low <= high` must hold.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased uniform draw from `[0, span)` via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone: accept only draws below the largest multiple of `span`.
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $unsigned).wrapping_sub(low as $unsigned) as u64;
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as $unsigned).wrapping_sub(low as $unsigned) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                let v = low + unit * (high - low);
                // `low + unit*(high-low)` can round up to exactly `high` for
                // tiny spans; keep the documented half-open contract.
                if v < high {
                    v
                } else {
                    high.next_down().max(low)
                }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_range_inclusive(rng, low, high)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full-range/standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{splitmix64, RngCore, SeedableRng};
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};

    /// Deterministic, seedable generator: xoshiro256\*\* (Blackman–Vigna).
    ///
    /// The real `rand::rngs::StdRng` is ChaCha12; this shim substitutes a
    /// fast non-cryptographic generator with excellent statistical quality.
    /// All workspace determinism comes from `SeedableRng::seed_from_u64`, so
    /// the substitution only changes *which* reproducible stream is produced,
    /// not reproducibility itself.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                let mut st = 0x9E37_79B9_7F4A_7C15u64;
                for w in &mut s {
                    *w = splitmix64(&mut st);
                }
            }
            Self { s }
        }
    }

    /// Process-entropy generator.
    ///
    /// Each draw hashes a fresh [`RandomState`] (which sources OS entropy)
    /// together with a monotonic counter, so successive draws — and draws in
    /// different processes — differ. Not cryptographically secure; see the
    /// crate docs.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct OsRng;

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let mut hasher = RandomState::new().build_hasher();
            hasher.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
            let mut state = hasher.finish();
            splitmix64(&mut state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        // chi-square over 10 buckets, 100k draws; 99.99% quantile for 9 dof
        // is ~33.7. A biased modulo reduction would blow far past this.
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u64; 10];
        let trials = 100_000;
        for _ in 0..trials {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        let expected = trials as f64 / 10.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 33.7, "chi2 = {chi2}, counts = {counts:?}");
    }

    #[test]
    fn float_range_stays_half_open_on_tiny_spans() {
        // With a one-ulp span, low + unit*(high-low) rounds to high for
        // almost every unit draw; the contract still excludes high.
        let mut rng = StdRng::seed_from_u64(13);
        let low = 1.0f64;
        let high = low.next_up();
        for _ in 0..1_000 {
            let v: f64 = rng.gen_range(low..high);
            assert!(
                v >= low && v < high,
                "v = {v:?} escaped [{low:?}, {high:?})"
            );
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn fill_bytes_covers_partial_blocks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn os_rng_draws_differ() {
        let mut rng = rngs::OsRng;
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn all_zero_seed_is_escaped() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
