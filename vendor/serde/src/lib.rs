//! Offline shim for the slice of `serde` this workspace uses: a [`Serialize`]
//! trait that renders values as JSON text, plus `#[derive(Serialize)]` for
//! named-field structs (via the vendored `serde_derive` shim).
//!
//! Unlike real serde there is no `Serializer` abstraction — the only consumer
//! is the vendored `serde_json` shim, so the trait writes JSON directly. The
//! real crates drop back in via `[workspace.dependencies]`; see
//! `vendor/README.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A value that can render itself as JSON.
///
/// `pretty` selects multi-line output; `indent` is the current nesting depth
/// (in units of two spaces) used by pretty output.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String, pretty: bool, indent: usize);
}

/// Escapes and appends a JSON string literal.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String, _pretty: bool, _indent: usize) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String, _pretty: bool, _indent: usize) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Inf; mirror serde_json's `null`.
                    out.push_str("null");
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for str {
    fn write_json(&self, out: &mut String, _pretty: bool, _indent: usize) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String, _pretty: bool, _indent: usize) {
        write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String, pretty: bool, indent: usize) {
        (**self).write_json(out, pretty, indent);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String, pretty: bool, indent: usize) {
        match self {
            Some(v) => v.write_json(out, pretty, indent),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String, pretty: bool, indent: usize) {
        __private::write_seq(out, pretty, indent, self.iter());
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String, pretty: bool, indent: usize) {
        self.as_slice().write_json(out, pretty, indent);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String, pretty: bool, indent: usize) {
        self.as_slice().write_json(out, pretty, indent);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, out: &mut String, pretty: bool, indent: usize) {
                // JSON has no tuples; mirror serde_json's array encoding.
                out.push('[');
                $(
                    if $idx > 0 {
                        out.push(',');
                    }
                    self.$idx.write_json(out, pretty, indent);
                )+
                out.push(']');
            }
        }
    )+};
}
impl_serialize_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

pub mod __private {
    //! Emission helpers shared with the derive macro and `serde_json`. Not a
    //! stable API — mirror of real serde's private support module.

    use super::Serialize;

    fn pad(out: &mut String, pretty: bool, indent: usize) {
        if pretty {
            out.push('\n');
            for _ in 0..indent {
                out.push_str("  ");
            }
        }
    }

    /// Writes `{"field": value, ...}` for the derive macro.
    pub fn write_struct(
        out: &mut String,
        pretty: bool,
        indent: usize,
        fields: &[(&str, &dyn Serialize)],
    ) {
        out.push('{');
        for (i, (name, value)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            pad(out, pretty, indent + 1);
            super::write_json_string(out, name);
            out.push(':');
            if pretty {
                out.push(' ');
            }
            value.write_json(out, pretty, indent + 1);
        }
        if !fields.is_empty() {
            pad(out, pretty, indent);
        }
        out.push('}');
    }

    /// Writes `[value, ...]` for sequences.
    pub fn write_seq<'a, T: Serialize + 'a>(
        out: &mut String,
        pretty: bool,
        indent: usize,
        items: impl Iterator<Item = &'a T>,
    ) {
        out.push('[');
        let mut any = false;
        for (i, item) in items.enumerate() {
            if i > 0 {
                out.push(',');
            }
            pad(out, pretty, indent + 1);
            item.write_json(out, pretty, indent + 1);
            any = true;
        }
        if any {
            pad(out, pretty, indent);
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        let mut out = String::new();
        42u64.write_json(&mut out, false, 0);
        out.push(' ');
        (-1.5f64).write_json(&mut out, false, 0);
        out.push(' ');
        true.write_json(&mut out, false, 0);
        assert_eq!(out, "42 -1.5 true");
    }

    #[test]
    fn strings_escape() {
        let mut out = String::new();
        "a\"b\\c\nd".write_json(&mut out, false, 0);
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn nan_is_null() {
        let mut out = String::new();
        f64::NAN.write_json(&mut out, false, 0);
        assert_eq!(out, "null");
    }

    #[test]
    fn sequences_render() {
        let mut out = String::new();
        vec![1u32, 2, 3].write_json(&mut out, false, 0);
        assert_eq!(out, "[1,2,3]");
    }

    #[test]
    fn options_render() {
        let mut out = String::new();
        Some(7u8).write_json(&mut out, false, 0);
        None::<u8>.write_json(&mut out, false, 0);
        assert_eq!(out, "7null");
    }
}
