//! Offline shim for `serde_derive`: a hand-rolled `#[derive(Serialize)]`
//! supporting plain (non-generic) structs with named fields — the only shape
//! this workspace derives. No `syn`/`quote`; the token stream is walked
//! directly. See `vendor/README.md` for the swap-back-to-real-serde story.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim [`Serialize`] trait (JSON emission through
/// `serde::__private::write_struct`).
///
/// Supported input: `struct Name { field: Type, ... }` without generic
/// parameters. Attributes and visibility modifiers on the struct and its
/// fields are skipped; `#[serde(...)]` customization is not interpreted.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut name: Option<String> = None;
    let mut body: Option<TokenStream> = None;

    let mut iter = tokens.iter().peekable();
    while let Some(tok) = iter.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute's bracket group.
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = Some(n.to_string());
                }
                // The next brace group is the field list. Anything between
                // (generics, where clauses) is unsupported.
                for rest in iter.by_ref() {
                    match rest {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            body = Some(g.stream());
                            break;
                        }
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            panic!("serde shim: generic structs are not supported")
                        }
                        _ => {}
                    }
                }
                break;
            }
            _ => {}
        }
    }

    let name = name.expect("serde shim: #[derive(Serialize)] expects a struct");
    let body = body.expect("serde shim: expected a struct with named fields");
    let fields = field_names(body);

    let pairs: String = fields
        .iter()
        .map(|f| format!("(\"{f}\", &self.{f} as &dyn ::serde::Serialize), "))
        .collect();
    let impl_src = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn write_json(&self, out: &mut ::std::string::String, pretty: bool, indent: usize) {{\n\
         ::serde::__private::write_struct(out, pretty, indent, &[{pairs}]);\n\
         }}\n\
         }}"
    );
    impl_src.parse().expect("serde shim: generated impl parses")
}

/// Extracts field identifiers from a named-field struct body, skipping
/// attributes and visibility and tracking angle-bracket depth so commas
/// inside generic types don't split fields.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip field attributes (doc comments included).
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next(); // the bracket group
            } else {
                break;
            }
        }
        // Skip visibility.
        if let Some(TokenTree::Ident(id)) = iter.peek() {
            if id.to_string() == "pub" {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
        }
        let Some(TokenTree::Ident(field)) = iter.next() else {
            break;
        };
        fields.push(field.to_string());
        // Skip `: Type` up to the next top-level comma. The `>` of an `->`
        // (fn-pointer return type) is not a closing angle bracket.
        let mut angle_depth = 0i32;
        let mut prev_dash = false;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' if !prev_dash => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            } else {
                prev_dash = false;
            }
        }
    }
    fields
}
