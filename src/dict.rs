//! One builder, every dictionary engine: runtime backend selection.
//!
//! The paper's thesis is that a history-independent structure can be
//! *swapped in* for a conventional B-tree without the caller noticing. This
//! module makes the swap a one-word change (or a runtime value): a single
//! [`DictBuilder`] constructs any of the workspace's seven backends, and the
//! [`DynDict`] facade dispatches the whole [`Dictionary`] surface over them,
//! so benchmarks, workloads and examples select engines with data instead of
//! per-type code paths.
//!
//! | [`Backend`] | Engine | Paper role |
//! |---|---|---|
//! | [`Backend::CobBTree`] | [`cob_btree::CobBTree`] | Theorem 2: HI cache-oblivious B-tree |
//! | [`Backend::BTree`] | [`btree::BTree`] | the conventional baseline |
//! | [`Backend::HiSkipList`] | [`skiplist::ExternalSkipList`] (HI params) | Theorem 3 |
//! | [`Backend::FolkloreSkipList`] | [`skiplist::ExternalSkipList`] (1/B) | Lemma 15 baseline |
//! | [`Backend::InMemorySkipList`] | [`skiplist::ExternalSkipList`] (1/2) | RAM baseline on disk |
//! | [`Backend::HiPma`] | [`pma::HiPma`] behind [`RankedDict`] | Theorem 1, keyed by binary search |
//! | [`Backend::ClassicPma`] | [`pma::ClassicPma`] behind [`RankedDict`] | density-band baseline, keyed |
//!
//! Every backend built here shares one [`SharedCounters`] ledger and one
//! [`Tracer`], so instrumentation is uniform: enable an [`IoConfig`] on the
//! builder and read [`DynDict::io_stats`] afterwards, whichever engine is
//! underneath.
//!
//! ```
//! use anti_persistence::dict::{Backend, Dict};
//! use anti_persistence::prelude::*;
//!
//! // Identical call-site code for every backend.
//! for backend in Backend::ALL {
//!     let mut index: DynDict<u64, u64> = Dict::builder().backend(backend).seed(7).build();
//!     index.insert(2, 20);
//!     index.insert(1, 10);
//!     assert_eq!(index.get(&2), Some(20));
//!     assert_eq!(index.range(&1, &2).len(), 2);
//! }
//! ```

use std::fmt;
use std::hash::Hash;
use std::io;
use std::ops::{Deref, DerefMut, RangeBounds};
use std::path::Path;
use std::str::FromStr;
use std::time::Duration;

use block_store::{layout_fingerprint, BlockStore, StoreOptions};
use btree::BTree;
use cob_btree::CobBTree;
use hi_common::counters::{OpCounters, SharedCounters};
use hi_common::rng::RngSource;
use hi_common::traits::{Dictionary, Occupancy, RankedDict};
use io_sim::{IoConfig, IoStats, Tracer};
use pma::persist::PersistError;
use pma::{ClassicPma, DensityBands, HiPma};
use shard::{Instrumented, ShardRouter, ShardedDict, DEFAULT_PARALLEL_THRESHOLD};
use skiplist::{ExternalSkipList, SkipParams};

/// The dictionary engines a [`DictBuilder`] can construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The history-independent cache-oblivious B-tree (Theorem 2).
    CobBTree,
    /// The conventional external-memory B+-tree baseline.
    BTree,
    /// The history-independent external skip list (Theorem 3).
    HiSkipList,
    /// The folklore B-skip list (promotion `1/B`, Lemma 15 baseline).
    FolkloreSkipList,
    /// An in-memory (Pugh) skip list run in external memory.
    InMemorySkipList,
    /// The history-independent PMA (Theorem 1) behind a keyed adapter.
    HiPma,
    /// The classic density-band PMA behind a keyed adapter.
    ClassicPma,
}

impl Backend {
    /// Every backend, in the order the comparison tables print them.
    pub const ALL: [Backend; 7] = [
        Backend::CobBTree,
        Backend::BTree,
        Backend::HiSkipList,
        Backend::FolkloreSkipList,
        Backend::InMemorySkipList,
        Backend::HiPma,
        Backend::ClassicPma,
    ];

    /// Stable, machine-friendly name (accepted back by [`FromStr`]).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::CobBTree => "cob-btree",
            Backend::BTree => "btree",
            Backend::HiSkipList => "hi-skiplist",
            Backend::FolkloreSkipList => "folklore-skiplist",
            Backend::InMemorySkipList => "in-memory-skiplist",
            Backend::HiPma => "hi-pma",
            Backend::ClassicPma => "classic-pma",
        }
    }

    /// Returns `true` for the weakly history-independent engines.
    pub fn is_history_independent(&self) -> bool {
        matches!(
            self,
            Backend::CobBTree
                | Backend::HiSkipList
                | Backend::FolkloreSkipList
                | Backend::InMemorySkipList
                | Backend::HiPma
        )
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Backend::ALL
            .into_iter()
            .find(|b| b.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Backend::ALL.iter().map(Backend::name).collect();
                format!("unknown backend {s:?}; expected one of {names:?}")
            })
    }
}

/// Complete configuration of a dictionary: the backend plus every tuning and
/// instrumentation knob any engine understands. Knobs an engine does not use
/// are simply ignored by it, which is what lets one config drive all seven.
#[derive(Debug, Clone)]
pub struct DictConfig {
    /// Which engine to construct.
    pub backend: Backend,
    /// Secret coins for the randomized (history-independent) engines.
    pub seed: u64,
    /// Fanout `B` of the conventional B-tree (`≥ 4`).
    pub fanout: usize,
    /// Elements per disk block for the skip lists (`≥ 2`).
    pub block_elems: usize,
    /// Range/search trade-off `ε ∈ (0, 1)` of the HI skip list.
    pub epsilon: f64,
    /// Bytes per record for the PMA-backed engines' simulated disk layout.
    pub elem_size: u64,
    /// When set, the structure reports into a fresh [`Tracer`] with this
    /// cache configuration; when `None`, tracing is disabled (zero cost).
    pub io: Option<IoConfig>,
    /// Shard count for [`DictBuilder::build_sharded`] (`1..=64`). Ignored by
    /// the single-shard [`DictBuilder::build`].
    pub shards: usize,
    /// Batch size at which [`ShardedDict`] fans out to worker threads
    /// (`≥ 1`). Zero is rejected at validation: the service itself clamps a
    /// zero threshold to "thread every non-empty batch" as a deliberate
    /// test hook, but as a *configuration* it only ever means the operator
    /// wanted inline processing and got a thread spawn per batch instead —
    /// refuse it with a named knob rather than silently burn schedulers.
    pub parallel_threshold: usize,
    /// Epoch group-commit and backpressure knobs for the network front-end
    /// (`dict-server`). Ignored by the in-process builders.
    pub server: ServerConfig,
}

/// Epoch group-commit and backpressure knobs consumed by the `dict-server`
/// front-end: an epoch closes after `epoch_micros` microseconds or
/// `epoch_ops` queued operations, whichever comes first, and each shard
/// queue sheds load (typed `Overloaded` response) beyond `queue_bound`
/// waiting operations.
///
/// All four knobs live here — not as server CLI flags alone — so
/// [`DictConfig::validate`] can reject the degenerate values *before* a
/// thread is spawned: a 0 µs / 0 op epoch is a busy-spin that drains empty
/// batches forever, and a queue bound of 0 sheds every request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Epoch window in microseconds (`≥ 1`): the longest a queued request
    /// waits before its epoch is forced closed.
    pub epoch_micros: u64,
    /// Epoch budget in operations (`≥ 1`): an epoch closes early once this
    /// many operations are queued across shards.
    pub epoch_ops: usize,
    /// Per-shard queue bound (`≥ 1`): operations beyond this shed with a
    /// typed overload response instead of queueing unboundedly.
    pub queue_bound: usize,
    /// Accept-loop thread count (`≥ 1`).
    pub acceptors: usize,
    /// Largest frame the server will read, in bytes (`≥ 1`, envelope
    /// included). A hostile or corrupt length prefix beyond this refuses
    /// typed before a single body byte is staged.
    pub max_frame: usize,
    /// Per-client idempotency dedup window (`≥ 1`): how many recent
    /// mutating-request tokens the server retains per HELLO-bound client.
    /// A retry whose token is still inside the window replays the retained
    /// response instead of re-applying the write.
    pub dedup_window: usize,
    /// Per-connection response-buffer bound (`≥ 1` slots): the reader
    /// stops admitting new frames once this many responses are queued for
    /// a connection's writer, so a slow client backpressures its own TCP
    /// stream — never the epoch engine.
    pub inflight_bound: usize,
    /// Socket write timeout (nonzero): a client that stops draining
    /// responses for this long is shed (disconnected) instead of pinning
    /// a writer thread forever.
    pub write_timeout: Duration,
    /// Idle-connection bound (nonzero): a connection that sends no bytes —
    /// not even a PING — for this long is reaped. Enforced as a
    /// count-based budget of read-poll intervals, so the reap decision is
    /// a frame count, not a wall-clock read.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            epoch_micros: 200,
            epoch_ops: 512,
            queue_bound: 4096,
            acceptors: 2,
            max_frame: 4096,
            dedup_window: 1024,
            inflight_bound: 1024,
            write_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
        }
    }
}

impl Default for DictConfig {
    fn default() -> Self {
        Self {
            backend: Backend::CobBTree,
            seed: 0,
            fanout: 64,
            block_elems: 64,
            epsilon: 0.5,
            elem_size: 16,
            io: None,
            shards: 1,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            server: ServerConfig::default(),
        }
    }
}

/// A [`DictConfig`] value no engine can run on, reported by
/// [`DictConfig::validate`] / [`DictBuilder::try_build`].
///
/// `IoConfig`'s fields are `pub` (struct literals bypass the constructor
/// assert), so without this gate a degenerate config — `block_size == 0`,
/// `memory_blocks == 0` — would panic deep inside the I/O model on the
/// first traced access instead of failing at build time with a message
/// naming the knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DictConfigError {
    /// The embedded [`IoConfig`] is degenerate.
    Io(io_sim::IoConfigError),
    /// B-tree fanout below the minimum of 4.
    FanoutTooSmall(usize),
    /// Skip-list block size below the minimum of 2 elements.
    BlockElemsTooSmall(usize),
    /// HI skip-list `ε` outside the open interval `(0, 1)`.
    EpsilonOutOfRange(f64),
    /// PMA record size of zero bytes.
    ZeroElemSize,
    /// Shard count outside `1..=64`.
    ShardsOutOfRange(usize),
    /// Inline/threaded cut-over of zero: every non-empty batch would spawn
    /// worker threads, which is a test hook, not a configuration.
    ZeroParallelThreshold,
    /// Epoch window of 0 µs: the server's commit loop would busy-spin
    /// closing empty epochs.
    ZeroEpochWindow,
    /// Epoch budget of 0 operations: every epoch would close before
    /// admitting a single request.
    ZeroEpochOps,
    /// Per-shard queue bound of 0: every request would shed as overloaded.
    ZeroQueueBound,
    /// Accept-loop thread count of 0: the server could never accept a
    /// connection.
    ZeroAcceptors,
    /// Frame bound of 0 bytes: every frame would refuse as oversized.
    ZeroMaxFrame,
    /// Dedup window of 0 tokens: every retry would re-apply, so the
    /// exactly-once contract would silently not exist.
    ZeroDedupWindow,
    /// Response-buffer bound of 0 slots: the reader could never admit a
    /// request.
    ZeroInflightBound,
    /// Write timeout of zero: every response write would time out before
    /// a byte left the socket.
    ZeroWriteTimeout,
    /// Idle timeout of zero: every connection would reap on its first
    /// read poll.
    ZeroIdleTimeout,
    /// Client retry budget of 0 attempts: no request could ever be sent.
    ZeroRetryBudget,
    /// Client read timeout of zero: every response wait would expire
    /// before the server could answer.
    ZeroReadTimeout,
}

impl fmt::Display for DictConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DictConfigError::Io(e) => write!(f, "{e}"),
            DictConfigError::FanoutTooSmall(v) => {
                write!(f, "fanout must be at least 4, got {v}")
            }
            DictConfigError::BlockElemsTooSmall(v) => {
                write!(f, "block_elems must be at least 2, got {v}")
            }
            DictConfigError::EpsilonOutOfRange(v) => {
                write!(f, "epsilon must lie strictly between 0 and 1, got {v}")
            }
            DictConfigError::ZeroElemSize => write!(f, "elem_size must be positive"),
            DictConfigError::ShardsOutOfRange(v) => {
                write!(f, "shards must lie in 1..=64, got {v}")
            }
            DictConfigError::ZeroParallelThreshold => {
                write!(
                    f,
                    "parallel_threshold must be at least 1 (0 is the test-only force-threads hook)"
                )
            }
            DictConfigError::ZeroEpochWindow => {
                write!(f, "server.epoch_micros must be at least 1")
            }
            DictConfigError::ZeroEpochOps => {
                write!(f, "server.epoch_ops must be at least 1")
            }
            DictConfigError::ZeroQueueBound => {
                write!(f, "server.queue_bound must be at least 1")
            }
            DictConfigError::ZeroAcceptors => {
                write!(f, "server.acceptors must be at least 1")
            }
            DictConfigError::ZeroMaxFrame => {
                write!(f, "server.max_frame must be at least 1 byte")
            }
            DictConfigError::ZeroDedupWindow => {
                write!(f, "server.dedup_window must be at least 1 token")
            }
            DictConfigError::ZeroInflightBound => {
                write!(f, "server.inflight_bound must be at least 1 slot")
            }
            DictConfigError::ZeroWriteTimeout => {
                write!(f, "server.write_timeout must be nonzero")
            }
            DictConfigError::ZeroIdleTimeout => {
                write!(f, "server.idle_timeout must be nonzero")
            }
            DictConfigError::ZeroRetryBudget => {
                write!(f, "client retry_budget must be at least 1 attempt")
            }
            DictConfigError::ZeroReadTimeout => {
                write!(f, "client read_timeout must be nonzero")
            }
        }
    }
}

impl std::error::Error for DictConfigError {}

impl DictConfig {
    /// Rejects configurations no engine can run on (see
    /// [`DictConfigError`]). Called by [`DictBuilder::try_build`] and
    /// friends, so panics never originate below the builder.
    pub fn validate(&self) -> Result<(), DictConfigError> {
        if let Some(io) = &self.io {
            io.validate().map_err(DictConfigError::Io)?;
        }
        if self.fanout < 4 {
            return Err(DictConfigError::FanoutTooSmall(self.fanout));
        }
        if self.block_elems < 2 {
            return Err(DictConfigError::BlockElemsTooSmall(self.block_elems));
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(DictConfigError::EpsilonOutOfRange(self.epsilon));
        }
        if self.elem_size == 0 {
            return Err(DictConfigError::ZeroElemSize);
        }
        if self.shards == 0 || self.shards > 64 {
            return Err(DictConfigError::ShardsOutOfRange(self.shards));
        }
        if self.parallel_threshold == 0 {
            return Err(DictConfigError::ZeroParallelThreshold);
        }
        if self.server.epoch_micros == 0 {
            return Err(DictConfigError::ZeroEpochWindow);
        }
        if self.server.epoch_ops == 0 {
            return Err(DictConfigError::ZeroEpochOps);
        }
        if self.server.queue_bound == 0 {
            return Err(DictConfigError::ZeroQueueBound);
        }
        if self.server.acceptors == 0 {
            return Err(DictConfigError::ZeroAcceptors);
        }
        if self.server.max_frame == 0 {
            return Err(DictConfigError::ZeroMaxFrame);
        }
        if self.server.dedup_window == 0 {
            return Err(DictConfigError::ZeroDedupWindow);
        }
        if self.server.inflight_bound == 0 {
            return Err(DictConfigError::ZeroInflightBound);
        }
        if self.server.write_timeout.is_zero() {
            return Err(DictConfigError::ZeroWriteTimeout);
        }
        if self.server.idle_timeout.is_zero() {
            return Err(DictConfigError::ZeroIdleTimeout);
        }
        Ok(())
    }
}

/// Fluent constructor for any backend — the single entry point the README
/// and the examples teach:
///
/// ```
/// use anti_persistence::dict::{Backend, Dict};
/// use anti_persistence::prelude::*;
///
/// let mut index: DynDict<u64, String> = Dict::builder()
///     .seed(0xC0115)
///     .block_elems(64)
///     .epsilon(0.5)
///     .io(IoConfig::new(4096, 1024))
///     .backend(Backend::HiSkipList)
///     .build();
/// index.insert(1, "one".into());
/// assert!(index.io_stats().transfers() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DictBuilder {
    config: DictConfig,
}

impl DictBuilder {
    /// Starts from the default [`DictConfig`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an explicit config (e.g. parsed from a CLI or a file).
    pub fn from_config(config: DictConfig) -> Self {
        Self { config }
    }

    /// Selects the engine.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Sets the secret coins of the randomized engines.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the conventional B-tree's fanout.
    pub fn fanout(mut self, fanout: usize) -> Self {
        self.config.fanout = fanout;
        self
    }

    /// Sets the skip lists' block size in elements.
    pub fn block_elems(mut self, block_elems: usize) -> Self {
        self.config.block_elems = block_elems;
        self
    }

    /// Sets the HI skip list's `ε` trade-off parameter.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Sets the PMA engines' per-record on-disk size in bytes.
    pub fn elem_size(mut self, elem_size: u64) -> Self {
        self.config.elem_size = elem_size;
        self
    }

    /// Enables I/O tracing with the given cache configuration.
    pub fn io(mut self, io: IoConfig) -> Self {
        self.config.io = Some(io);
        self
    }

    /// Sets the shard count consumed by [`Self::build_sharded`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets the batch size at which the sharded service fans out to worker
    /// threads (`≥ 1`; zero is rejected by [`DictConfig::validate`] — the
    /// force-threads hook is [`ShardedDict::set_parallel_threshold`], a
    /// test affordance, not a configuration).
    pub fn parallel_threshold(mut self, threshold: usize) -> Self {
        self.config.parallel_threshold = threshold;
        self
    }

    /// Sets the network front-end's epoch/backpressure knobs (consumed by
    /// `dict-server`; validated by [`DictConfig::validate`]).
    pub fn server(mut self, server: ServerConfig) -> Self {
        self.config.server = server;
        self
    }

    /// The accumulated configuration.
    pub fn config(&self) -> &DictConfig {
        &self.config
    }

    /// Constructs the configured backend, panicking on a degenerate config
    /// (see [`Self::try_build`] for the fallible form).
    pub fn build<K: Ord + Clone, V: Clone>(self) -> DynDict<K, V> {
        self.try_build()
            // hi-lint: allow(panic-surface): documented contract: this constructor panics on invalid config; validate() is the non-panicking path
            .unwrap_or_else(|e| panic!("invalid dictionary config: {e}"))
    }

    /// Constructs the configured backend, rejecting degenerate configs
    /// (`IoConfig` with a zero block size or zero memory blocks, zero
    /// element sizes, out-of-range `ε`, …) with a [`DictConfigError`]
    /// instead of panicking deep inside an engine or the I/O model.
    pub fn try_build<K: Ord + Clone, V: Clone>(self) -> Result<DynDict<K, V>, DictConfigError> {
        self.config.validate()?;
        let c = self.config;
        let counters = SharedCounters::new();
        let tracer = match c.io {
            Some(io) => Tracer::enabled(io),
            None => Tracer::disabled(),
        };
        let inner = match c.backend {
            Backend::CobBTree => Inner::CobBTree(CobBTree::with_parts(
                RngSource::from_seed(c.seed),
                counters.clone(),
                tracer.clone(),
                c.elem_size,
            )),
            Backend::BTree => Inner::BTree(BTree::with_instrumentation(
                c.fanout,
                counters.clone(),
                tracer.clone(),
            )),
            Backend::HiSkipList => Inner::SkipList(ExternalSkipList::with_instrumentation(
                SkipParams::history_independent(c.block_elems, c.epsilon),
                c.seed,
                counters.clone(),
                tracer.clone(),
            )),
            Backend::FolkloreSkipList => Inner::SkipList(ExternalSkipList::with_instrumentation(
                SkipParams::folklore_b(c.block_elems),
                c.seed,
                counters.clone(),
                tracer.clone(),
            )),
            Backend::InMemorySkipList => Inner::SkipList(ExternalSkipList::with_instrumentation(
                SkipParams::in_memory(),
                c.seed,
                counters.clone(),
                tracer.clone(),
            )),
            Backend::HiPma => Inner::HiPma(RankedDict::with_counters(
                HiPma::with_parts(
                    RngSource::from_seed(c.seed),
                    counters.clone(),
                    tracer.clone(),
                    c.elem_size,
                ),
                counters.clone(),
            )),
            Backend::ClassicPma => Inner::ClassicPma(RankedDict::with_counters(
                ClassicPma::with_parts(
                    DensityBands::standard(),
                    counters.clone(),
                    tracer.clone(),
                    c.elem_size,
                ),
                counters.clone(),
            )),
        };
        Ok(DynDict {
            backend: c.backend,
            counters,
            tracer,
            inner,
        })
    }

    /// Constructs a hash-partitioned service of [`Self::shards`] independent
    /// copies of the configured backend behind a seeded
    /// [`ShardRouter`] — the scale-out form of [`Self::build`].
    ///
    /// Every stream of randomness derives from the builder's one seed: the
    /// router hashes keys with it, and shard `i`'s engine draws its layout
    /// coins from [`ShardRouter::shard_seed`]`(i)`. The sharded map's full
    /// observable state — key-to-shard assignment plus every shard's layout
    /// — is therefore a pure function of *(contents, seed, shard count)*,
    /// which `tests/shard_history_independence.rs` verifies across
    /// histories, batch partitionings and thread schedules.
    ///
    /// ```
    /// use anti_persistence::dict::{Backend, Dict};
    /// use anti_persistence::prelude::*;
    ///
    /// let mut service: ShardedDict<DynDict<u64, u64>> = Dict::builder()
    ///     .backend(Backend::HiPma)
    ///     .seed(7)
    ///     .shards(4)
    ///     .build_sharded();
    /// service.multi_put((0..1_000u64).map(|k| (k, k)));
    /// assert_eq!(service.len(), 1_000);
    /// assert_eq!(service.multi_get(&[3, 2_000])[0], Some(3));
    /// assert_eq!(service.range_iter(10..20).count(), 10);
    /// ```
    pub fn build_sharded<K, V>(self) -> ShardedDict<DynDict<K, V>>
    where
        K: Ord + Clone + Hash,
        V: Clone,
    {
        self.try_build_sharded()
            // hi-lint: allow(panic-surface): documented contract: this constructor panics on invalid config; validate() is the non-panicking path
            .unwrap_or_else(|e| panic!("invalid dictionary config: {e}"))
    }

    /// Fallible form of [`Self::build_sharded`]: the config is validated
    /// once up front, so no shard constructor can panic.
    pub fn try_build_sharded<K, V>(self) -> Result<ShardedDict<DynDict<K, V>>, DictConfigError>
    where
        K: Ord + Clone + Hash,
        V: Clone,
    {
        self.config.validate()?;
        let c = self.config;
        let router = ShardRouter::new(c.seed, c.shards);
        let mut service = ShardedDict::build_with(router, |_, shard_seed| {
            let mut shard_config = c.clone();
            shard_config.seed = shard_seed;
            DictBuilder::from_config(shard_config).build()
        });
        service.set_parallel_threshold(c.parallel_threshold);
        Ok(service)
    }

    /// Opens (or creates) a file-backed [`PersistentDict`] at `path` with
    /// the configured backend — which must be one of the slot-array engines
    /// ([`Backend::HiPma`] or [`Backend::ClassicPma`]); the node-based
    /// engines have no canonical slot image to persist.
    ///
    /// On a fresh file the dictionary starts empty with the builder's seed.
    /// On an existing file the stored records are bulk-loaded with the
    /// *stored* seed (the builder's seed is ignored) and the rebuilt layout
    /// is verified against the committed fingerprint, so a reopened
    /// dictionary is the pure function `f(contents, seed)` regardless of
    /// the history that produced the file.
    ///
    /// When the builder carries an [`IoConfig`], its `block_size` is used as
    /// the store's real write granularity; otherwise 4096 bytes.
    pub fn build_persistent(self, path: impl AsRef<Path>) -> io::Result<PersistentDict> {
        let block_size = self.config.io.as_ref().map_or(4096, |io| io.block_size);
        self.build_persistent_with(path, StoreOptions::new(block_size))
    }

    /// Like [`Self::build_persistent`] with explicit [`StoreOptions`] —
    /// e.g. [`StoreOptions::no_sync`] for crash-injection tests, where the
    /// process survives and write *ordering* is all that matters.
    pub fn build_persistent_with(
        self,
        path: impl AsRef<Path>,
        options: StoreOptions,
    ) -> io::Result<PersistentDict> {
        self.config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        if !matches!(self.config.backend, Backend::HiPma | Backend::ClassicPma) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "backend {} has no slot-array image to persist; \
                     use hi-pma or classic-pma",
                    self.config.backend
                ),
            ));
        }
        let mut store = BlockStore::open(path, options)?;
        let (dict, seed): (DynDict<u64, u64>, u64) = if store.is_initialized() {
            let (meta, _words, records) = store.load::<(u64, u64)>()?;
            let mut config = self.config.clone();
            config.seed = meta.seed;
            let mut dict: DynDict<u64, u64> = DictBuilder::from_config(config).build();
            dict.bulk_load(records, meta.seed);
            let rebuilt = dict
                .occupancy_words()
                // hi-lint: allow(panic-surface): backends without a slot-array image were rejected with InvalidInput above
                .expect("slot-array backend exposes occupancy");
            // hi-lint: allow(panic-surface): backends without a slot-array image were rejected with InvalidInput above
            let fp = layout_fingerprint(rebuilt, dict.slot_count().unwrap() as u64);
            if fp != meta.fingerprint {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "rebuilt layout does not reproduce the committed fingerprint",
                ));
            }
            (dict, meta.seed)
        } else {
            let seed = self.config.seed;
            (self.build(), seed)
        };
        dict.counters().reset();
        Ok(PersistentDict {
            dict,
            store,
            seed,
            scratch: Vec::new(),
        })
    }
}

/// The engine behind a [`DynDict`]. One variant per concrete type; the three
/// skip-list backends share a variant (they differ only in parameters).
enum Inner<K: Ord + Clone, V: Clone> {
    BTree(BTree<K, V>),
    CobBTree(CobBTree<K, V>),
    SkipList(ExternalSkipList<K, V>),
    HiPma(RankedDict<HiPma<(K, V)>, K, V>),
    ClassicPma(RankedDict<ClassicPma<(K, V)>, K, V>),
}

/// A dictionary whose engine is chosen at runtime.
///
/// Implements the full [`Dictionary`] trait by enum dispatch — including the
/// zero-copy surface (`get_ref`, `iter`, `range_iter`), which goes through a
/// small enum iterator rather than a `Box`, so the no-allocation property of
/// the underlying engines is preserved.
pub struct DynDict<K: Ord + Clone, V: Clone> {
    backend: Backend,
    counters: SharedCounters,
    tracer: Tracer,
    inner: Inner<K, V>,
}

/// Dispatches `$body` over every engine variant, binding the engine to `$d`.
macro_rules! dispatch {
    ($self:expr, $d:ident => $body:expr) => {
        match &$self.inner {
            Inner::BTree($d) => $body,
            Inner::CobBTree($d) => $body,
            Inner::SkipList($d) => $body,
            Inner::HiPma($d) => $body,
            Inner::ClassicPma($d) => $body,
        }
    };
}

/// Like [`dispatch!`], with a mutable binding.
macro_rules! dispatch_mut {
    ($self:expr, $d:ident => $body:expr) => {
        match &mut $self.inner {
            Inner::BTree($d) => $body,
            Inner::CobBTree($d) => $body,
            Inner::SkipList($d) => $body,
            Inner::HiPma($d) => $body,
            Inner::ClassicPma($d) => $body,
        }
    };
}

impl<K: Ord + Clone, V: Clone> DynDict<K, V> {
    /// Starts a [`DictBuilder`] (see the module docs for the full tour).
    pub fn builder() -> DictBuilder {
        DictBuilder::new()
    }

    /// Which engine this dictionary runs on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The shared operation ledger every engine reports into.
    pub fn counters(&self) -> &SharedCounters {
        &self.counters
    }

    /// The I/O tracer (disabled unless the builder got an [`IoConfig`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Block-transfer totals from the tracer (zeros when tracing is off).
    pub fn io_stats(&self) -> IoStats {
        self.tracer.stats()
    }

    /// Verifies the engine's structural invariants. Intended for tests;
    /// cost is at least linear in the structure size.
    pub fn check_invariants(&self) {
        match &self.inner {
            Inner::BTree(d) => d.check_invariants(),
            Inner::CobBTree(d) => d.check_invariants(),
            Inner::SkipList(d) => d.check_invariants(),
            Inner::HiPma(d) => d.seq().check_invariants(),
            Inner::ClassicPma(d) => d.seq().check_invariants(),
        }
    }

    /// The engine's packed slot-occupancy bitmap (the [`Occupancy`] view),
    /// for backends whose representation is a slot array: the PMA-backed
    /// engines and the cache-oblivious B-tree. `None` for the node-based
    /// engines (B-tree, skip lists), whose layout observables are exposed by
    /// their own crates instead.
    ///
    /// This is the fingerprint the history-independence and determinism
    /// batteries hash — per shard — to pin a [`ShardedDict`]'s layout.
    pub fn occupancy_words(&self) -> Option<&[u64]> {
        match &self.inner {
            Inner::CobBTree(d) => Some(d.occupancy_words()),
            Inner::HiPma(d) => Some(d.seq().occupancy_words()),
            Inner::ClassicPma(d) => Some(d.seq().occupancy_words()),
            Inner::BTree(_) | Inner::SkipList(_) => None,
        }
    }

    /// One `bool` per slot of the backing array (allocating convenience
    /// form of [`Self::occupancy_words`]).
    pub fn occupancy(&self) -> Option<Vec<bool>> {
        match &self.inner {
            Inner::CobBTree(d) => Some(d.occupancy()),
            Inner::HiPma(d) => Some(d.seq().occupancy()),
            Inner::ClassicPma(d) => Some(d.seq().occupancy()),
            Inner::BTree(_) | Inner::SkipList(_) => None,
        }
    }

    /// Number of slots in the backing array, for the slot-array backends
    /// (the domain of [`Self::occupancy_words`]); `None` otherwise.
    pub fn slot_count(&self) -> Option<usize> {
        match &self.inner {
            Inner::CobBTree(d) => Some(d.slot_count()),
            Inner::HiPma(d) => Some(d.seq().slot_count()),
            Inner::ClassicPma(d) => Some(d.seq().slot_count()),
            Inner::BTree(_) | Inner::SkipList(_) => None,
        }
    }
}

/// Lets a [`ShardedDict`] of `DynDict` shards roll its per-shard tracers
/// and counter ledgers up into one aggregated view.
impl<K: Ord + Clone, V: Clone> Instrumented for DynDict<K, V> {
    fn io_stats(&self) -> IoStats {
        self.tracer.stats()
    }

    fn op_counters(&self) -> OpCounters {
        self.counters.snapshot()
    }
}

/// Lazy iterator over a [`DynDict`]: one variant per engine iterator type,
/// so dispatch costs a jump instead of a heap allocation.
enum DynIter<A, B, C, D, E> {
    BTree(A),
    CobBTree(B),
    SkipList(C),
    HiPma(D),
    ClassicPma(E),
}

impl<T, A, B, C, D, E> Iterator for DynIter<A, B, C, D, E>
where
    A: Iterator<Item = T>,
    B: Iterator<Item = T>,
    C: Iterator<Item = T>,
    D: Iterator<Item = T>,
    E: Iterator<Item = T>,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self {
            DynIter::BTree(it) => it.next(),
            DynIter::CobBTree(it) => it.next(),
            DynIter::SkipList(it) => it.next(),
            DynIter::HiPma(it) => it.next(),
            DynIter::ClassicPma(it) => it.next(),
        }
    }
}

impl<K: Ord + Clone, V: Clone> Dictionary for DynDict<K, V> {
    type Key = K;
    type Value = V;

    fn len(&self) -> usize {
        dispatch!(self, d => d.len())
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        dispatch_mut!(self, d => d.insert(key, value))
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        dispatch_mut!(self, d => d.remove(key))
    }

    fn get_ref(&self, key: &K) -> Option<&V> {
        dispatch!(self, d => d.get_ref(key))
    }

    fn range_iter<R: RangeBounds<K>>(&self, range: R) -> impl Iterator<Item = (&K, &V)> {
        match &self.inner {
            Inner::BTree(d) => DynIter::BTree(d.range_iter(range)),
            Inner::CobBTree(d) => DynIter::CobBTree(d.range_iter(range)),
            Inner::SkipList(d) => DynIter::SkipList(d.range_iter(range)),
            Inner::HiPma(d) => DynIter::HiPma(d.range_iter(range)),
            Inner::ClassicPma(d) => DynIter::ClassicPma(d.range_iter(range)),
        }
    }

    fn successor(&self, key: &K) -> Option<(K, V)> {
        dispatch!(self, d => d.successor(key))
    }

    fn predecessor(&self, key: &K) -> Option<(K, V)> {
        dispatch!(self, d => d.predecessor(key))
    }

    fn bulk_load(&mut self, pairs: impl IntoIterator<Item = (K, V)>, seed: u64) {
        dispatch_mut!(self, d => d.bulk_load(pairs, seed))
    }

    /// Group-commit batch updates: one enum dispatch for the whole batch,
    /// then the engine's own batch path (deferred merge-rebalances for the
    /// PMA-backed engines, finger insertion for the B-tree and skip lists).
    fn apply_batch(&mut self, ops: Vec<hi_common::batch::BatchOp<K, V>>) -> usize {
        dispatch_mut!(self, d => d.apply_batch(ops))
    }

    /// Sorted-probe batched lookups with per-engine descent fingers.
    fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        dispatch!(self, d => d.get_many(keys))
    }
}

/// A slot-array dictionary mapped onto a real file: the paper's
/// anti-persistence guarantee made literal. Every [`Self::flush`]
/// re-draws the layout from *(contents, seed)* and commits it through the
/// [`BlockStore`]'s journaled two-phase protocol, so
///
/// * the bytes on disk after any flush are the pure function
///   `f(contents, seed)` — no deleted key, no insertion order, nothing
///   about the operation history survives on the platter;
/// * a crash at any write leaves the file recoverable to either the
///   previous or the new canonical image, never a torn mixture
///   (`tests/block_store_crash.rs` kills the process at every write).
///
/// Built by [`DictBuilder::build_persistent`]; between flushes it is an
/// ordinary in-RAM [`DynDict<u64, u64>`] (this type [`Deref`]s to it).
///
/// ```
/// use anti_persistence::dict::{Backend, Dict};
/// use anti_persistence::prelude::*;
///
/// let path = block_store::temp_path("doc-persistent");
/// let mut dict = Dict::builder()
///     .backend(Backend::HiPma)
///     .seed(42)
///     .build_persistent(&path)?;
/// dict.insert(1, 100);
/// dict.insert(2, 200);
/// dict.flush()?;
///
/// // A different process (seed ignored: the stored one wins) sees the data.
/// let reopened = Dict::builder().backend(Backend::HiPma).build_persistent(&path)?;
/// assert_eq!(reopened.get(&2), Some(200));
/// assert_eq!(reopened.seed(), 42);
/// # std::fs::remove_file(reopened.store().path())?;
/// # std::fs::remove_file(reopened.store().journal_path())?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct PersistentDict {
    dict: DynDict<u64, u64>,
    store: BlockStore,
    seed: u64,
    scratch: Vec<(u64, u64)>,
}

impl PersistentDict {
    /// Canonicalizes the in-RAM layout to `f(contents, seed)` and commits
    /// it to the file. Returns the committed generation.
    ///
    /// Steady-state flushes reuse this dictionary's scratch vector and the
    /// store's page-aligned staging buffers, so once those have grown to
    /// the working-set size a flush performs no heap allocation
    /// (`tests/alloc_regression.rs` pins this).
    ///
    /// Errors are typed ([`PersistError`]): corruption, a transient fault
    /// that outlived the retry budget, and disk-full each get their own
    /// variant, and all of them still fold into [`io::Error`] for callers
    /// on the facade's `io::Result` surface.
    pub fn flush(&mut self) -> Result<u64, PersistError> {
        self.scratch.clear();
        self.scratch.extend(self.dict.iter().map(|(k, v)| (*k, *v)));
        // Re-draw the canonical layout: after this the image is a pure
        // function of (contents, seed), independent of operation history.
        self.dict.bulk_load(self.scratch.iter().copied(), self.seed);
        let words = self
            .dict
            .occupancy_words()
            // hi-lint: allow(panic-surface): PersistentDict is only built over slot-array backends (checked in build_persistent)
            .expect("slot-array backend exposes occupancy");
        // hi-lint: allow(panic-surface): PersistentDict is only built over slot-array backends (checked in build_persistent)
        let slots = self.dict.slot_count().expect("slot-array backend") as u64;
        let len = self.dict.len() as u64;
        Ok(self
            .store
            .commit(words, slots, len, self.scratch.iter().copied(), self.seed)?)
    }

    /// Sweeps the committed image's integrity chain block by block and
    /// reports every block that fails its checksum (see
    /// [`BlockStore::scrub`]).
    pub fn scrub(&mut self) -> Result<block_store::ScrubReport, PersistError> {
        Ok(self.store.scrub()?)
    }

    /// Strict form of [`Self::scrub`]: `Ok(())` only when every block of
    /// the committed image verifies.
    pub fn verify(&mut self) -> Result<(), PersistError> {
        Ok(self.store.verify_all()?)
    }

    /// Repairs this dictionary's file from a replica holding the same
    /// committed contents (history independence makes any such replica
    /// byte-identical); returns the number of blocks rewritten. The in-RAM
    /// dictionary is rebuilt from the repaired image.
    pub fn repair_from(&mut self, source: &mut PersistentDict) -> Result<u64, PersistError> {
        let repaired = self.store.repair_from(&mut source.store)?;
        let (meta, _words, records) = self.store.load::<(u64, u64)>()?;
        self.seed = meta.seed;
        self.dict.bulk_load(records, meta.seed);
        Ok(repaired)
    }

    /// The secret coins this dictionary's layouts are drawn with (for a
    /// reopened file, the stored seed — not the builder's).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The in-RAM dictionary (also reachable through [`Deref`]).
    pub fn dict(&self) -> &DynDict<u64, u64> {
        &self.dict
    }

    /// Mutable access to the in-RAM dictionary.
    pub fn dict_mut(&mut self) -> &mut DynDict<u64, u64> {
        &mut self.dict
    }

    /// The backing block store (file paths, I/O statistics).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Mutable access to the backing store (crash-injection fuses, raw
    /// image reads).
    pub fn store_mut(&mut self) -> &mut BlockStore {
        &mut self.store
    }
}

impl Deref for PersistentDict {
    type Target = DynDict<u64, u64>;

    fn deref(&self) -> &Self::Target {
        &self.dict
    }
}

impl DerefMut for PersistentDict {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.dict
    }
}

/// Entry-point namespace for the builder: `Dict::builder()…build()` reads
/// like the docs, and the engine type (`DynDict<K, V>`) is pinned at the
/// binding site. Equivalent to [`DynDict::builder`].
#[derive(Debug, Clone, Copy)]
pub struct Dict;

impl Dict {
    /// Starts a [`DictBuilder`].
    pub fn builder() -> DictBuilder {
        DictBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_backend_builds_and_serves_identical_call_sites() {
        for backend in Backend::ALL {
            let mut d: DynDict<u64, u64> = Dict::builder().backend(backend).seed(99).build();
            assert_eq!(d.backend(), backend);
            assert!(d.is_empty());
            for k in 0..500u64 {
                assert_eq!(d.insert(k * 3, k), None, "{backend}");
            }
            assert_eq!(d.insert(3, 777), Some(1), "{backend}");
            assert_eq!(d.len(), 500, "{backend}");
            assert_eq!(d.get(&3), Some(777), "{backend}");
            assert_eq!(d.get_ref(&6), Some(&2), "{backend}");
            assert_eq!(d.get(&4), None, "{backend}");
            assert_eq!(d.range(&0, &9).len(), 4, "{backend}");
            assert_eq!(
                d.range_iter(3..=9).map(|(k, _)| *k).collect::<Vec<_>>(),
                vec![3, 6, 9],
                "{backend}"
            );
            assert_eq!(d.successor(&4), Some((6, 2)), "{backend}");
            assert_eq!(d.predecessor(&5), Some((3, 777)), "{backend}");
            assert_eq!(d.iter().count(), 500, "{backend}");
            assert_eq!(d.remove(&3), Some(777), "{backend}");
            assert_eq!(d.remove(&3), None, "{backend}");
            d.check_invariants();
        }
    }

    #[test]
    fn every_backend_bulk_loads() {
        for backend in Backend::ALL {
            let mut d: DynDict<u64, u64> = Dict::builder().backend(backend).seed(5).build();
            d.insert(424242, 1); // must be discarded by the load
            d.bulk_load((0..300u64).rev().map(|k| (k, k * 2)), 0xFEED);
            assert_eq!(d.len(), 300, "{backend}");
            assert_eq!(d.get(&299), Some(598), "{backend}");
            assert_eq!(d.get(&424242), None, "{backend}");
            d.check_invariants();
        }
    }

    #[test]
    fn io_tracing_is_uniform_across_backends() {
        for backend in Backend::ALL {
            let mut d: DynDict<u64, u64> = Dict::builder()
                .backend(backend)
                .seed(3)
                .io(IoConfig::new(4096, 1 << 12))
                .build();
            for k in 0..2_000u64 {
                d.insert(k, k);
            }
            d.tracer().reset_cold();
            for k in (0..2_000u64).step_by(37) {
                d.get(&k);
            }
            assert!(
                d.io_stats().transfers() > 0,
                "{backend}: searches must show up in the uniform I/O ledger"
            );
            assert!(d.counters().snapshot().queries > 0, "{backend}");
        }
    }

    #[test]
    fn every_backend_is_send_and_sync() {
        // Compile-time audit for the sharded service layer: all seven
        // engines must migrate onto worker threads, and so must the
        // sharded facade over them.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DynDict<u64, u64>>();
        assert_send_sync::<DynDict<String, Vec<u8>>>();
        assert_send_sync::<ShardedDict<DynDict<u64, u64>>>();
    }

    #[test]
    fn every_backend_builds_sharded_and_serves_batches() {
        for backend in Backend::ALL {
            let mut service: ShardedDict<DynDict<u64, u64>> = Dict::builder()
                .backend(backend)
                .seed(23)
                .shards(3)
                .build_sharded();
            assert_eq!(service.shard_count(), 3, "{backend}");
            service.multi_put((0..600u64).map(|k| (k * 2, k)));
            assert_eq!(service.len(), 600, "{backend}");
            // Every key landed on the shard the router names, and nowhere
            // else.
            for k in (0..1_200u64).step_by(100) {
                let home = service.shard_of(&k);
                for (i, s) in service.shards().iter().enumerate() {
                    assert_eq!(
                        s.contains(&k),
                        i == home && k % 2 == 0,
                        "{backend}: key {k} misplaced on shard {i}"
                    );
                }
            }
            let got = service.multi_get(&[0, 2, 1_198, 1_199]);
            assert_eq!(got, vec![Some(0), Some(1), Some(599), None], "{backend}");
            assert_eq!(
                service.range_iter(..).map(|(k, _)| *k).collect::<Vec<_>>(),
                (0..600u64).map(|k| k * 2).collect::<Vec<_>>(),
                "{backend}: merged scan must be the sorted union"
            );
            assert_eq!(
                service.multi_remove((0..10u64).collect::<Vec<_>>()),
                5,
                "{backend}"
            );
            assert_eq!(service.len(), 595, "{backend}");
            for s in service.shards() {
                s.check_invariants();
            }
        }
    }

    #[test]
    fn sharded_instrumentation_rolls_up() {
        let mut service: ShardedDict<DynDict<u64, u64>> = Dict::builder()
            .backend(Backend::BTree)
            .io(IoConfig::new(4096, 1 << 10))
            .shards(4)
            .build_sharded();
        service.multi_put((0..2_000u64).map(|k| (k, k)));
        assert_eq!(service.op_counters().inserts, 2_000);
        assert!(service.io_stats().transfers() > 0);
        // The roll-up is the sum of the per-shard ledgers.
        let per_shard: u64 = service
            .shards()
            .iter()
            .map(|s| s.counters().snapshot().inserts)
            .sum();
        assert_eq!(per_shard, 2_000);
    }

    #[test]
    fn occupancy_is_exposed_for_slot_array_backends() {
        for backend in Backend::ALL {
            let mut d: DynDict<u64, u64> = Dict::builder().backend(backend).seed(4).build();
            for k in 0..200u64 {
                d.insert(k, k);
            }
            let words = d.occupancy_words();
            let slot_backed = matches!(
                backend,
                Backend::CobBTree | Backend::HiPma | Backend::ClassicPma
            );
            assert_eq!(words.is_some(), slot_backed, "{backend}");
            if let (Some(words), Some(bits)) = (words, d.occupancy()) {
                let popcount: usize = words.iter().map(|w| w.count_ones() as usize).sum();
                assert_eq!(popcount, 200, "{backend}: occupied slots");
                assert_eq!(bits.iter().filter(|&&b| b).count(), 200, "{backend}");
            }
        }
    }

    #[test]
    fn try_build_rejects_degenerate_configs() {
        let bad_io = IoConfig {
            block_size: 0,
            memory_blocks: 64,
        };
        let err = Dict::builder()
            .io(bad_io)
            .try_build::<u64, u64>()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, DictConfigError::Io(_)), "{err}");

        assert!(matches!(
            Dict::builder()
                .fanout(2)
                .try_build::<u64, u64>()
                .map(|_| ()),
            Err(DictConfigError::FanoutTooSmall(2))
        ));
        assert!(matches!(
            Dict::builder()
                .epsilon(1.0)
                .try_build::<u64, u64>()
                .map(|_| ()),
            Err(DictConfigError::EpsilonOutOfRange(_))
        ));
        assert!(matches!(
            Dict::builder()
                .shards(0)
                .try_build_sharded::<u64, u64>()
                .map(|_| ()),
            Err(DictConfigError::ShardsOutOfRange(0))
        ));
        // The happy path still works through the fallible doors.
        assert!(Dict::builder().try_build::<u64, u64>().is_ok());
    }

    #[test]
    fn try_build_rejects_degenerate_server_and_batching_knobs() {
        // A zero cut-over as *configuration* would thread every batch; the
        // test-only force-threads hook stays on the service setter.
        assert!(matches!(
            Dict::builder()
                .parallel_threshold(0)
                .try_build_sharded::<u64, u64>()
                .map(|_| ()),
            Err(DictConfigError::ZeroParallelThreshold)
        ));
        // Degenerate epoch/backpressure knobs are refused before the server
        // could busy-spin (0 µs window), stall (0-op budget), or shed every
        // request (0-length queues).
        for (server, expected) in [
            (
                ServerConfig {
                    epoch_micros: 0,
                    ..ServerConfig::default()
                },
                DictConfigError::ZeroEpochWindow,
            ),
            (
                ServerConfig {
                    epoch_ops: 0,
                    ..ServerConfig::default()
                },
                DictConfigError::ZeroEpochOps,
            ),
            (
                ServerConfig {
                    queue_bound: 0,
                    ..ServerConfig::default()
                },
                DictConfigError::ZeroQueueBound,
            ),
            (
                ServerConfig {
                    acceptors: 0,
                    ..ServerConfig::default()
                },
                DictConfigError::ZeroAcceptors,
            ),
            (
                ServerConfig {
                    max_frame: 0,
                    ..ServerConfig::default()
                },
                DictConfigError::ZeroMaxFrame,
            ),
            (
                ServerConfig {
                    dedup_window: 0,
                    ..ServerConfig::default()
                },
                DictConfigError::ZeroDedupWindow,
            ),
            (
                ServerConfig {
                    inflight_bound: 0,
                    ..ServerConfig::default()
                },
                DictConfigError::ZeroInflightBound,
            ),
            (
                ServerConfig {
                    write_timeout: Duration::ZERO,
                    ..ServerConfig::default()
                },
                DictConfigError::ZeroWriteTimeout,
            ),
            (
                ServerConfig {
                    idle_timeout: Duration::ZERO,
                    ..ServerConfig::default()
                },
                DictConfigError::ZeroIdleTimeout,
            ),
        ] {
            let err = Dict::builder()
                .server(server)
                .try_build_sharded::<u64, u64>()
                .map(|_| ())
                .unwrap_err();
            assert_eq!(err, expected, "{server:?}");
            assert!(!err.to_string().is_empty());
        }
        // A validated threshold really reaches the service.
        let service = Dict::builder()
            .shards(3)
            .parallel_threshold(7)
            .try_build_sharded::<u64, u64>()
            .unwrap();
        assert_eq!(service.parallel_threshold(), 7);
        // Defaults remain valid end to end.
        assert!(Dict::builder()
            .server(ServerConfig::default())
            .try_build_sharded::<u64, u64>()
            .is_ok());
    }

    #[test]
    fn persistent_dict_round_trips_and_reopens_canonically() {
        let path = block_store::temp_path("dict-persist");
        let mut dict = Dict::builder()
            .backend(Backend::HiPma)
            .seed(0xBEEF)
            .build_persistent(&path)
            .unwrap();
        for k in (0..1_000u64).rev() {
            dict.insert(k, k * 7);
        }
        for k in (0..1_000u64).step_by(3) {
            dict.remove(&k);
        }
        let generation = dict.flush().unwrap();
        assert_eq!(generation, 1);
        let words_at_flush = dict.occupancy_words().unwrap().to_vec();

        // Reopen with a *different* builder seed: the stored seed must win
        // and the canonical layout must come back bit for bit.
        let reopened = Dict::builder()
            .backend(Backend::HiPma)
            .seed(12345)
            .build_persistent(&path)
            .unwrap();
        assert_eq!(reopened.seed(), 0xBEEF);
        assert_eq!(reopened.len(), dict.len());
        assert_eq!(reopened.occupancy_words().unwrap(), &words_at_flush[..]);
        assert_eq!(reopened.get(&1), Some(7));
        assert_eq!(reopened.get(&3), None);

        std::fs::remove_file(reopened.store().path()).unwrap();
        let _ = std::fs::remove_file(reopened.store().journal_path());
    }

    #[test]
    fn persistent_dict_flush_image_is_history_independent() {
        // Two different operation histories with the same final contents
        // and seed must leave byte-identical files.
        let final_contents: Vec<(u64, u64)> = (0..500u64).map(|k| (k * 2, k)).collect();

        let raw_of = |tag: &str, build: &dyn Fn(&mut PersistentDict)| {
            let path = block_store::temp_path(tag);
            let mut dict = Dict::builder()
                .backend(Backend::HiPma)
                .seed(77)
                .build_persistent(&path)
                .unwrap();
            build(&mut dict);
            dict.flush().unwrap();
            let (data, journal) = dict.store().raw_bytes().unwrap();
            std::fs::remove_file(dict.store().path()).unwrap();
            let _ = std::fs::remove_file(dict.store().journal_path());
            (data, journal)
        };

        let contents = final_contents.clone();
        let (data_a, journal_a) = raw_of("hist-a", &move |d| {
            for (k, v) in &contents {
                d.insert(*k, *v);
            }
        });
        let contents = final_contents.clone();
        let (data_b, journal_b) = raw_of("hist-b", &move |d| {
            // Insert extra keys, overwrite, delete, flush mid-way: a
            // completely different history with the same endpoint.
            for k in 0..2_000u64 {
                d.insert(k, 999);
            }
            d.flush().unwrap();
            for k in 0..2_000u64 {
                d.remove(&k);
            }
            for (k, v) in contents.iter().rev() {
                d.insert(*k, *v);
            }
        });
        assert_eq!(data_a, data_b, "on-disk image must be f(contents, seed)");
        assert_eq!(journal_a, journal_b, "journal must be empty at rest");
    }

    #[test]
    fn build_persistent_rejects_node_based_backends() {
        let path = block_store::temp_path("dict-reject");
        let err = Dict::builder()
            .backend(Backend::BTree)
            .build_persistent(&path)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in Backend::ALL {
            assert_eq!(backend.name().parse::<Backend>().unwrap(), backend);
        }
        assert!("no-such-engine".parse::<Backend>().is_err());
    }
}
