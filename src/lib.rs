//! # anti-persistence
//!
//! A from-scratch Rust reproduction of *“Anti-Persistence on Persistent
//! Storage: History-Independent Sparse Tables and Dictionaries”* (Bender,
//! Berry, Johnson, Kroeger, McCauley, Phillips, Simon, Singh, Zage —
//! PODS 2016).
//!
//! A data structure is **history independent** when its bit representation
//! reveals nothing about the sequence of operations that produced its current
//! state — only the state itself. This crate provides weakly
//! history-independent, I/O-efficient alternatives to the B-tree:
//!
//! | Structure | Crate | Paper result |
//! |---|---|---|
//! | History-independent packed-memory array | [`pma::HiPma`] | Theorem 1: `O(log²N)` amortized moves whp, `O(log²N/B + log_B N)` I/Os |
//! | History-independent cache-oblivious B-tree | [`cob_btree::CobBTree`] | Theorem 2: B-tree-like bounds with no knowledge of `B` |
//! | History-independent external-memory skip list | [`skiplist::ExternalSkipList`] | Theorem 3: `O(log_B N)` searches/updates whp |
//! | Classic PMA, folklore B-skip list, external B-tree | [`pma::ClassicPma`], [`skiplist`], [`btree::BTree`] | the baselines the paper compares against |
//!
//! Everything runs on a simulated disk-access-machine ([`io_sim`]) so the
//! paper's I/O bounds can be measured, not just proved.
//!
//! ## Quick start: one builder, any engine
//!
//! The whole point of a history-independent dictionary is that it drops in
//! for a conventional index. The [`dict`] module makes that literal: a
//! single builder constructs any of the seven backends, and the call sites
//! never change.
//!
//! ```
//! use anti_persistence::prelude::*;
//!
//! // A keyed, history-independent index (the cache-oblivious B-tree).
//! let mut index: DynDict<u64, String> = Dict::builder()
//!     .backend(Backend::CobBTree)
//!     .seed(0xDEADBEEF) // the structure's secret coins
//!     .build();
//! index.insert(3, "three".into());
//! index.insert(1, "one".into());
//! index.insert(2, "two".into());
//! index.remove(&2);
//!
//! // Zero-copy reads: borrow values, iterate lazily — no Vec per query.
//! assert_eq!(index.get_ref(&1), Some(&"one".to_string()));
//! assert_eq!(index.range_iter(0..=9).count(), 2);
//! assert_eq!(index.keys().copied().collect::<Vec<_>>(), vec![1, 3]);
//!
//! // The owned convenience API is still there (thin wrappers).
//! assert_eq!(index.get(&1), Some("one".into()));
//! assert_eq!(index.range(&0, &9).len(), 2);
//! // The on-disk layout is a function of the *contents* plus secret coins —
//! // nothing about the insertion order or the deleted key can be recovered
//! // from it (weak history independence).
//! ```
//!
//! Swapping the engine is a one-word change — or a runtime value:
//!
//! ```
//! use anti_persistence::prelude::*;
//!
//! for backend in Backend::ALL {
//!     let mut index: DynDict<u64, u64> = Dict::builder().backend(backend).seed(42).build();
//!     index.extend((0..100u64).map(|k| (k, k * k)));
//!     assert_eq!(index.get(&7), Some(49));
//!     assert_eq!(index.successor(&55).unwrap(), (55, 55 * 55));
//!     assert_eq!(index.predecessor(&200).unwrap().0, 99);
//!     assert_eq!(index.range_iter(10..20).count(), 10);
//! }
//! ```
//!
//! ### Per-backend doctests (identical call sites)
//!
//! The conventional B-tree baseline:
//!
//! ```
//! use anti_persistence::prelude::*;
//! let mut d: DynDict<u64, u64> = Dict::builder().backend(Backend::BTree).fanout(64).build();
//! d.extend([(2, 20), (1, 10)]);
//! assert_eq!((d.get(&1), d.successor(&2)), (Some(10), Some((2, 20))));
//! ```
//!
//! The HI cache-oblivious B-tree (Theorem 2):
//!
//! ```
//! use anti_persistence::prelude::*;
//! let mut d: DynDict<u64, u64> = Dict::builder().backend(Backend::CobBTree).seed(1).build();
//! d.extend([(2, 20), (1, 10)]);
//! assert_eq!((d.get(&1), d.successor(&2)), (Some(10), Some((2, 20))));
//! ```
//!
//! The HI external skip list (Theorem 3):
//!
//! ```
//! use anti_persistence::prelude::*;
//! let mut d: DynDict<u64, u64> = Dict::builder()
//!     .backend(Backend::HiSkipList)
//!     .block_elems(64)
//!     .epsilon(0.5)
//!     .seed(1)
//!     .build();
//! d.extend([(2, 20), (1, 10)]);
//! assert_eq!((d.get(&1), d.successor(&2)), (Some(10), Some((2, 20))));
//! ```
//!
//! The folklore B-skip list (Lemma 15 baseline):
//!
//! ```
//! use anti_persistence::prelude::*;
//! let mut d: DynDict<u64, u64> =
//!     Dict::builder().backend(Backend::FolkloreSkipList).seed(1).build();
//! d.extend([(2, 20), (1, 10)]);
//! assert_eq!((d.get(&1), d.successor(&2)), (Some(10), Some((2, 20))));
//! ```
//!
//! The in-memory skip list run on disk:
//!
//! ```
//! use anti_persistence::prelude::*;
//! let mut d: DynDict<u64, u64> =
//!     Dict::builder().backend(Backend::InMemorySkipList).seed(1).build();
//! d.extend([(2, 20), (1, 10)]);
//! assert_eq!((d.get(&1), d.successor(&2)), (Some(10), Some((2, 20))));
//! ```
//!
//! The HI PMA (Theorem 1) behind the keyed adapter:
//!
//! ```
//! use anti_persistence::prelude::*;
//! let mut d: DynDict<u64, u64> = Dict::builder().backend(Backend::HiPma).seed(1).build();
//! d.extend([(2, 20), (1, 10)]);
//! assert_eq!((d.get(&1), d.successor(&2)), (Some(10), Some((2, 20))));
//! ```
//!
//! The classic density-band PMA behind the keyed adapter:
//!
//! ```
//! use anti_persistence::prelude::*;
//! let mut d: DynDict<u64, u64> = Dict::builder().backend(Backend::ClassicPma).build();
//! d.extend([(2, 20), (1, 10)]);
//! assert_eq!((d.get(&1), d.successor(&2)), (Some(10), Some((2, 20))));
//! ```
//!
//! ## Batch loading with fresh coins
//!
//! [`Dictionary::bulk_load`](hi_common::Dictionary::bulk_load) replaces a
//! dictionary's contents in `O(n log n)` while re-drawing every layout coin
//! from an explicit seed, so the result is a pure function of
//! *(contents, seed)* — same guarantee as building incrementally, at a
//! fraction of the cost:
//!
//! ```
//! use anti_persistence::prelude::*;
//!
//! let mut a: DynDict<u64, u64> = Dict::builder().backend(Backend::CobBTree).seed(1).build();
//! let mut b: DynDict<u64, u64> = Dict::builder().backend(Backend::CobBTree).seed(2).build();
//! a.bulk_load((0..1000u64).map(|k| (k, k)), 77);
//! b.bulk_load((0..1000u64).rev().map(|k| (k, k)), 77); // reversed arrival order
//! assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
//! ```
//!
//! ## Uniform instrumentation
//!
//! Hand the builder an [`io_sim::IoConfig`] and every engine — cache-aware
//! or cache-oblivious — reports block transfers into one
//! [`io_sim::IoStats`] ledger, plus operation counts into one
//! [`hi_common::counters::SharedCounters`]:
//!
//! ```
//! use anti_persistence::prelude::*;
//!
//! let mut d: DynDict<u64, u64> = Dict::builder()
//!     .backend(Backend::BTree)
//!     .io(IoConfig::new(4096, 1024))
//!     .build();
//! for k in 0..1000 {
//!     d.insert(k, k);
//! }
//! assert!(d.io_stats().transfers() > 0);
//! assert_eq!(d.counters().snapshot().inserts, 1000);
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` / `EXPERIMENTS.md`
//! for the experiment-by-experiment reproduction of the paper's evaluation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod dict;

pub use block_store;
pub use btree;
pub use cob_btree;
pub use hi_common;
pub use io_sim;
pub use pma;
pub use shard;
pub use skiplist;
pub use veb_tree;
pub use workloads;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::dict::{
        Backend, Dict, DictBuilder, DictConfig, DictConfigError, DynDict, PersistentDict,
        ServerConfig,
    };
    pub use block_store::{
        layout_fingerprint, BlockStore, Fault, FaultPlan, FileError, ScrubReport, StoreMeta,
        StoreOptions, WriteFuse, IO_RETRY_ATTEMPTS,
    };
    pub use btree::BTree;
    pub use cob_btree::CobBTree;
    pub use hi_common::capacity::HiCapacity;
    pub use hi_common::counters::{OpCounters, SharedCounters};
    pub use hi_common::rng::RngSource;
    pub use hi_common::traits::{Dictionary, Occupancy, RankedDict, RankedSequence};
    pub use io_sim::{IoConfig, IoConfigError, IoModel, Tracer};
    pub use pma::persist::PersistError;
    pub use pma::{ClassicPma, HiPma};
    pub use shard::{Instrumented, KWayMerge, ShardError, ShardRouter, ShardedDict};
    pub use skiplist::{ExternalSkipList, SkipParams};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_types_are_usable_together() {
        let mut hi: CobBTree<u64, u64> = CobBTree::new(1);
        let mut bt: BTree<u64, u64> = BTree::new(16);
        let mut sl: ExternalSkipList<u64, u64> = ExternalSkipList::history_independent(16, 0.5, 2);
        let mut dy: DynDict<u64, u64> = Dict::builder().backend(Backend::HiPma).seed(3).build();
        for k in 0..200u64 {
            hi.insert(k, k);
            bt.insert(k, k);
            sl.insert(k, k);
            dy.insert(k, k);
        }
        assert_eq!(hi.to_sorted_vec(), bt.to_sorted_vec());
        assert_eq!(hi.to_sorted_vec(), sl.to_sorted_vec());
        assert_eq!(hi.to_sorted_vec(), dy.to_sorted_vec());
    }
}
