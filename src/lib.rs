//! # anti-persistence
//!
//! A from-scratch Rust reproduction of *“Anti-Persistence on Persistent
//! Storage: History-Independent Sparse Tables and Dictionaries”* (Bender,
//! Berry, Johnson, Kroeger, McCauley, Phillips, Simon, Singh, Zage —
//! PODS 2016).
//!
//! A data structure is **history independent** when its bit representation
//! reveals nothing about the sequence of operations that produced its current
//! state — only the state itself. This crate provides weakly
//! history-independent, I/O-efficient alternatives to the B-tree:
//!
//! | Structure | Crate | Paper result |
//! |---|---|---|
//! | History-independent packed-memory array | [`pma::HiPma`] | Theorem 1: `O(log²N)` amortized moves whp, `O(log²N/B + log_B N)` I/Os |
//! | History-independent cache-oblivious B-tree | [`cob_btree::CobBTree`] | Theorem 2: B-tree-like bounds with no knowledge of `B` |
//! | History-independent external-memory skip list | [`skiplist::ExternalSkipList`] | Theorem 3: `O(log_B N)` searches/updates whp |
//! | Classic PMA, folklore B-skip list, external B-tree | [`pma::ClassicPma`], [`skiplist`], [`btree::BTree`] | the baselines the paper compares against |
//!
//! Everything runs on a simulated disk-access-machine ([`io_sim`]) so the
//! paper's I/O bounds can be measured, not just proved.
//!
//! ## Quick start
//!
//! ```
//! use anti_persistence::prelude::*;
//!
//! // A keyed, history-independent index (the cache-oblivious B-tree).
//! let mut index: CobBTree<u64, String> = CobBTree::new(0xDEADBEEF);
//! index.insert(3, "three".into());
//! index.insert(1, "one".into());
//! index.insert(2, "two".into());
//! index.remove(&2);
//!
//! assert_eq!(index.get(&1), Some("one".into()));
//! assert_eq!(index.range(&0, &9).len(), 2);
//! // The on-disk layout is a function of the *contents* plus secret coins —
//! // nothing about the insertion order or the deleted key can be recovered
//! // from it (weak history independence).
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` / `EXPERIMENTS.md`
//! for the experiment-by-experiment reproduction of the paper's evaluation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use btree;
pub use cob_btree;
pub use hi_common;
pub use io_sim;
pub use pma;
pub use skiplist;
pub use veb_tree;
pub use workloads;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use btree::BTree;
    pub use cob_btree::CobBTree;
    pub use hi_common::capacity::HiCapacity;
    pub use hi_common::counters::{OpCounters, SharedCounters};
    pub use hi_common::rng::RngSource;
    pub use hi_common::traits::{Dictionary, RankedSequence};
    pub use io_sim::{IoConfig, IoModel, Tracer};
    pub use pma::{ClassicPma, HiPma};
    pub use skiplist::{ExternalSkipList, SkipParams};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_types_are_usable_together() {
        let mut hi: CobBTree<u64, u64> = CobBTree::new(1);
        let mut bt: BTree<u64, u64> = BTree::new(16);
        let mut sl: ExternalSkipList<u64, u64> = ExternalSkipList::history_independent(16, 0.5, 2);
        for k in 0..200u64 {
            hi.insert(k, k);
            bt.insert(k, k);
            sl.insert(k, k);
        }
        assert_eq!(hi.to_sorted_vec(), bt.to_sorted_vec());
        assert_eq!(hi.to_sorted_vec(), sl.to_sorted_vec());
    }
}
