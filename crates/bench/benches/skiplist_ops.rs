//! Criterion micro-benchmarks for the three skip-list variants (Theorem 3 /
//! Lemma 15 support): insert and lookup latency at a fixed size.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use skiplist::ExternalSkipList;
use std::time::Duration;

const N: u64 = 20_000;
const B: usize = 64;

fn filled(kind: &str) -> ExternalSkipList<u64, u64> {
    let mut list = match kind {
        "hi" => ExternalSkipList::history_independent(B, 0.5, 1),
        "folklore" => ExternalSkipList::folklore_b(B, 2),
        _ => ExternalSkipList::in_memory(3),
    };
    for k in 0..N {
        list.insert(k, k);
    }
    list
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("skiplist_inserts_20k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for kind in ["hi", "folklore", "memory"] {
        group.bench_function(kind, |b| {
            b.iter_batched(
                || (),
                |_| {
                    let list = filled(kind);
                    list.len()
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_lookups(c: &mut Criterion) {
    let hi = filled("hi");
    let folklore = filled("folklore");
    let memory = filled("memory");
    let mut group = c.benchmark_group("skiplist_lookups");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let mut i = 0u64;
    group.bench_function("hi", |b| {
        b.iter(|| {
            i = (i + 7919) % N;
            hi.get(&i)
        })
    });
    group.bench_function("folklore", |b| {
        b.iter(|| {
            i = (i + 7919) % N;
            folklore.get(&i)
        })
    });
    group.bench_function("memory", |b| {
        b.iter(|| {
            i = (i + 7919) % N;
            memory.get(&i)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_lookups);
criterion_main!(benches);
