//! Criterion micro-benchmarks for the HI cache-oblivious B-tree against the
//! external B-tree baseline (Theorem 2 support): keyed insert and point
//! lookup latency.

use btree::BTree;
use cob_btree::CobBTree;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

const N: u64 = 20_000;

fn bench_keyed_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("keyed_inserts_20k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("cob_btree", |b| {
        b.iter_batched(
            || (),
            |_| {
                let mut t: CobBTree<u64, u64> = CobBTree::new(1);
                for k in 0..N {
                    t.insert(k * 2_654_435_761 % (4 * N), k);
                }
                t.len()
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("btree", |b| {
        b.iter_batched(
            || (),
            |_| {
                let mut t: BTree<u64, u64> = BTree::new(128);
                for k in 0..N {
                    t.insert(k * 2_654_435_761 % (4 * N), k);
                }
                t.len()
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_point_lookups(c: &mut Criterion) {
    let mut cob: CobBTree<u64, u64> = CobBTree::new(2);
    let mut bt: BTree<u64, u64> = BTree::new(128);
    for k in 0..N {
        cob.insert(k * 3, k);
        bt.insert(k * 3, k);
    }
    let mut group = c.benchmark_group("point_lookups");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let mut i = 0u64;
    group.bench_function("cob_btree", |b| {
        b.iter(|| {
            i = (i + 7919) % N;
            cob.get(&(i * 3))
        })
    });
    group.bench_function("btree", |b| {
        b.iter(|| {
            i = (i + 7919) % N;
            bt.get(&(i * 3))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_keyed_inserts, bench_point_lookups);
criterion_main!(benches);
