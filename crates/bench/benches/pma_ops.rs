//! Criterion micro-benchmarks for the two PMAs (E2 support): per-insert and
//! per-range-query latency of the HI PMA vs. the classic PMA.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use pma::{ClassicPma, HiPma};
use std::time::Duration;
use workloads::{random_inserts, Op};

fn ranks_of(trace: &workloads::Trace) -> Vec<(usize, u64)> {
    let mut keys: Vec<u64> = Vec::new();
    let mut out = Vec::new();
    for op in &trace.ops {
        let Op::Insert(key, _) = op else {
            unreachable!()
        };
        let rank = keys.partition_point(|k| k < key);
        keys.insert(rank, *key);
        out.push((rank, *key));
    }
    out
}

fn build_hi(ops: &[(usize, u64)]) -> HiPma<u64> {
    let mut pma = HiPma::new(1);
    for &(rank, key) in ops {
        pma.insert(rank, key).unwrap();
    }
    pma
}

fn build_classic(ops: &[(usize, u64)]) -> ClassicPma<u64> {
    let mut pma = ClassicPma::new();
    for &(rank, key) in ops {
        pma.insert(rank, key).unwrap();
    }
    pma
}

fn bench_inserts(c: &mut Criterion) {
    let n = 20_000;
    let ops = ranks_of(&random_inserts(n, 7));
    let mut group = c.benchmark_group("pma_random_inserts");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function(BenchmarkId::new("hi_pma", n), |b| {
        b.iter_batched(|| ops.clone(), |ops| build_hi(&ops), BatchSize::LargeInput)
    });
    group.bench_function(BenchmarkId::new("classic_pma", n), |b| {
        b.iter_batched(
            || ops.clone(),
            |ops| build_classic(&ops),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_range_queries(c: &mut Criterion) {
    let n = 50_000;
    let ops = ranks_of(&random_inserts(n, 9));
    let hi = build_hi(&ops);
    let classic = build_classic(&ops);
    let mut group = c.benchmark_group("pma_range_query_1000");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("hi_pma", |b| {
        b.iter(|| hi.range_query(10_000, 10_999).unwrap().len())
    });
    group.bench_function("classic_pma", |b| {
        b.iter(|| classic.range_query(10_000, 10_999).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_range_queries);
criterion_main!(benches);
