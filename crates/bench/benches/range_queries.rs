//! Criterion micro-benchmarks for range queries across all dictionaries
//! (the `log_B N + k/B` experiments of Theorems 2 and 3): latency of range
//! scans of increasing result size, for both the `Vec`-materialising `range`
//! and the zero-allocation `range_iter` paths.

use btree::BTree;
use cob_btree::CobBTree;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skiplist::ExternalSkipList;
use std::time::Duration;

const N: u64 = 50_000;

fn bench_ranges(c: &mut Criterion) {
    let mut cob: CobBTree<u64, u64> = CobBTree::new(1);
    let mut skip: ExternalSkipList<u64, u64> = ExternalSkipList::history_independent(64, 0.5, 2);
    let mut bt: BTree<u64, u64> = BTree::new(128);
    for k in 0..N {
        cob.insert(k, k);
        skip.insert(k, k);
        bt.insert(k, k);
    }
    let mut group = c.benchmark_group("range_query_by_k");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for k in [64u64, 1024, 8192] {
        group.bench_with_input(BenchmarkId::new("cob_btree", k), &k, |b, &k| {
            b.iter(|| cob.range(&10_000, &(10_000 + k - 1)).len())
        });
        group.bench_with_input(BenchmarkId::new("hi_skiplist", k), &k, |b, &k| {
            b.iter(|| skip.range(&10_000, &(10_000 + k - 1)).len())
        });
        group.bench_with_input(BenchmarkId::new("btree", k), &k, |b, &k| {
            b.iter(|| bt.range(&10_000, &(10_000 + k - 1)).len())
        });
        // The lazy counterparts: identical scans, no Vec per query.
        group.bench_with_input(BenchmarkId::new("cob_btree_iter", k), &k, |b, &k| {
            b.iter(|| cob.range_iter(10_000..10_000 + k).count())
        });
        group.bench_with_input(BenchmarkId::new("hi_skiplist_iter", k), &k, |b, &k| {
            b.iter(|| skip.range_iter(10_000..10_000 + k).count())
        });
        group.bench_with_input(BenchmarkId::new("btree_iter", k), &k, |b, &k| {
            b.iter(|| bt.range_iter(10_000..10_000 + k).count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ranges);
criterion_main!(benches);
