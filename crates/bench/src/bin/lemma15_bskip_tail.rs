//! **E8 / Lemma 15** — the folklore B-skip list (promotion `1/B`) has, with
//! high probability, elements whose search cost is `Ω(log(N/B))` blocks — no
//! better than an in-memory skip list run on disk — while the paper's
//! `1/B^γ` structure keeps the whole search-cost distribution at `O(log_B N)`.
//! The table reports the per-element search-cost distribution (mean / p99 /
//! max) for all three structures.
//!
//! Run: `cargo run -p ap-bench --release --bin lemma15_bskip_tail`

use ap_bench::{emit, scaled, Row};
use hi_common::stats::Summary;
use skiplist::ExternalSkipList;

fn search_cost_distribution(list: &ExternalSkipList<u64, u64>, n: u64) -> Summary {
    let mut costs = Vec::new();
    for k in (0..n).step_by(7) {
        list.get(&k);
        costs.push(list.last_op_ios());
    }
    Summary::of_counts(&costs).expect("non-empty sample")
}

fn main() {
    let b = 64usize;
    let mut rows = Vec::new();
    for &n in &[
        scaled(20_000) as u64,
        scaled(60_000) as u64,
        scaled(150_000) as u64,
    ] {
        let mut hi: ExternalSkipList<u64, u64> = ExternalSkipList::history_independent(b, 0.5, 1);
        let mut folk: ExternalSkipList<u64, u64> = ExternalSkipList::folklore_b(b, 2);
        let mut mem: ExternalSkipList<u64, u64> = ExternalSkipList::in_memory(3);
        for k in 0..n {
            hi.insert(k, k);
            folk.insert(k, k);
            mem.insert(k, k);
        }
        let hi_s = search_cost_distribution(&hi, n);
        let folk_s = search_cost_distribution(&folk, n);
        let mem_s = search_cost_distribution(&mem, n);
        for (name, s) in [
            ("HI skip list (1/B^γ)", &hi_s),
            ("folklore B-skip list (1/B)", &folk_s),
            ("in-memory skip list on disk", &mem_s),
        ] {
            rows.push(Row::new(
                &format!("{name} mean"),
                n as f64,
                s.mean,
                "I/Os per search",
            ));
            rows.push(Row::new(
                &format!("{name} p99"),
                n as f64,
                s.p99,
                "I/Os per search",
            ));
            rows.push(Row::new(
                &format!("{name} max"),
                n as f64,
                s.max,
                "I/Os per search",
            ));
        }
        println!(
            "N={n}: HI max {:.0} | folklore max {:.0} (log(N/B) = {:.1}) | in-memory max {:.0}",
            hi_s.max,
            folk_s.max,
            (n as f64 / b as f64).log2(),
            mem_s.max
        );
    }
    emit(
        "Lemma 15: search-cost distribution — the folklore B-skip list's tail grows like log(N/B)",
        &rows,
    );
}
