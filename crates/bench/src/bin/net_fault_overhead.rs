//! `net_fault_overhead`: what exactly-once costs on the healthy path.
//!
//! Protocol v2 makes every mutating request carry an idempotency token,
//! and a HELLO-bound connection makes the server record each success in
//! its per-client dedup window. That machinery only pays off when the
//! network misbehaves — this harness measures what it costs when the
//! network is fine, by running the same seeded 95/5 closed-loop script
//! twice against one in-process server:
//!
//! * **anonymous** — no HELLO, client id 0: tokens correlate but are
//!   never recorded, the server's dedup registry stays untouched;
//! * **tokened** — each connection HELLOs a distinct client id, so every
//!   PUT lands in the dedup window and every retry knob is armed.
//!
//! The headline row is `overhead_pct`: the tokened mode's throughput
//! deficit relative to anonymous (the PR 9 `dict-loadgen` baseline shape).
//! Rows land in `AP_BENCH_JSON` (gated by `json_check` in CI) and a
//! snapshot is appended to `BENCH_baseline.json`; `--smoke` shrinks the
//! sweep to a seconds-long CI gate.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use anti_persistence::dict::{Backend, DictConfig};
use ap_bench::{emit, env_usize, Row};
use dict_server::{Client, ClientConfig, ClientError, Request, Response, Server, ServerOptions};

/// splitmix64, the stateless key scrambler used across the benches.
fn scramble(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The i-th operation of the seeded 95/5 get/put mix over `keyspace` keys.
fn mix_op(i: u64, salt: u64, keyspace: u64) -> Request {
    let r = scramble(i ^ salt);
    let key = scramble(r) % keyspace;
    if r % 100 < 95 {
        Request::Get { key }
    } else {
        Request::Put {
            key,
            value: r ^ key,
        }
    }
}

/// Preloads `keyspace` keys over one pipelined connection.
fn preload(addr: SocketAddr, keyspace: u64) -> Result<(), ClientError> {
    let mut c = Client::connect(addr)?;
    for k in 0..keyspace {
        c.send(&Request::Put {
            key: k,
            value: scramble(k),
        })?;
    }
    c.flush()?;
    for _ in 0..keyspace {
        match c.recv()? {
            Response::Done => {}
            other => return Err(ClientError::Unexpected(other)),
        }
    }
    Ok(())
}

/// `clients` synchronous connections, `ops` requests each; returns ops/s.
/// `tokened` switches between the anonymous fast path and HELLO-bound
/// identities with the full retry/dedup machinery armed.
fn closed_loop(addr: SocketAddr, clients: usize, ops: usize, keyspace: u64, tokened: bool) -> f64 {
    let start = Instant::now();
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        handles.push(std::thread::spawn(move || -> Result<(), ClientError> {
            let cfg = ClientConfig {
                client_id: if tokened { c as u64 + 1 } else { 0 },
                read_timeout: Duration::from_secs(10),
                retry_budget: 4,
                backoff: Duration::from_millis(10),
                ..ClientConfig::default()
            };
            let mut client = Client::connect_with(addr, cfg)?;
            let salt = 0x0F_F10AD + c as u64;
            for i in 0..ops {
                client.roundtrip(&mix_op(i as u64, salt, keyspace))?;
            }
            Ok(())
        }));
    }
    for h in handles {
        h.join()
            .expect("bench client thread panicked")
            .expect("bench client I/O failed");
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (clients * ops) as f64 / elapsed
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (ops, keyspace, client_counts): (usize, u64, Vec<usize>) = if smoke {
        (2_000, 4_096, vec![2])
    } else {
        (
            env_usize("AP_BENCH_NETFAULT_OPS", 20_000),
            env_usize("AP_BENCH_NETFAULT_KEYSPACE", 65_536) as u64,
            vec![1, 4],
        )
    };

    let server = Server::spawn(
        "127.0.0.1:0",
        ServerOptions {
            config: DictConfig {
                backend: Backend::HiPma,
                seed: 7,
                shards: 4,
                ..DictConfig::default()
            },
            persist: None,
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    preload(addr, keyspace).expect("preload failed");

    let mut rows: Vec<Row> = Vec::new();
    println!("## exactly-once overhead, {ops} ops per client, keyspace {keyspace}\n");
    for &clients in &client_counts {
        // Anonymous first warms the page cache identically for both modes.
        let anon = closed_loop(addr, clients, ops, keyspace, false);
        let tokened = closed_loop(addr, clients, ops, keyspace, true);
        let overhead_pct = (anon - tokened) / anon.max(1e-9) * 100.0;
        rows.push(Row::new(
            "dict-server anonymous 95/5",
            clients as f64,
            anon,
            "ops/sec",
        ));
        rows.push(Row::new(
            "dict-server tokened+dedup 95/5",
            clients as f64,
            tokened,
            "ops/sec",
        ));
        rows.push(Row::new(
            "exactly-once overhead",
            clients as f64,
            overhead_pct,
            "overhead_pct",
        ));
        println!(
            "c={clients:<2} anonymous {anon:>9.0} ops/s   tokened {tokened:>9.0} ops/s   \
             overhead {overhead_pct:>5.1}%"
        );
    }
    emit("exactly-once token/dedup overhead (95/5 mix)", &rows);
}
