//! **E10 / Observation 1** — the alternating adversary forces any canonical
//! (strong-HI-style) capacity rule into an `Ω(N)`-cost resize on every
//! operation, while the weak-HI rule resizes with probability `O(1/N)`. This
//! is the paper's justification for targeting *weak* history independence.
//!
//! Run: `cargo run -p ap-bench --release --bin obs1_shi_vs_whi`

use ap_bench::{emit, scaled, Row};
use hi_common::capacity::{HiCapacity, ShiCanonicalCapacity};
use hi_common::RngSource;

fn main() {
    let rounds = scaled(100_000);
    let mut rows = Vec::new();
    for &n in &[1usize << 10, 1 << 14, 1 << 18] {
        let mut rng = RngSource::from_seed(n as u64);
        let r = rng.rng();
        let mut whi = HiCapacity::with_len(n, r);
        let mut shi = ShiCanonicalCapacity::with_len(n);
        let mut whi_rebuild_cost = 0u64;
        let mut shi_rebuild_cost = 0u64;
        for i in 0..rounds {
            if i % 2 == 0 {
                if whi.on_insert(r).is_rebuild() {
                    whi_rebuild_cost += whi.len() as u64;
                }
                if shi.on_insert().is_rebuild() {
                    shi_rebuild_cost += shi.len() as u64;
                }
            } else {
                if whi.on_delete(r).is_rebuild() {
                    whi_rebuild_cost += whi.len() as u64;
                }
                if shi.on_delete().is_rebuild() {
                    shi_rebuild_cost += shi.len() as u64;
                }
            }
        }
        let whi_amortized = whi_rebuild_cost as f64 / rounds as f64;
        let shi_amortized = shi_rebuild_cost as f64 / rounds as f64;
        rows.push(Row::new(
            "WHI amortized resize cost",
            n as f64,
            whi_amortized,
            "slots/op",
        ));
        rows.push(Row::new(
            "canonical (SHI) amortized resize cost",
            n as f64,
            shi_amortized,
            "slots/op",
        ));
        println!(
            "N = {n:>7}: WHI {whi_amortized:>10.2} slots/op, canonical {shi_amortized:>12.2} slots/op"
        );
    }
    emit(
        "Observation 1: alternating adversary — amortized resize cost per operation",
        &rows,
    );
    println!("\nThe canonical rule pays Θ(N) per operation (it straddles a boundary every step);");
    println!("the WHI rule pays O(1) amortized, which is what makes Theorem 1 possible.");
}
