//! **E6 / Theorem 2** — simulated I/O cost of the history-independent
//! cache-oblivious B-tree: searches should track `log_B N`, inserts
//! `log²N/B + log_B N`, and range queries `log_B N + k/B`, all without the
//! structure knowing `B`. The external B-tree provides the comparison column.
//!
//! Run: `cargo run -p ap-bench --release --bin thm2_cob_btree_io`

use ap_bench::{emit, scaled, Row};
use btree::BTree;
use cob_btree::CobBTree;
use hi_common::{RngSource, SharedCounters};
use io_sim::{IoConfig, Tracer};

fn main() {
    let block_bytes = 4096usize;
    let records_per_block = block_bytes / 16;
    let probes = 400u64;
    let mut rows = Vec::new();

    for &n in &[
        scaled(20_000) as u64,
        scaled(60_000) as u64,
        scaled(150_000) as u64,
    ] {
        let tracer = Tracer::enabled(IoConfig::new(block_bytes, 1 << 12));
        let mut cob: CobBTree<u64, u64> = CobBTree::with_parts(
            RngSource::from_seed(n),
            SharedCounters::new(),
            tracer.clone(),
            16,
        );
        let mut bt: BTree<u64, u64> = BTree::new(records_per_block);
        for k in 0..n {
            cob.insert(k * 2, k);
            bt.insert(k * 2, k);
        }

        // Search cost.
        tracer.reset_cold();
        let mut bt_total = 0u64;
        for i in 0..probes {
            let key = (i * 2_654_435_761 % (2 * n)) & !1;
            cob.get(&key);
            bt.get(&key);
            bt_total += bt.last_op_ios();
        }
        let cob_search = tracer.stats().transfers() as f64 / probes as f64;
        let bt_search = bt_total as f64 / probes as f64;
        rows.push(Row::new(
            "COB search I/Os",
            n as f64,
            cob_search,
            "I/Os per op",
        ));
        rows.push(Row::new(
            "B-tree search I/Os",
            n as f64,
            bt_search,
            "I/Os per op",
        ));
        rows.push(Row::new(
            "log_B N",
            n as f64,
            (n as f64).log2() / (records_per_block as f64).log2(),
            "I/Os per op",
        ));

        // Insert cost (marginal, warm structure, cold cache).
        tracer.reset_cold();
        for i in 0..probes {
            cob.insert(i * 2 + 1, i);
        }
        let cob_insert = tracer.stats().transfers() as f64 / probes as f64;
        rows.push(Row::new(
            "COB insert I/Os",
            n as f64,
            cob_insert,
            "I/Os per op",
        ));

        // Range queries of k = 4096 elements.
        let k = 4096u64.min(n / 2);
        tracer.reset_cold();
        let queries = 50u64;
        for i in 0..queries {
            let low = (i * 977) % (2 * n - 2 * k);
            cob.range(&low, &(low + 2 * k));
        }
        let cob_range = tracer.stats().transfers() as f64 / queries as f64;
        rows.push(Row::new(
            "COB range(k=4096) I/Os",
            n as f64,
            cob_range,
            "I/Os per op",
        ));
        rows.push(Row::new(
            "k/B + log_B N",
            n as f64,
            k as f64 / records_per_block as f64
                + (n as f64).log2() / (records_per_block as f64).log2(),
            "I/Os per op",
        ));
    }
    emit(
        "Theorem 2: cache-oblivious B-tree I/O costs vs. the B-tree yardstick",
        &rows,
    );
}
