//! **E1 / Figure 2** — element moves per insert, normalized by `N log²N`,
//! for the history-independent PMA and the classic PMA under uniformly
//! random inserts. The paper plots this quantity against the number of
//! insertions and observes flat/linear curves for both structures, with the
//! HI PMA a constant factor above the classic one.
//!
//! Run: `cargo run -p ap-bench --release --bin fig2_pma_moves`
//! Scale up with `AP_BENCH_SCALE=10` (the paper uses 9×10⁷ inserts).

use ap_bench::{emit, scaled, Row};
use pma::{ClassicPma, HiPma};
use workloads::{random_inserts, Op};

fn main() {
    let n = scaled(200_000);
    let samples = 40usize;
    let trace = random_inserts(n, 42);
    println!("Figure 2 reproduction: {n} random inserts, sampled {samples} times");

    let mut rows = Vec::new();
    let mut hi: HiPma<u64> = HiPma::new(1);
    let mut classic: ClassicPma<u64> = ClassicPma::new();
    // Keys must be placed by rank: maintain a sorted key vector to convert.
    let mut keys: Vec<u64> = Vec::with_capacity(n);

    let checkpoint = (n / samples).max(1);
    for (i, op) in trace.ops.iter().enumerate() {
        let Op::Insert(key, _) = op else {
            unreachable!()
        };
        let rank = keys.partition_point(|k| k < key);
        keys.insert(rank, *key);
        hi.insert(rank, *key).unwrap();
        classic.insert(rank, *key).unwrap();
        let inserted = i + 1;
        if inserted % checkpoint == 0 || inserted == n {
            let norm = inserted as f64 * (inserted as f64).log2().powi(2);
            rows.push(Row::new(
                "HIPMA moves/(n log^2 n)",
                inserted as f64,
                hi.counters().snapshot().element_moves as f64 / norm,
                "normalized moves",
            ));
            rows.push(Row::new(
                "PMA moves/(n log^2 n)",
                inserted as f64,
                classic.counters().snapshot().element_moves as f64 / norm,
                "normalized moves",
            ));
        }
    }
    emit("Figure 2: normalized element moves vs. insertions", &rows);
    let hi_final = rows[rows.len() - 2].y;
    let classic_final = rows[rows.len() - 1].y;
    println!(
        "\nfinal normalized moves: HI PMA = {hi_final:.4}, classic PMA = {classic_final:.4}, ratio = {:.2}",
        hi_final / classic_final.max(1e-12)
    );
    println!(
        "(the paper reports both curves flat, with the HI PMA a small constant factor higher)"
    );
}
