//! **E2 / runtime-overhead table** — wall-clock comparison of the HI PMA
//! against the classic PMA on the same random-insert workload. The paper
//! reports "approximately a factor of 7 overhead in the run time".
//!
//! Run: `cargo run -p ap-bench --release --bin overhead_table`

use ap_bench::{emit, scaled, timed, Row};
use pma::{ClassicPma, HiPma};
use workloads::{random_inserts, Op};

fn ranks_of(trace: &workloads::Trace) -> Vec<usize> {
    let mut keys: Vec<u64> = Vec::with_capacity(trace.len());
    let mut ranks = Vec::with_capacity(trace.len());
    for op in &trace.ops {
        let Op::Insert(key, _) = op else {
            unreachable!()
        };
        let rank = keys.partition_point(|k| k < key);
        keys.insert(rank, *key);
        ranks.push(rank);
    }
    ranks
}

fn main() {
    let mut rows = Vec::new();
    for &n in &[scaled(50_000), scaled(100_000), scaled(200_000)] {
        let trace = random_inserts(n, 7);
        let ranks = ranks_of(&trace);
        let keys: Vec<u64> = trace
            .ops
            .iter()
            .map(|op| match op {
                Op::Insert(k, _) => *k,
                _ => unreachable!(),
            })
            .collect();

        let (_, hi_secs) = timed(|| {
            let mut hi: HiPma<u64> = HiPma::new(1);
            for (rank, key) in ranks.iter().zip(&keys) {
                hi.insert(*rank, *key).unwrap();
            }
            hi.len()
        });
        let (_, classic_secs) = timed(|| {
            let mut classic: ClassicPma<u64> = ClassicPma::new();
            for (rank, key) in ranks.iter().zip(&keys) {
                classic.insert(*rank, *key).unwrap();
            }
            classic.len()
        });
        rows.push(Row::new("HI PMA (s)", n as f64, hi_secs, "seconds"));
        rows.push(Row::new(
            "classic PMA (s)",
            n as f64,
            classic_secs,
            "seconds",
        ));
        rows.push(Row::new(
            "overhead factor",
            n as f64,
            hi_secs / classic_secs.max(1e-9),
            "seconds",
        ));
        println!(
            "N = {n}: HI {hi_secs:.3}s, classic {classic_secs:.3}s, overhead {:.2}x",
            hi_secs / classic_secs.max(1e-9)
        );
    }
    emit(
        "Runtime overhead of history independence (paper: ~7x)",
        &rows,
    );
}
