//! **E9 / Definition 4** — end-to-end statistical verification of weak
//! history independence: the layout distribution of the HI structures must be
//! identical across operation histories that reach the same state, while the
//! classic PMA visibly leaks.
//!
//! Run: `cargo run -p ap-bench --release --bin hi_verification`

use ap_bench::env_usize;
use cob_btree::CobBTree;
use hi_common::stats::chi2::chi2_gof;
use pma::ClassicPma;

fn layout_bucket(occupancy: &[bool], buckets: usize) -> usize {
    let pos = occupancy.iter().position(|&b| b).unwrap_or(0);
    (pos * buckets / occupancy.len()).min(buckets - 1)
}

fn main() {
    let n = env_usize("AP_BENCH_N", 400) as u64;
    let trials = env_usize("AP_BENCH_TRIALS", 400) as u64;
    let buckets = 8usize;
    println!("history-independence verification: {n} keys, {trials} trials per history\n");

    // --- HI cache-oblivious B-tree -----------------------------------------
    let mut hist_asc = vec![0u64; buckets];
    let mut hist_adv = vec![0u64; buckets];
    for t in 0..trials {
        let mut a: CobBTree<u64, u64> = CobBTree::new(10_000 + t);
        for k in 0..n {
            a.insert(k, k);
        }
        let mut b: CobBTree<u64, u64> = CobBTree::new(60_000 + t);
        for k in (0..n).rev() {
            b.insert(k, k);
        }
        for k in n..n + n / 2 {
            b.insert(k, k);
        }
        for k in n..n + n / 2 {
            b.remove(&k);
        }
        hist_asc[layout_bucket(&a.occupancy(), buckets)] += 1;
        hist_adv[layout_bucket(&b.occupancy(), buckets)] += 1;
    }
    println!("HI cache-oblivious B-tree layout-statistic histograms:");
    println!("  ascending inserts      : {hist_asc:?}");
    println!("  reverse + delete burst : {hist_adv:?}");
    let pairs: (Vec<u64>, Vec<f64>) = hist_asc
        .iter()
        .zip(&hist_adv)
        .filter(|(&a, _)| a >= 10)
        .map(|(&a, &b)| (b, a as f64))
        .unzip();
    if pairs.0.len() >= 2 {
        let outcome = chi2_gof(&pairs.0, &pairs.1);
        println!(
            "  chi^2 p-value = {:.3}  ->  {}",
            outcome.p_value,
            if outcome.p_value > 0.01 {
                "consistent with identical distributions (history independent)"
            } else {
                "distributions differ (LEAK)"
            }
        );
    } else {
        println!("  (degenerate histograms — identical by inspection)");
    }

    // --- classic PMA (expected to leak) ------------------------------------
    let front_density = |front_loaded: bool| -> f64 {
        let mut pma: ClassicPma<u64> = ClassicPma::new();
        if front_loaded {
            for k in (0..n).rev() {
                pma.insert(0, k).unwrap();
            }
        } else {
            for k in 0..n {
                let rank = pma.len();
                pma.insert(rank, k).unwrap();
            }
        }
        let occ = pma.occupancy();
        let half = occ.len() / 2;
        occ[..half].iter().filter(|&&b| b).count() as f64 / n as f64
    };
    let back_loaded = front_density(false);
    let front_loaded = front_density(true);
    println!("\nclassic PMA front-half density (same final contents):");
    println!("  appended ascending  : {back_loaded:.3}");
    println!("  hammered at front   : {front_loaded:.3}");
    println!(
        "  -> the classic PMA layout {} the insertion history",
        if (back_loaded - front_loaded).abs() > 0.02 || back_loaded != front_loaded {
            "REVEALS"
        } else {
            "does not obviously reveal"
        }
    );
}
