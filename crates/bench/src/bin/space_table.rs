//! **E3 / space-overhead table** — ratio of allocated slots to stored
//! elements for the HI PMA over a long insert run. The paper reports a space
//! overhead ranging from 1.8× to 5×.
//!
//! Run: `cargo run -p ap-bench --release --bin space_table`

use ap_bench::{emit, scaled, Row};
use pma::{ClassicPma, HiPma};
use workloads::{random_inserts, Op};

fn main() {
    let n = scaled(200_000);
    let samples = 25usize;
    let trace = random_inserts(n, 13);

    let mut hi: HiPma<u64> = HiPma::new(5);
    let mut classic: ClassicPma<u64> = ClassicPma::new();
    let mut keys: Vec<u64> = Vec::with_capacity(n);
    let mut rows = Vec::new();
    let mut hi_min = f64::MAX;
    let mut hi_max: f64 = 0.0;

    let checkpoint = (n / samples).max(1);
    for (i, op) in trace.ops.iter().enumerate() {
        let Op::Insert(key, _) = op else {
            unreachable!()
        };
        let rank = keys.partition_point(|k| k < key);
        keys.insert(rank, *key);
        hi.insert(rank, *key).unwrap();
        classic.insert(rank, *key).unwrap();
        if (i + 1) % checkpoint == 0 {
            let hi_ratio = hi.total_slots() as f64 / hi.len() as f64;
            let classic_ratio = classic.total_slots() as f64 / classic.len() as f64;
            hi_min = hi_min.min(hi_ratio);
            hi_max = hi_max.max(hi_ratio);
            rows.push(Row::new(
                "HI PMA slots/N",
                (i + 1) as f64,
                hi_ratio,
                "ratio",
            ));
            rows.push(Row::new(
                "classic PMA slots/N",
                (i + 1) as f64,
                classic_ratio,
                "ratio",
            ));
        }
    }
    emit("Space overhead over a random-insert run", &rows);
    println!("\nHI PMA slots/N ranged over [{hi_min:.2}, {hi_max:.2}]  (paper: 1.8x to 5x)");
}
