//! The price of integrity: checksummed flushes, scrubs, and verified loads.
//!
//! The v2 on-disk format adds a checksum region — one FNV word per payload
//! block, rooted in the header — so every read is verified and `scrub()`
//! can sweep the whole image for silent corruption. This harness quantifies
//! what that costs, per database size:
//!
//! * **flush-checksummed/wall-clock** — full-flush throughput with the
//!   region maintained. Comparable against the PR 6 `block_store_io`
//!   `flush-full/wall-clock` baselines: the checksum words are the dirty
//!   gate's FNV hashes, already computed per block, so the only new work
//!   is writing the region blocks themselves.
//! * **checksum-region/extra-writes** — region blocks written by a full
//!   flush, i.e. the write amplification of integrity (one block per
//!   `block_size/8` payload blocks, so ≈0.2% at 4 KiB blocks).
//! * **scrub/wall-clock** — a full integrity sweep (every payload block
//!   read and hashed against its word) in MB/s.
//! * **verified-reopen/wall-clock** — a reopen + load with per-block
//!   verification on the read path, in MB/s.
//!
//! Scale with `AP_BENCH_SCALE`, dump rows with `AP_BENCH_JSON=out.json`,
//! or pass `--smoke` for a seconds-long CI run.

use anti_persistence::block_store::temp_path;
use anti_persistence::dict::{Backend, Dict};
use anti_persistence::prelude::*;
use ap_bench::{emit, scaled, timed, Row};

/// splitmix64, the stateless key scrambler used across the benches.
fn scramble(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const BLOCK: usize = 4096;

fn run(rows: &mut Vec<Row>, n: usize) {
    let x = n as f64;
    let path = temp_path(&format!("bench-fault-{n}"));
    let mut dict = Dict::builder()
        .backend(Backend::HiPma)
        .seed(0xFA17)
        .build_persistent(&path)
        .expect("open block store");
    for i in 0..n as u64 {
        dict.insert(scramble(i), i);
    }

    let (_, flush_secs) = timed(|| dict.flush().expect("checksummed flush"));
    let file_len = std::fs::metadata(dict.store().path()).expect("stat").len();
    let mb = file_len as f64 / (1024.0 * 1024.0);
    rows.push(Row::new(
        "flush-checksummed/wall-clock",
        x,
        mb / flush_secs.max(1e-9),
        "MB/s",
    ));

    // The integrity tax in blocks: one region block per block_size/8
    // payload blocks, all rewritten on a full flush.
    let words_per_block = (BLOCK / 8) as u64;
    let payload_blocks = file_len / BLOCK as u64;
    let region_blocks = payload_blocks.div_ceil(words_per_block);
    rows.push(Row::new(
        "checksum-region/extra-writes",
        x,
        region_blocks as f64,
        "blocks",
    ));

    // A full scrub: every payload block read back and hashed against its
    // persisted word. The report must come back clean.
    let (report, scrub_secs) = timed(|| dict.scrub().expect("scrub"));
    assert!(report.is_clean(), "a fresh image must scrub clean");
    rows.push(Row::new(
        "scrub/wall-clock",
        x,
        mb / scrub_secs.max(1e-9),
        "MB/s",
    ));

    let len = dict.len();
    let data_path = dict.store().path().to_path_buf();
    let journal_path = dict.store().journal_path().to_path_buf();
    drop(dict);

    // Reopen with the verifying read path: every block checked against the
    // region as it streams in.
    let (reopened, reopen_secs) = timed(|| {
        Dict::builder()
            .backend(Backend::HiPma)
            .build_persistent(&path)
            .expect("verified reopen")
    });
    assert_eq!(reopened.len(), len, "reopen must recover every record");
    rows.push(Row::new(
        "verified-reopen/wall-clock",
        x,
        mb / reopen_secs.max(1e-9),
        "MB/s",
    ));

    println!(
        "n={n:>8}: image {payload_blocks:>6} blocks (+{region_blocks} checksum) | \
         flush {:>7.1} MB/s | scrub {:>7.1} MB/s | verified reopen {:>7.1} MB/s",
        mb / flush_secs.max(1e-9),
        mb / scrub_secs.max(1e-9),
        mb / reopen_secs.max(1e-9),
    );

    let _ = std::fs::remove_file(&data_path);
    let _ = std::fs::remove_file(&journal_path);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: Vec<usize> = if smoke {
        vec![5_000, 20_000]
    } else {
        vec![scaled(50_000), scaled(200_000), scaled(500_000)]
    };
    let mut rows: Vec<Row> = Vec::new();
    for n in sizes {
        run(&mut rows, n);
    }
    emit("fault tolerance: the cost of checksummed storage", &rows);
}
