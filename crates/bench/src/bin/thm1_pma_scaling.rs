//! **E5 / Theorem 1** — amortized element moves and simulated I/Os of the HI
//! PMA as N grows. The theorem predicts `O(log²N)` moves and
//! `O(log²N/B + log_B N)` I/Os per update; the table reports the measured
//! quantities divided by their predictions, which should stay roughly flat.
//!
//! Run: `cargo run -p ap-bench --release --bin thm1_pma_scaling`

use ap_bench::{emit, scaled, Row};
use hi_common::SharedCounters;
use io_sim::{IoConfig, Tracer};
use pma::HiPma;
use workloads::{random_inserts, Op};

fn main() {
    let block_bytes = 4096u64;
    let mut rows = Vec::new();
    for &n in &[
        scaled(20_000),
        scaled(50_000),
        scaled(100_000),
        scaled(200_000),
    ] {
        let trace = random_inserts(n, 3);
        let tracer = Tracer::enabled(IoConfig::new(block_bytes as usize, 1 << 12));
        let counters = SharedCounters::new();
        let mut pma: HiPma<u64> = HiPma::with_parts(
            hi_common::RngSource::from_seed(n as u64),
            counters.clone(),
            tracer.clone(),
            16,
        );
        let mut keys: Vec<u64> = Vec::with_capacity(n);
        for op in &trace.ops {
            let Op::Insert(key, _) = op else {
                unreachable!()
            };
            let rank = keys.partition_point(|k| k < key);
            keys.insert(rank, *key);
            pma.insert(rank, *key).unwrap();
        }
        let log2n = (n as f64).log2();
        let moves_per_op = counters.snapshot().element_moves as f64 / n as f64;
        let ios_per_op = tracer.stats().transfers() as f64 / n as f64;
        let records_per_block = block_bytes as f64 / 16.0;
        let io_prediction = log2n * log2n / records_per_block + log2n / records_per_block.log2();
        rows.push(Row::new("moves/op", n as f64, moves_per_op, "per-op cost"));
        rows.push(Row::new(
            "moves/op ÷ log²N",
            n as f64,
            moves_per_op / (log2n * log2n),
            "per-op cost",
        ));
        rows.push(Row::new(
            "sim I/Os per op",
            n as f64,
            ios_per_op,
            "per-op cost",
        ));
        rows.push(Row::new(
            "I/Os ÷ (log²N/B + log_B N)",
            n as f64,
            ios_per_op / io_prediction,
            "per-op cost",
        ));
    }
    emit(
        "Theorem 1: HI PMA update cost scaling (normalized columns should stay flat)",
        &rows,
    );
}
