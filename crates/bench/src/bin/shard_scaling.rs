//! Batched throughput of the sharded dictionary service: shards × threads
//! × workload.
//!
//! The standing acceptance bar comes from `update_throughput` (PR 3): the
//! single-threaded HI PMA sustains ~336 k uniform inserts/s at 1 M keys.
//! This harness measures the first multi-core rows of the trajectory:
//! `multi_put` / `multi_get` batches over `S` hash-partitioned shards,
//! executed either inline (`T=1`) or fanned out to one scoped worker
//! thread per shard (`T=S`), under uniform and Zipf-skewed key streams.
//! Sharding pays twice: worker threads run on as many cores as the host
//! offers, and each shard holds `N/S` keys, so the HI PMA's `O(log² N)`
//! per-update cost and the keyed adapter's binary search both shrink.
//!
//! A snapshot of these rows is appended to `BENCH_baseline.json`; later
//! PRs are held to them (see EXPERIMENTS.md). Scale with
//! `AP_BENCH_SHARD_N`, dump rows with `AP_BENCH_JSON=out.json`, or pass
//! `--smoke` for a seconds-long CI run.

use std::hint::black_box;

use anti_persistence::dict::{Backend, Dict, DynDict};
use anti_persistence::prelude::*;
use ap_bench::{emit, env_usize, timed, Row};

/// splitmix64, the stateless key scrambler used across the benches.
fn scramble(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pre-generated key stream: uniform (distinct w.h.p.) or Zipf-like
/// (squared unit sample squashed onto a narrow hot set — heavy overwrites).
fn key_stream(ops: usize, zipf: bool, salt: u64) -> Vec<u64> {
    (0..ops as u64)
        .map(|i| {
            let r = scramble(i ^ salt);
            if zipf {
                let u = (r >> 11) as f64 / (1u64 << 53) as f64;
                ((u * u) * (ops as f64 / 2.0)) as u64
            } else {
                r
            }
        })
        .collect()
}

fn service(backend: Backend, shards: usize, threads: usize) -> ShardedDict<DynDict<u64, u64>> {
    let mut s: ShardedDict<DynDict<u64, u64>> = Dict::builder()
        .backend(backend)
        .seed(7)
        .shards(shards)
        .build_sharded();
    // T=1 pins every batch to the inline path; T=S lets each batch fan out
    // to one scoped worker thread per shard.
    s.set_parallel_threshold(if threads == 1 { usize::MAX } else { 0 });
    s
}

/// Loads `keys` through `multi_put` in `batch`-sized rounds; returns ops/s.
fn put_phase(s: &mut ShardedDict<DynDict<u64, u64>>, keys: &[u64], batch: usize) -> f64 {
    let (_, secs) = timed(|| {
        for chunk in keys.chunks(batch) {
            s.multi_put(chunk.iter().map(|&k| (k, k ^ 0xABCD)));
        }
    });
    keys.len() as f64 / secs.max(1e-9)
}

/// Reads `keys` through `multi_get` in `batch`-sized rounds; returns ops/s.
fn get_phase(s: &ShardedDict<DynDict<u64, u64>>, keys: &[u64], batch: usize) -> f64 {
    let mut sink = 0u64;
    let (_, secs) = timed(|| {
        for chunk in keys.chunks(batch) {
            for v in s.multi_get(chunk).into_iter().flatten() {
                sink ^= v;
            }
        }
    });
    black_box(sink);
    keys.len() as f64 / secs.max(1e-9)
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    rows: &mut Vec<Row>,
    backend: Backend,
    workload: &str,
    zipf: bool,
    shards: usize,
    threads: usize,
    n: usize,
    batch: usize,
) -> f64 {
    let keys = key_stream(n, zipf, 0xA11CE);
    let mut s = service(backend, shards, threads);
    let put_ops = put_phase(&mut s, &keys, batch);
    let reads = key_stream(n / 2, zipf, 0xBEEF);
    let get_ops = get_phase(&s, &reads, batch);
    println!(
        "{backend:<12} {workload:<8} S={shards:<2} T={threads:<2} \
         multi_put x{n:>8}: {put_ops:>12.0} ops/s   multi_get x{:>8}: {get_ops:>12.0} ops/s",
        reads.len()
    );
    rows.push(Row::new(
        &format!("sharded-{backend} multi_put/{workload} S={shards} T={threads}"),
        n as f64,
        put_ops,
        "ops/sec",
    ));
    rows.push(Row::new(
        &format!("sharded-{backend} multi_get/{workload} S={shards} T={threads}"),
        reads.len() as f64,
        get_ops,
        "ops/sec",
    ));
    put_ops
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, batch) = if smoke {
        (40_000, 8_192)
    } else {
        (
            env_usize("AP_BENCH_SHARD_N", 1_000_000),
            env_usize("AP_BENCH_SHARD_BATCH", 65_536),
        )
    };
    // PR 3's single-threaded rank-engine acceptance row, the bar the
    // sharded service must clear on the 1M-key uniform workload.
    let baseline = 335_991.0f64;
    let shard_counts = if smoke {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };

    let mut rows: Vec<Row> = Vec::new();
    println!("## sharded hi-pma service, {n} keys per cell (batch {batch})\n");
    let mut best_uniform = 0.0f64;
    for &shards in &shard_counts {
        let thread_plans: &[usize] = if shards == 1 { &[1] } else { &[1, shards] };
        for &threads in thread_plans {
            for (workload, zipf) in [("uniform", false), ("zipf", true)] {
                let put_ops = run_cell(
                    &mut rows,
                    Backend::HiPma,
                    workload,
                    zipf,
                    shards,
                    threads,
                    n,
                    batch,
                );
                if workload == "uniform" && threads > 1 {
                    best_uniform = best_uniform.max(put_ops);
                }
            }
        }
    }
    if !smoke {
        println!(
            "\nbest threaded uniform multi_put: {best_uniform:.0} ops/s \
             ({:.2}x the PR 3 single-thread baseline of {baseline:.0} ops/s)",
            best_uniform / baseline
        );
    }

    println!("\n## cross-engine comparison at S=4, T=4\n");
    for backend in [Backend::CobBTree, Backend::BTree, Backend::HiSkipList] {
        for (workload, zipf) in [("uniform", false), ("zipf", true)] {
            run_cell(&mut rows, backend, workload, zipf, 4, 4, n, batch);
        }
    }

    emit(
        "sharded batched throughput (ops/sec, higher is better)",
        &rows,
    );
}
