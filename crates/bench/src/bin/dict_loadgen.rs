//! `dict-loadgen`: drive a running `dict-server` with a seeded 95/5
//! get/put mix and report latency percentiles and saturation throughput.
//!
//! Two modes per run:
//!
//! - **closed-loop** — `C` connections, each a thread issuing one
//!   synchronous request at a time. Throughput here *is* the saturation
//!   number: every client always has exactly one request in flight, so
//!   total ops/s is what the server sustains at that concurrency.
//! - **open-loop** — one connection, a sender pacing pipelined requests at
//!   a target arrival rate while a receiver timestamps responses; latency
//!   is measured from the *scheduled* send time, so queueing delay under
//!   load is visible (the coordinated-omission-free number).
//!
//! Every key and mix decision derives from splitmix64 over a fixed salt,
//! so two runs against equal-seeded servers issue identical streams.
//! Rows land in `AP_BENCH_JSON` (gated by `json_check` in CI) and a
//! snapshot is appended to `BENCH_baseline.json`; `--smoke` shrinks the
//! sweep to a seconds-long CI gate. `--addr HOST:PORT` (required) names
//! the server.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ap_bench::{emit, env_usize, Row};
use dict_server::protocol::{decode_response, encode_request, read_frame, write_frame, Frame};
use dict_server::{Client, ClientError, Request, Response};

/// splitmix64, the stateless key scrambler used across the benches.
fn scramble(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The i-th operation of the seeded 95/5 get/put mix over `keyspace` keys.
fn mix_op(i: u64, salt: u64, keyspace: u64) -> Request {
    let r = scramble(i ^ salt);
    let key = scramble(r) % keyspace;
    if r % 100 < 95 {
        Request::Get { key }
    } else {
        Request::Put {
            key,
            value: r ^ key,
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64
}

/// Preloads `keyspace` keys over one pipelined connection so the mix's
/// gets mostly hit.
fn preload(addr: SocketAddr, keyspace: u64) -> Result<(), ClientError> {
    let mut c = Client::connect(addr)?;
    for k in 0..keyspace {
        c.send(&Request::Put {
            key: k,
            value: scramble(k),
        })?;
    }
    c.flush()?;
    for _ in 0..keyspace {
        match c.recv()? {
            Response::Done => {}
            other => return Err(ClientError::Unexpected(other)),
        }
    }
    Ok(())
}

struct Measured {
    /// Sorted per-op latencies in microseconds.
    latencies: Vec<u64>,
    /// Total completed ops divided by wall time.
    throughput: f64,
    shed: usize,
}

/// `C` synchronous clients, `ops` requests each.
fn closed_loop(addr: SocketAddr, clients: usize, ops: usize, keyspace: u64) -> Measured {
    let start = Instant::now();
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        handles.push(std::thread::spawn(move || -> Result<_, ClientError> {
            let mut client = Client::connect(addr)?;
            let salt = 0xC105_ED00 + c as u64;
            let mut lat = Vec::with_capacity(ops);
            let mut shed = 0usize;
            for i in 0..ops {
                let req = mix_op(i as u64, salt, keyspace);
                let t0 = Instant::now();
                let resp = client.request(&req)?;
                lat.push(t0.elapsed().as_micros() as u64);
                if matches!(resp, Response::Overloaded) {
                    shed += 1;
                }
            }
            Ok((lat, shed))
        }));
    }
    let mut latencies = Vec::with_capacity(clients * ops);
    let mut shed = 0;
    for h in handles {
        let (lat, s) = h
            .join()
            .expect("loadgen client thread panicked")
            .expect("loadgen client I/O failed");
        latencies.extend(lat);
        shed += s;
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let throughput = latencies.len() as f64 / elapsed;
    latencies.sort_unstable();
    Measured {
        latencies,
        throughput,
        shed,
    }
}

/// One pipelined connection paced at `rate` ops/s; latency measured from
/// each op's *scheduled* send time. The send and receive halves are the
/// two clones of one socket, driven by separate threads.
fn open_loop(addr: SocketAddr, rate: f64, ops: usize, keyspace: u64) -> Measured {
    let stream = TcpStream::connect(addr).expect("loadgen connect failed");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = BufWriter::new(stream.try_clone().expect("socket clone"));
    let mut reader = BufReader::new(stream);
    let start = Instant::now();
    let producer = std::thread::spawn(move || -> std::io::Result<()> {
        for i in 0..ops {
            let due = Duration::from_secs_f64(i as f64 / rate);
            let now = start.elapsed();
            if due > now {
                std::thread::sleep(due - now);
            }
            // Raw enveloped frames (token = i + 1, anonymous connection):
            // correlation without dedup, so the open loop measures the
            // untokened fast path.
            write_frame(
                &mut writer,
                &encode_request(i as u64 + 1, &mix_op(i as u64, 0x0FE2_10AD, keyspace)),
            )?;
            writer.flush()?;
        }
        Ok(())
    });
    let mut latencies = Vec::with_capacity(ops);
    let mut shed = 0usize;
    for i in 0..ops {
        let resp = match read_frame(&mut reader).expect("loadgen recv failed") {
            Frame::Body(body) => decode_response(&body).expect("response decodes").1,
            other => panic!("server hung up mid-run: {other:?}"),
        };
        if matches!(resp, Response::Overloaded) {
            shed += 1;
        }
        let due = Duration::from_secs_f64(i as f64 / rate);
        latencies.push(start.elapsed().saturating_sub(due).as_micros() as u64);
    }
    producer
        .join()
        .expect("loadgen sender thread panicked")
        .expect("loadgen send failed");
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let throughput = ops as f64 / elapsed;
    latencies.sort_unstable();
    Measured {
        latencies,
        throughput,
        shed,
    }
}

fn push_rows(rows: &mut Vec<Row>, series: &str, x: f64, m: &Measured) {
    for (metric, p) in [
        ("latency_p50_us", 0.50),
        ("latency_p99_us", 0.99),
        ("latency_p999_us", 0.999),
    ] {
        rows.push(Row::new(series, x, percentile(&m.latencies, p), metric));
    }
    rows.push(Row::new(series, x, m.throughput, "ops/sec"));
}

fn report(series: &str, m: &Measured) {
    println!(
        "{series:<38} p50={:>7.0}us p99={:>7.0}us p999={:>7.0}us {:>9.0} ops/s{}",
        percentile(&m.latencies, 0.50),
        percentile(&m.latencies, 0.99),
        percentile(&m.latencies, 0.999),
        m.throughput,
        if m.shed > 0 {
            format!("  ({} shed)", m.shed)
        } else {
            String::new()
        }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let addr: SocketAddr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .expect("--addr HOST:PORT is required")
        .parse()
        .expect("--addr must be HOST:PORT");

    let (ops, keyspace, client_counts, rates): (usize, u64, Vec<usize>, Vec<f64>) = if smoke {
        (2_000, 4_096, vec![1, 2], vec![20_000.0])
    } else {
        (
            env_usize("AP_BENCH_LOADGEN_OPS", 20_000),
            env_usize("AP_BENCH_LOADGEN_KEYSPACE", 65_536) as u64,
            vec![1, 2, 4, 8],
            vec![50_000.0, 150_000.0],
        )
    };

    preload(addr, keyspace).expect("preload failed");

    let mut rows: Vec<Row> = Vec::new();
    println!("## dict-server 95/5 get/put mix, {ops} ops per client, keyspace {keyspace}\n");
    for &clients in &client_counts {
        let m = closed_loop(addr, clients, ops, keyspace);
        let series = format!("dict-server closed-loop 95/5 c={clients}");
        push_rows(&mut rows, &series, clients as f64, &m);
        report(&series, &m);
    }
    for &rate in &rates {
        let m = open_loop(addr, rate, ops, keyspace);
        let series = format!("dict-server open-loop 95/5 rate={}", rate as u64);
        push_rows(&mut rows, &series, rate, &m);
        report(&series, &m);
    }

    emit("dict-server latency/throughput (95/5 get/put mix)", &rows);
}
