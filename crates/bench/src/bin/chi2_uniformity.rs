//! **E4 / χ² uniformity experiment** (paper §4.3) — inserts the values
//! `1..=K` sequentially into a fresh HI PMA, `T` times with independent
//! randomness, records the balance-element position within every candidate
//! set of size ≥ 8, χ²-tests each candidate set's positions against uniform,
//! and finally χ²-tests the resulting p-values against the uniform
//! distribution on [0, 1].
//!
//! The paper runs K = 100 000 and T = 10 000 and reports `p = 0.47` over
//! `n = 148` candidate sets. Defaults here are scaled down; raise them with
//! `AP_BENCH_SCALE` / `AP_BENCH_TRIALS`.
//!
//! Run: `cargo run -p ap-bench --release --bin chi2_uniformity`

use ap_bench::{env_usize, scaled};
use hi_common::stats::uniformity::UniformityReport;
use pma::HiPma;
use std::collections::HashMap;

fn main() {
    let k = scaled(20_000);
    let trials = env_usize("AP_BENCH_TRIALS", 300);
    println!("chi^2 uniformity experiment: K = {k} sequential inserts, T = {trials} trials");

    // Balance-position histograms keyed by (depth, range index, window size):
    // a "candidate set" is only comparable across trials while the geometry
    // is the same, which the (depth, range, window) triple captures.
    let mut histograms: HashMap<(u32, usize, usize), Vec<u64>> = HashMap::new();

    for t in 0..trials {
        let mut pma: HiPma<u64> = HiPma::new(0x5EED_0000 + t as u64);
        for v in 1..=k as u64 {
            pma.insert((v - 1) as usize, v).unwrap();
        }
        for record in pma.balance_records() {
            if record.window < 8 {
                continue;
            }
            let hist = histograms
                .entry((record.depth, record.range, record.window))
                .or_insert_with(|| vec![0; record.window]);
            if hist.len() == record.window {
                hist[record.offset] += 1;
            }
        }
    }

    let per_set_counts: Vec<Vec<u64>> = histograms.into_values().collect();
    let report = UniformityReport::from_counts(&per_set_counts, 10);
    println!(
        "\ncandidate sets tested: {} (skipped {} with too few samples)",
        report.tested_sets(),
        report.skipped_sets
    );
    match report.meta_p_value() {
        Some(p) => {
            println!(
                "meta chi^2 over the per-set p-values: p = {p:.3} (n = {})",
                report.tested_sets()
            );
            println!("paper reports p = 0.47 with n = 148");
            println!(
                "conclusion: {}",
                if report.consistent_with_uniform(0.01) {
                    "no statistically significant deviation from uniformity"
                } else {
                    "DEVIATION DETECTED — investigate"
                }
            );
        }
        None => println!(
            "not enough candidate sets for the meta test at this scale; raise AP_BENCH_TRIALS / AP_BENCH_SCALE"
        ),
    }
}
