//! Mixed insert/delete/query throughput across every backend and workload.
//!
//! This is the repo's standing update-path performance trajectory: it
//! measures wall-clock operations per second for
//!
//! 1. the **rank-addressed engines** (`HiPma`, `ClassicPma`) under uniform
//!    random ranks, sequential appends and front-skewed (Zipf-like) ranks —
//!    the acceptance workload for the allocation-free rebalance engine is
//!    the 1M-key `u64` uniform insert phase of the HI PMA;
//! 2. the **seven keyed backends** behind the `DynDict` facade under
//!    uniform-mixed, sequential-insert and Zipf-skewed traces.
//!
//! A snapshot of these rows is committed as `BENCH_baseline.json` at the
//! repo root so later PRs are held to the recorded numbers (see
//! EXPERIMENTS.md). Scale with `AP_BENCH_SCALE`, dump rows with
//! `AP_BENCH_JSON=out.json`, or pass `--smoke` for a seconds-long CI run.

use std::hint::black_box;

use anti_persistence::dict::{Backend, Dict, DynDict};
use anti_persistence::prelude::Dictionary;
use ap_bench::{emit, env_usize, timed, Row};
use hi_common::RankedSequence;
use pma::{ClassicPma, HiPma};
use workloads::{mixed, sequential_inserts, zipf_inserts, Op, Trace};

/// splitmix64, the stateless key scrambler used across the benches.
fn scramble(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pre-generated rank sequence so generation cost never pollutes the timing.
/// `skew` 0 = uniform over the legal range; otherwise ranks are squashed
/// toward the front (a Zipf-like hot-spot for rank-addressed updates).
fn rank_trace(ops: usize, skew: bool, salt: u64) -> Vec<u64> {
    (0..ops as u64)
        .map(|i| {
            let r = scramble(i ^ salt);
            if skew {
                // Square the unit sample: mass concentrates near rank 0.
                let u = (r >> 11) as f64 / (1u64 << 53) as f64;
                ((u * u) * u64::MAX as f64) as u64
            } else {
                r
            }
        })
        .collect()
}

/// Runs `ops` inserts against a rank engine, ranks drawn from `ranks`
/// (reduced modulo the current length), returning ops/sec.
fn rank_insert_phase<S: RankedSequence<Item = u64>>(seq: &mut S, ranks: &[u64]) -> f64 {
    let (_, secs) = timed(|| {
        for (i, &r) in ranks.iter().enumerate() {
            let rank = (r % (seq.len() as u64 + 1)) as usize;
            seq.insert_at(rank, i as u64).expect("rank in range");
        }
    });
    ranks.len() as f64 / secs.max(1e-9)
}

/// Runs a 50/30/20 insert/delete/point-query mix, returning ops/sec.
fn rank_mixed_phase<S: RankedSequence<Item = u64>>(seq: &mut S, ranks: &[u64]) -> f64 {
    let mut sink = 0u64;
    let (_, secs) = timed(|| {
        for (i, &r) in ranks.iter().enumerate() {
            let len = seq.len();
            match i % 10 {
                0..=4 => {
                    let rank = (r % (len as u64 + 1)) as usize;
                    seq.insert_at(rank, i as u64).expect("rank in range");
                }
                5..=7 if len > 0 => {
                    let rank = (r % len as u64) as usize;
                    seq.delete_at(rank).expect("rank in range");
                }
                _ if len > 0 => {
                    let rank = (r % len as u64) as usize;
                    sink ^= *seq.get_ref(rank).expect("rank in range");
                }
                _ => {}
            }
        }
    });
    black_box(sink);
    ranks.len() as f64 / secs.max(1e-9)
}

fn run_rank_engines(rows: &mut Vec<Row>, insert_n: usize, mixed_n: usize) {
    println!("## rank-addressed engines (native Insert/Delete/Query API)\n");
    for (workload, skew) in [("uniform", false), ("sequential", false), ("zipf", true)] {
        // Append-only for "sequential"; otherwise pre-generated random ranks.
        let ranks: Vec<u64> = if workload == "sequential" {
            Vec::new()
        } else {
            rank_trace(insert_n, skew, 0xA11CE)
        };
        // HI PMA.
        let mut hi: HiPma<u64> = HiPma::new(7);
        let ops_per_sec = if workload == "sequential" {
            let (_, secs) = timed(|| {
                for i in 0..insert_n {
                    hi.insert_at(i, i as u64).expect("append rank");
                }
            });
            insert_n as f64 / secs.max(1e-9)
        } else {
            rank_insert_phase(&mut hi, &ranks)
        };
        println!("hi-pma      {workload:<11} insert x{insert_n:>8}: {ops_per_sec:>12.0} ops/s");
        rows.push(Row::new(
            &format!("hi-pma insert/{workload}"),
            insert_n as f64,
            ops_per_sec,
            "ops/sec",
        ));
        // Mixed phase continues from the loaded state.
        let mix = rank_trace(mixed_n, skew, 0xBEEF);
        let mixed_ops = rank_mixed_phase(&mut hi, &mix);
        println!("hi-pma      {workload:<11} mixed  x{mixed_n:>8}: {mixed_ops:>12.0} ops/s");
        rows.push(Row::new(
            &format!("hi-pma mixed/{workload}"),
            mixed_n as f64,
            mixed_ops,
            "ops/sec",
        ));

        // Classic PMA baseline.
        let mut classic: ClassicPma<u64> = ClassicPma::new();
        let ops_per_sec = if workload == "sequential" {
            let (_, secs) = timed(|| {
                for i in 0..insert_n {
                    classic.insert_at(i, i as u64).expect("append rank");
                }
            });
            insert_n as f64 / secs.max(1e-9)
        } else {
            rank_insert_phase(&mut classic, &ranks)
        };
        println!("classic-pma {workload:<11} insert x{insert_n:>8}: {ops_per_sec:>12.0} ops/s");
        rows.push(Row::new(
            &format!("classic-pma insert/{workload}"),
            insert_n as f64,
            ops_per_sec,
            "ops/sec",
        ));
        let mixed_ops = rank_mixed_phase(&mut classic, &mix);
        println!("classic-pma {workload:<11} mixed  x{mixed_n:>8}: {mixed_ops:>12.0} ops/s");
        rows.push(Row::new(
            &format!("classic-pma mixed/{workload}"),
            mixed_n as f64,
            mixed_ops,
            "ops/sec",
        ));
    }
}

/// Replays a keyed trace, folding query results into a sink so the optimizer
/// cannot discard them. Returns operations applied.
fn replay_keyed(trace: &Trace, dict: &mut DynDict<u64, u64>) -> u64 {
    let mut sink = 0u64;
    for op in &trace.ops {
        match *op {
            Op::Insert(k, v) => {
                dict.insert(k, v);
            }
            Op::Delete(k) => {
                dict.remove(&k);
            }
            Op::Get(k) => {
                if let Some(v) = dict.get_ref(&k) {
                    sink ^= *v;
                }
            }
            Op::Range(a, b) => {
                sink ^= dict.range_iter(a..=b).map(|(_, v)| *v).sum::<u64>();
            }
        }
    }
    black_box(sink);
    trace.ops.len() as u64
}

fn run_keyed_backends(rows: &mut Vec<Row>, ops: usize) {
    println!("\n## keyed backends (DynDict facade), {ops} ops per cell\n");
    let key_space = (ops as u64 / 2).max(64);
    let traces = [
        ("uniform", mixed(ops, key_space, 0.5, 0xD1CE)),
        ("sequential", sequential_inserts(ops)),
        ("zipf", zipf_inserts(ops, key_space, 1.1, 0x21BF)),
    ];
    for backend in Backend::ALL {
        for (workload, trace) in &traces {
            let mut dict: DynDict<u64, u64> = Dict::builder()
                .backend(backend)
                .seed(11)
                .block_elems(64)
                .build();
            let (applied, secs) = timed(|| replay_keyed(trace, &mut dict));
            let ops_per_sec = applied as f64 / secs.max(1e-9);
            println!("{backend:<20} {workload:<11} x{applied:>8}: {ops_per_sec:>12.0} ops/s");
            rows.push(Row::new(
                &format!("{backend}/{workload}"),
                applied as f64,
                ops_per_sec,
                "ops/sec",
            ));
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Acceptance workload: 1M-key u64 uniform inserts on the rank engines.
    let (insert_n, mixed_n, keyed_ops) = if smoke {
        (20_000, 10_000, 3_000)
    } else {
        (
            env_usize("AP_BENCH_INSERT_N", 1_000_000),
            env_usize("AP_BENCH_MIXED_N", 200_000),
            env_usize("AP_BENCH_KEYED_OPS", 60_000),
        )
    };
    let mut rows: Vec<Row> = Vec::new();
    run_rank_engines(&mut rows, insert_n, mixed_n);
    run_keyed_backends(&mut rows, keyed_ops);
    emit("update throughput (ops/sec, higher is better)", &rows);
}
