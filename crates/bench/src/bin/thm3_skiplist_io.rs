//! **E7 / Theorem 3** — I/O cost of the history-independent external-memory
//! skip list across N, B and ε: searches and inserts should track `log_B N`
//! (amortized, whp), range queries `(1/ε)·log_B N + k/B`, and the worst-case
//! insert should stay below `B^ε · log N`.
//!
//! Run: `cargo run -p ap-bench --release --bin thm3_skiplist_io`

use ap_bench::{emit, scaled, Row};
use hi_common::stats::Summary;
use skiplist::ExternalSkipList;

fn main() {
    let mut rows = Vec::new();
    for &b in &[16usize, 64, 256] {
        for &eps in &[0.2f64, 0.5] {
            let n = scaled(60_000) as u64;
            let mut list: ExternalSkipList<u64, u64> =
                ExternalSkipList::history_independent(b, eps, b as u64);
            let mut insert_costs = Vec::with_capacity(n as usize);
            for k in 0..n {
                list.insert(k * 7 % (2 * n), k);
                insert_costs.push(list.last_op_ios());
            }
            let mut search_costs = Vec::new();
            for k in (0..2 * n).step_by(197) {
                list.get(&k);
                search_costs.push(list.last_op_ios());
            }
            let mut range_costs = Vec::new();
            let k_range = 4096u64;
            for start in (0..n).step_by((n / 20).max(1) as usize) {
                list.range(&start, &(start + k_range));
                range_costs.push(list.last_op_ios());
            }
            let ins = Summary::of_counts(&insert_costs).unwrap();
            let srch = Summary::of_counts(&search_costs).unwrap();
            let rng = Summary::of_counts(&range_costs).unwrap();
            let series = format!("B={b} eps={eps}");
            let log_b_n = (n as f64).log2() / (b as f64).log2();
            rows.push(Row::new(
                &format!("{series} search mean"),
                b as f64,
                srch.mean,
                "I/Os",
            ));
            rows.push(Row::new(
                &format!("{series} search p99"),
                b as f64,
                srch.p99,
                "I/Os",
            ));
            rows.push(Row::new(
                &format!("{series} insert mean"),
                b as f64,
                ins.mean,
                "I/Os",
            ));
            rows.push(Row::new(
                &format!("{series} insert max"),
                b as f64,
                ins.max,
                "I/Os",
            ));
            rows.push(Row::new(
                &format!("{series} range(k=4096) mean"),
                b as f64,
                rng.mean,
                "I/Os",
            ));
            println!(
                "B={b:<4} eps={eps:<4} N={n}: search mean {:.2} (log_B N = {:.2}), insert mean {:.2}, insert max {:.0} (bound B^eps*logN = {:.0}), range mean {:.1}",
                srch.mean,
                log_b_n,
                ins.mean,
                ins.max,
                (b as f64).powf(eps) * (n as f64).log2(),
                rng.mean
            );
        }
    }
    emit("Theorem 3: HI external skip list I/O costs", &rows);
}
