//! DAM-model-vs-real-device validation for the file-backed block store.
//!
//! Until this PR every I/O number in the repo came from the simulated DAM
//! ledger. The block store finally gives the model a ground truth to be
//! checked against: the flush and reopen paths move whole blocks through a
//! real file, and their physical transfer counts are known in closed form
//! (a full flush writes every block of the image exactly once; a reopen
//! reads them back). This harness measures, per database size:
//!
//! * **dam-predicted** — the closed-form DAM cost, `file_len / B` blocks;
//! * **device-writes / device-reads** — actual physical block transfers
//!   from the store's `FileStats` ledger (data file only);
//! * **with-journal** — total writes including the journal, i.e. the
//!   write-amplification price of crash atomicity (≈ 2× + one block);
//! * **dam-ledger** — every physical transfer (data + journal) as charged
//!   into an attached `io_sim::Tracer`, which must equal `with-journal`:
//!   the simulated ledger and the device agree transfer for transfer;
//! * **wall-clock MB/s** for the flush and the reopen, tying the transfer
//!   counts to real time on a real device.
//!
//! Two follow-up flushes probe the hash gate: a no-op flush (contents
//! unchanged) must write zero blocks, while a 1% churn honestly rewrites
//! most of the image — the canonical layout is redrawn from the contents,
//! so almost every block's bytes change. Anti-persistence is the point;
//! cheap incremental flushes are not promised and not delivered.
//!
//! Scale with `AP_BENCH_SCALE`, dump rows with `AP_BENCH_JSON=out.json`,
//! or pass `--smoke` for a seconds-long CI run.

use anti_persistence::block_store::temp_path;
use anti_persistence::dict::{Backend, Dict};
use anti_persistence::prelude::*;
use ap_bench::{emit, scaled, timed, Row};

/// splitmix64, the stateless key scrambler used across the benches.
fn scramble(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const BLOCK: usize = 4096;

fn run(rows: &mut Vec<Row>, n: usize) {
    let x = n as f64;
    let path = temp_path(&format!("bench-bsio-{n}"));
    let mut dict = Dict::builder()
        .backend(Backend::HiPma)
        .seed(0xB10C)
        .build_persistent(&path)
        .expect("open block store");
    // Route the physical transfers into a simulated-DAM ledger too: the
    // bench cross-checks the two accountings against each other.
    let ledger = Tracer::enabled(IoConfig::new(BLOCK, 64));
    dict.store_mut().set_tracer(ledger.clone());

    for i in 0..n as u64 {
        dict.insert(scramble(i), i);
    }
    let (_, full_secs) = timed(|| dict.flush().expect("full flush"));
    let full = dict.store().stats();
    let file_len = std::fs::metadata(dict.store().path()).expect("stat").len();
    let image_blocks = (file_len / BLOCK as u64) as f64;
    let mb = file_len as f64 / (1024.0 * 1024.0);

    rows.push(Row::new(
        "flush-full/dam-predicted",
        x,
        image_blocks,
        "blocks",
    ));
    rows.push(Row::new(
        "flush-full/device-writes",
        x,
        full.data.blocks_written as f64,
        "blocks",
    ));
    rows.push(Row::new(
        "flush-full/dam-ledger",
        x,
        ledger.stats().writes as f64,
        "blocks",
    ));
    rows.push(Row::new(
        "flush-full/with-journal",
        x,
        full.blocks_written() as f64,
        "blocks",
    ));
    rows.push(Row::new(
        "flush-full/wall-clock",
        x,
        mb / full_secs.max(1e-9),
        "MB/s",
    ));

    // A flush with unchanged contents: the hash gate must find every block
    // clean and write nothing at all.
    let before = dict.store().stats();
    dict.flush().expect("no-op flush");
    let noop = dict.store().stats();
    rows.push(Row::new(
        "flush-noop/with-journal",
        x,
        (noop.blocks_written() - before.blocks_written()) as f64,
        "blocks",
    ));

    // Churn 1% of the keys and flush: the canonical layout is redrawn from
    // the new contents, so most blocks change — the gate only spares the
    // few whose bytes happen to coincide.
    let churn = (n / 100).max(1) as u64;
    for i in 0..churn {
        dict.remove(&scramble(i));
        dict.insert(scramble(i ^ 0xDEAD), i);
    }
    let before = dict.store().stats();
    let (_, _incr_secs) = timed(|| dict.flush().expect("incremental flush"));
    let incr = dict.store().stats();
    rows.push(Row::new(
        "flush-incremental/device-writes",
        x,
        (incr.data.blocks_written - before.data.blocks_written) as f64,
        "blocks",
    ));
    rows.push(Row::new(
        "flush-incremental/with-journal",
        x,
        (incr.blocks_written() - before.blocks_written()) as f64,
        "blocks",
    ));

    let data_path = dict.store().path().to_path_buf();
    let journal_path = dict.store().journal_path().to_path_buf();
    let len = dict.len();
    drop(dict);

    // Reopen: one sequential pass over the image, then a bulk load in RAM.
    let (reopened, reopen_secs) = timed(|| {
        Dict::builder()
            .backend(Backend::HiPma)
            .build_persistent(&path)
            .expect("reopen")
    });
    assert_eq!(reopened.len(), len, "reopen must recover every record");
    let file_len = std::fs::metadata(&data_path).expect("stat").len();
    let image_blocks = (file_len / BLOCK as u64) as f64;
    rows.push(Row::new("reopen/dam-predicted", x, image_blocks, "blocks"));
    rows.push(Row::new(
        "reopen/device-reads",
        x,
        reopened.store().stats().blocks_read() as f64,
        "blocks",
    ));
    rows.push(Row::new(
        "reopen/wall-clock",
        x,
        (file_len as f64 / (1024.0 * 1024.0)) / reopen_secs.max(1e-9),
        "MB/s",
    ));

    println!(
        "n={n:>8}: image {image_blocks:>6.0} blocks | full flush {:>6} writes \
         ({:>6} w/ journal, {:>7.1} MB/s) | incremental {:>5} | reopen {:>6} reads \
         ({:>7.1} MB/s)",
        full.data.blocks_written,
        full.blocks_written(),
        mb / full_secs.max(1e-9),
        incr.data.blocks_written - before.data.blocks_written,
        reopened.store().stats().blocks_read(),
        (file_len as f64 / (1024.0 * 1024.0)) / reopen_secs.max(1e-9),
    );

    let _ = std::fs::remove_file(&data_path);
    let _ = std::fs::remove_file(&journal_path);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: Vec<usize> = if smoke {
        vec![5_000, 20_000]
    } else {
        vec![scaled(50_000), scaled(200_000), scaled(500_000)]
    };
    let mut rows: Vec<Row> = Vec::new();
    for n in sizes {
        run(&mut rows, n);
    }
    emit(
        "block store I/O: DAM-model prediction vs real device",
        &rows,
    );
}
