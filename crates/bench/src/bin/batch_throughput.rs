//! Group-commit batch throughput: batch size × workload × backend.
//!
//! The batch-apply engine pays one shared left-to-right locate pass, one
//! decision replay per operation (coin-for-coin identical to per-op
//! application — the determinism battery pins the layouts bit-identical)
//! and **one merge-rebalance per touched window**. Sequential and Zipf
//! batches, whose windows coalesce hard, gain the most; uniform batches
//! gain from the amortized locate pass and from moving the *union* (not
//! the sum) of the rebuilt windows. The replayed decisions themselves —
//! reservoir lotteries, balance draws, rank-tree updates — are the
//! irreducible cost both paths share, which is what bounds the speedup on
//! scattered workloads (see EXPERIMENTS.md for the measured breakdown).
//!
//! Four sections:
//!
//! 1. **hi-pma headline** — 1M preloaded keys, batch sizes 1/16/256/4096
//!    against the per-op baseline, for uniform / sequential / Zipf streams;
//! 2. **classic-pma headline** — same grid (its expensive per-op window
//!    rebalances make it the biggest batching winner);
//! 3. **ingest** — building 1M keys from empty (the `shard_scaling` S=1
//!    shape), batched vs per-op;
//! 4. **backend sweep** — every `DynDict` backend at 200k preloaded keys,
//!    batch 256 vs per-op, uniform stream.
//!
//! Rows are appended to `BENCH_baseline.json` snapshots (see
//! EXPERIMENTS.md). Scale with `AP_BENCH_BATCH_N`, dump rows with
//! `AP_BENCH_JSON=out.json`, or pass `--smoke` for a seconds-long CI run.

use std::hint::black_box;

use anti_persistence::dict::{Backend, Dict, DynDict};
use anti_persistence::prelude::Dictionary;
use ap_bench::{emit, env_usize, timed, Row};
use hi_common::batch::BatchOp;

/// splitmix64, the stateless key scrambler used across the benches.
fn scramble(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pre-generated keyed op stream (9 puts : 1 remove).
fn op_stream(ops: usize, workload: &str, preload: usize, salt: u64) -> Vec<BatchOp<u64, u64>> {
    (0..ops as u64)
        .map(|i| {
            let r = scramble(i ^ salt);
            let key = match workload {
                // Ascending block beyond the preloaded range: the ingest
                // shape (every batch is a sorted run of fresh keys).
                "sequential" => (preload as u64) * 4 + i,
                // Squared unit sample over a narrow hot set: heavy
                // overwrites of a few keys.
                "zipf" => {
                    let u = (r >> 11) as f64 / (1u64 << 53) as f64;
                    ((u * u) * (preload as f64 / 8.0)) as u64
                }
                // Uniform over the full 64-bit space: mostly-new keys.
                _ => r,
            };
            if r % 10 == 9 && workload != "sequential" {
                BatchOp::Remove(key)
            } else {
                BatchOp::Put(key, i)
            }
        })
        .collect()
}

/// A freshly preloaded dictionary (bulk-loaded: O(n), fresh coins).
fn preloaded(backend: Backend, preload: usize) -> DynDict<u64, u64> {
    let mut d: DynDict<u64, u64> = Dict::builder().backend(backend).seed(7).build();
    d.bulk_load((0..preload as u64).map(|k| (scramble(k) | 1, k)), 0xB01D);
    d
}

/// Applies `stream` per-op (the pre-batch-engine `extend`), returning ops/s.
fn per_op_phase(dict: &mut DynDict<u64, u64>, stream: &[BatchOp<u64, u64>]) -> f64 {
    let (_, secs) = timed(|| {
        for op in stream {
            match op {
                BatchOp::Put(k, v) => {
                    dict.insert(*k, *v);
                }
                BatchOp::Remove(k) => {
                    dict.remove(k);
                }
            }
        }
    });
    stream.len() as f64 / secs.max(1e-9)
}

/// Applies `stream` in `batch`-sized chunks through `apply_batch`.
fn batched_phase(dict: &mut DynDict<u64, u64>, stream: &[BatchOp<u64, u64>], batch: usize) -> f64 {
    let (_, secs) = timed(|| {
        let mut removed = 0usize;
        for chunk in stream.chunks(batch) {
            removed += dict.apply_batch(chunk.to_vec());
        }
        black_box(removed);
    });
    stream.len() as f64 / secs.max(1e-9)
}

fn headline(rows: &mut Vec<Row>, backend: Backend, name: &str, preload: usize, ops: usize) {
    println!("## {name} (S=1), {preload} preloaded keys, {ops} ops per cell\n");
    let mut acceptance: Option<(f64, f64)> = None;
    for workload in ["uniform", "sequential", "zipf"] {
        let stream = op_stream(ops, workload, preload, 0xA11CE);
        let mut dict = preloaded(backend, preload);
        let per_op = per_op_phase(&mut dict, &stream);
        println!("{name:<12} {workload:<11} per-op      : {per_op:>12.0} ops/s");
        rows.push(Row::new(
            &format!("{name} per-op/{workload}"),
            ops as f64,
            per_op,
            "ops/sec",
        ));
        for batch in [1usize, 16, 256, 4_096] {
            let mut dict = preloaded(backend, preload);
            let ops_per_sec = batched_phase(&mut dict, &stream, batch);
            let speedup = ops_per_sec / per_op.max(1e-9);
            println!(
                "{name:<12} {workload:<11} batch {batch:>5}: {ops_per_sec:>12.0} ops/s  ({speedup:>5.2}x)"
            );
            rows.push(Row::new(
                &format!("{name} batch-{batch}/{workload}"),
                ops as f64,
                ops_per_sec,
                "ops/sec",
            ));
            if workload == "uniform" && batch >= 256 {
                let best = acceptance.map_or(0.0, |(s, _)| s);
                if speedup > best {
                    acceptance = Some((speedup, ops_per_sec));
                }
            }
        }
    }
    if let Some((speedup, ops_per_sec)) = acceptance {
        println!(
            "\n{name} uniform batched put at batch >= 256 reaches {ops_per_sec:.0} ops/s \
             = {speedup:.2}x per-op ({})",
            if speedup >= 2.0 {
                "PASS >= 2x"
            } else {
                "below 2x"
            }
        );
        rows.push(Row::new(
            &format!("{name} batch-speedup/uniform"),
            256.0,
            speedup,
            "x",
        ));
    }
}

/// Build-from-empty ingest: the PR 4 `shard_scaling` S=1 workload shape —
/// `total` uniform keys inserted into a growing structure.
fn ingest(rows: &mut Vec<Row>, backend: Backend, name: &str, total: usize, batch: usize) {
    let stream: Vec<BatchOp<u64, u64>> = (0..total as u64)
        .map(|i| BatchOp::Put(scramble(i), i))
        .collect();
    let mut dict = preloaded(backend, 0);
    let per_op = per_op_phase(&mut dict, &stream);
    let mut dict = preloaded(backend, 0);
    let batched = batched_phase(&mut dict, &stream, batch);
    println!(
        "{name:<12} ingest 0->{total}: per-op {per_op:>10.0} ops/s | batch-{batch} {batched:>10.0} ops/s  ({:.2}x)",
        batched / per_op.max(1e-9)
    );
    rows.push(Row::new(
        &format!("{name} ingest-per-op/uniform"),
        total as f64,
        per_op,
        "ops/sec",
    ));
    rows.push(Row::new(
        &format!("{name} ingest-batch-{batch}/uniform"),
        total as f64,
        batched,
        "ops/sec",
    ));
}

fn backend_sweep(rows: &mut Vec<Row>, preload: usize, ops: usize) {
    println!(
        "\n## all backends, {preload} preloaded keys, {ops} uniform ops, batch 256 vs per-op\n"
    );
    let stream = op_stream(ops, "uniform", preload, 0xBACE);
    for backend in Backend::ALL {
        let mut dict = preloaded(backend, preload);
        let per_op = per_op_phase(&mut dict, &stream);
        let mut dict = preloaded(backend, preload);
        let batched = batched_phase(&mut dict, &stream, 256);
        println!(
            "{backend:<20} per-op {per_op:>12.0} ops/s | batch-256 {batched:>12.0} ops/s  ({:.2}x)",
            batched / per_op.max(1e-9)
        );
        rows.push(Row::new(
            &format!("{backend} per-op/uniform"),
            ops as f64,
            per_op,
            "ops/sec",
        ));
        rows.push(Row::new(
            &format!("{backend} batch-256/uniform"),
            ops as f64,
            batched,
            "ops/sec",
        ));
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (preload, ops, sweep_preload, sweep_ops) = if smoke {
        (20_000, 6_000, 10_000, 3_000)
    } else {
        (
            env_usize("AP_BENCH_BATCH_N", 1_000_000),
            env_usize("AP_BENCH_BATCH_OPS", 200_000),
            200_000,
            50_000,
        )
    };
    let mut rows: Vec<Row> = Vec::new();
    headline(&mut rows, Backend::HiPma, "hi-pma", preload, ops);
    headline(&mut rows, Backend::ClassicPma, "classic-pma", preload, ops);
    println!("\n## build-from-empty ingest (the shard_scaling S=1 shape)\n");
    ingest(&mut rows, Backend::HiPma, "hi-pma", preload, 4_096);
    ingest(
        &mut rows,
        Backend::ClassicPma,
        "classic-pma",
        preload,
        4_096,
    );
    backend_sweep(&mut rows, sweep_preload, sweep_ops);
    emit(
        "batched update throughput (ops/sec, higher is better)",
        &rows,
    );
}
