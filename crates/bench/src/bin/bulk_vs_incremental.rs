//! `bulk_load` vs one-by-one insertion, plus the zero-allocation range scan.
//!
//! Two claims of the unified dictionary API are measured here:
//!
//! 1. **Bulk loading is cheaper than incremental insertion.** `bulk_load`
//!    draws fresh coins from an explicit seed and rebuilds the layout in one
//!    pass (`O(n log n)` sort + `O(n)` construction) instead of paying the
//!    per-insert search/rebuild machinery `n` times — while keeping the same
//!    *(contents, seed)* → layout guarantee (see `tests/determinism.rs`).
//!    Measured for the HI cache-oblivious B-tree and the HI external skip
//!    list through the runtime-selected `DynDict` facade, and for the HI PMA
//!    through its rank-addressed API.
//! 2. **`range_iter` allocates nothing per query.** A counting global
//!    allocator drives identical range scans over a million-key
//!    `CobBTree` through the lazy `range_iter` path and the eager
//!    `Vec`-returning `range` path; the lazy path must perform **zero** heap
//!    allocations, the eager path at least one per query.
//!
//! Scale with `AP_BENCH_SCALE`; dump JSON rows with `AP_BENCH_JSON=out.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use anti_persistence::dict::{Backend, Dict, DynDict};
use anti_persistence::prelude::Dictionary;
use ap_bench::{emit, scaled, timed, Row};
use cob_btree::CobBTree;
use hi_common::RankedSequence;
use pma::HiPma;

/// System allocator wrapped with an allocation-event counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Deterministic pseudo-random distinct keys (splitmix64 over a counter).
fn keyed_pairs(n: usize) -> Vec<(u64, u64)> {
    (0..n as u64)
        .map(|i| {
            let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31), i)
        })
        .collect()
}

fn build_backend(backend: Backend, seed: u64) -> DynDict<u64, u64> {
    Dict::builder()
        .backend(backend)
        .seed(seed)
        .block_elems(64)
        .build()
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    let sizes = [scaled(20_000), scaled(60_000), scaled(150_000)];

    println!("## bulk_load vs incremental insertion\n");
    for &n in &sizes {
        let pairs = keyed_pairs(n);
        for backend in [Backend::CobBTree, Backend::HiSkipList] {
            let input = pairs.clone();
            let (incremental, t_inc) = timed(|| {
                let mut d = build_backend(backend, 1);
                for &(k, v) in &input {
                    d.insert(k, v);
                }
                d
            });
            let input = pairs.clone();
            let (bulk, t_bulk) = timed(|| {
                let mut d = build_backend(backend, 2);
                d.bulk_load(input, 0xB01D);
                d
            });
            assert_eq!(
                incremental.to_sorted_vec(),
                bulk.to_sorted_vec(),
                "{backend}: bulk and incremental builds must agree on contents"
            );
            println!(
                "{backend:<20} N = {n:>8}: incremental {t_inc:>8.3}s, bulk {t_bulk:>8.3}s ({:>5.1}x)",
                t_inc / t_bulk.max(1e-9)
            );
            rows.push(Row::new(
                &format!("{backend} incremental"),
                n as f64,
                t_inc,
                "build seconds",
            ));
            rows.push(Row::new(
                &format!("{backend} bulk"),
                n as f64,
                t_bulk,
                "build seconds",
            ));
        }

        // The HI PMA through its native rank-addressed API.
        let items: Vec<u64> = (0..n as u64).collect();
        let (incremental, t_inc) = timed(|| {
            let mut p: HiPma<u64> = HiPma::new(3);
            for (rank, &item) in items.iter().enumerate() {
                p.insert_at(rank, item).expect("append rank is valid");
            }
            p
        });
        let input = items.clone();
        let (bulk, t_bulk) = timed(|| {
            let mut p: HiPma<u64> = HiPma::new(4);
            p.bulk_load(input, 0xB01D);
            p
        });
        assert_eq!(incremental.to_vec(), bulk.to_vec());
        println!(
            "{:<20} N = {n:>8}: incremental {t_inc:>8.3}s, bulk {t_bulk:>8.3}s ({:>5.1}x)",
            "hi-pma (ranked)",
            t_inc / t_bulk.max(1e-9)
        );
        rows.push(Row::new(
            "hi-pma incremental",
            n as f64,
            t_inc,
            "build seconds",
        ));
        rows.push(Row::new("hi-pma bulk", n as f64, t_bulk, "build seconds"));
    }

    range_allocation_check(&mut rows);
    emit("bulk_load vs incremental (build seconds)", &rows);
}

/// Proves the acceptance criterion: on a million-key `CobBTree`, consuming
/// `range_iter` performs no per-call heap allocation, while the historical
/// `Vec`-returning `range` allocates at least once per query.
fn range_allocation_check(rows: &mut Vec<Row>) {
    let n = scaled(1_000_000);
    let queries = 200u64;
    let span = 1_000u64;
    println!("\n## range_iter allocation check ({n} keys, {queries} scans of {span})\n");

    let mut index: CobBTree<u64, u64> = CobBTree::new(42);
    index.bulk_load((0..n as u64).map(|k| (k, k)), 0x5CAB);
    let step = (n as u64 - span) / queries;

    // Lazy path: fold the iterator without materialising anything.
    let mut lazy_sum = 0u64;
    let before = allocations();
    for q in 0..queries {
        let lo = q * step;
        lazy_sum += index
            .range_iter(lo..lo + span)
            .map(|(_, v)| *v)
            .sum::<u64>();
    }
    let lazy_allocs = allocations() - before;
    black_box(lazy_sum);

    // Eager path: the historical Vec-returning wrapper.
    let mut eager_sum = 0u64;
    let before = allocations();
    for q in 0..queries {
        let lo = q * step;
        let hi = lo + span - 1;
        eager_sum += index.range(&lo, &hi).iter().map(|(_, v)| *v).sum::<u64>();
    }
    let eager_allocs = allocations() - before;
    black_box(eager_sum);

    println!("range_iter (lazy):  {lazy_allocs:>6} heap allocations");
    println!("range (Vec-eager):  {eager_allocs:>6} heap allocations");
    assert_eq!(
        lazy_allocs, 0,
        "range_iter must perform no per-call allocation on a {n}-key CobBTree"
    );
    assert!(
        eager_allocs >= queries,
        "the eager path should allocate at least one Vec per query"
    );
    rows.push(Row::new(
        "cob-btree range_iter",
        n as f64,
        lazy_allocs as f64,
        "heap allocations per 200 range scans",
    ));
    rows.push(Row::new(
        "cob-btree range(Vec)",
        n as f64,
        eager_allocs as f64,
        "heap allocations per 200 range scans",
    ));
}
