//! CI guard: validates a bench harness's JSON row dump.
//!
//! Every bench binary can dump its rows via `AP_BENCH_JSON=path`; `ci.sh`
//! runs the smoke harnesses with a dump path and then runs
//! `json_check <path>...` on the results. The check fails (non-zero exit)
//! when a file is missing, is not valid JSON, is not a non-empty array, or
//! contains a row without the `series`/`x`/`y`/`metric` fields or with a
//! non-finite measurement — the malformed-row classes a silently truncated
//! or interleaved write would produce.
//!
//! The vendored `serde_json` shim is serialize-only (the container has no
//! crates.io access), so the guard carries its own minimal recursive-descent
//! JSON parser — which is the point: it validates the *text*, independent of
//! the serializer that produced it.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// A parsed JSON value (numbers as `f64`, like the real serde_json's
/// default arbitrary-precision-off mode).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

/// Minimal strict JSON parser: one value, then end of input.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn parse_document(mut self) -> Result<Json, String> {
        self.skip_ws();
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing garbage after the JSON document"));
        }
        Ok(value)
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal {lit:?}")))
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are accepted loosely (replacement
                            // char): the guard checks structure, not
                            // transcoding fidelity.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("number span is ASCII");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn check(path: &str) -> Result<usize, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: unreadable: {e}"))?;
    let value = Parser::new(&raw)
        .parse_document()
        .map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let Json::Array(rows) = value else {
        return Err(format!("{path}: top-level value is not an array"));
    };
    if rows.is_empty() {
        return Err(format!("{path}: no rows emitted"));
    }
    for (i, row) in rows.iter().enumerate() {
        let Json::Object(obj) = row else {
            return Err(format!("{path}: row #{i} is not an object"));
        };
        for field in ["series", "metric"] {
            if !matches!(obj.get(field), Some(Json::String(s)) if !s.is_empty()) {
                return Err(format!(
                    "{path}: row #{i} lacks a non-empty string field {field:?}"
                ));
            }
        }
        for field in ["x", "y"] {
            if !matches!(obj.get(field), Some(Json::Number(n)) if n.is_finite()) {
                return Err(format!(
                    "{path}: row #{i} lacks a finite numeric field {field:?}"
                ));
            }
        }
    }
    Ok(rows.len())
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: json_check <rows.json>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match check(path) {
            Ok(n) => println!("json_check: {path}: {n} well-formed rows"),
            Err(e) => {
                eprintln!("json_check: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
