//! Differential-testing harness for every structure in the workspace.
//!
//! The paper's correctness claims are all of the form "this structure behaves
//! exactly like the textbook abstraction, while its *layout* is history
//! independent". The behavioural half is what this crate tests, uniformly,
//! for every implementation:
//!
//! * [`Dictionary`] implementations (`BTree`, `CobBTree`, `ExternalSkipList`
//!   in all three parameterizations) are driven against a
//!   [`std::collections::BTreeMap`] reference by seeded random operation
//!   scripts ([`DictScript`]), checking the *return value of every single
//!   operation* — insert's previous-value, remove's evicted value, range
//!   contents and order, successor/predecessor — plus periodic whole-state
//!   audits via `to_sorted_vec`.
//! * [`RankedSequence`] implementations (`HiPma`, `ClassicPma`) are driven
//!   against a plain `Vec` reference with rank-addressed scripts
//!   ([`run_seq_differential`]), including deliberately out-of-range ranks
//!   that must fail identically on both sides.
//! * [`dictionary_edge_cases`] is a deterministic battery of the classic
//!   boundary conditions: empty structure, single element, duplicate-key
//!   overwrite, remove-of-absent-key, and full-drain-then-refill.
//!
//! Adding a future structure to the conformance suite is one line per script:
//! construct it, hand it to the runner.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use hi_common::batch::BatchOp;
use hi_common::traits::{Dictionary, RankedSequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One keyed operation in a differential script, covering the full
/// [`Dictionary`] surface (a superset of `workloads::Op`, which only models
/// the four operations the benchmarks need).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictOp {
    /// Insert or overwrite; the returned previous value is checked.
    Insert(u64, u64),
    /// Remove; the returned evicted value is checked.
    Remove(u64),
    /// Point lookup; the returned value is checked.
    Get(u64),
    /// Membership probe; the returned flag is checked.
    Contains(u64),
    /// Inclusive range query; contents and order are checked.
    Range(u64, u64),
    /// Smallest key ≥ the probe; the returned pair is checked.
    Successor(u64),
    /// Largest key ≤ the probe; the returned pair is checked.
    Predecessor(u64),
    /// Whole-state audit: `len` and `to_sorted_vec` against the oracle.
    CheckAll,
}

/// A reproducible, named script of dictionary operations.
#[derive(Debug, Clone)]
pub struct DictScript {
    /// Human-readable name, used in failure messages.
    pub name: String,
    /// The seed the script was generated from.
    pub seed: u64,
    /// The operations, in order.
    pub ops: Vec<DictOp>,
}

/// Tunable generator for [`DictScript`]s.
///
/// Weights are relative; they need not sum to anything in particular.
#[derive(Debug, Clone)]
pub struct ScriptProfile {
    /// Script name prefix (the seed is appended).
    pub name: &'static str,
    /// Number of operations to generate.
    pub ops: usize,
    /// Keys are drawn uniformly from `0..key_space`. Small key spaces force
    /// frequent overwrites and remove-hits; large ones exercise misses.
    pub key_space: u64,
    /// Relative weight of inserts.
    pub insert: u32,
    /// Relative weight of removes.
    pub remove: u32,
    /// Relative weight of point reads (get/contains).
    pub read: u32,
    /// Relative weight of ordered reads (range/successor/predecessor).
    pub ordered: u32,
    /// A [`DictOp::CheckAll`] is appended every `check_every` operations
    /// (and always at the end).
    pub check_every: usize,
}

impl ScriptProfile {
    /// Generates the script for `seed`.
    pub fn generate(&self, seed: u64) -> DictScript {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = self.insert + self.remove + self.read + self.ordered;
        assert!(
            total > 0,
            "script profile needs at least one nonzero weight"
        );
        let mut ops = Vec::with_capacity(self.ops + self.ops / self.check_every.max(1) + 1);
        for i in 0..self.ops {
            let key = rng.gen_range(0..self.key_space);
            let roll = rng.gen_range(0..total);
            let op = if roll < self.insert {
                DictOp::Insert(key, rng.gen::<u64>())
            } else if roll < self.insert + self.remove {
                DictOp::Remove(key)
            } else if roll < self.insert + self.remove + self.read {
                if rng.gen_bool(0.5) {
                    DictOp::Get(key)
                } else {
                    DictOp::Contains(key)
                }
            } else {
                match rng.gen_range(0..3u32) {
                    0 => {
                        let span = rng.gen_range(0..self.key_space / 4 + 1);
                        DictOp::Range(key, key.saturating_add(span))
                    }
                    1 => DictOp::Successor(key),
                    _ => DictOp::Predecessor(key),
                }
            };
            ops.push(op);
            if self.check_every > 0 && (i + 1) % self.check_every == 0 {
                ops.push(DictOp::CheckAll);
            }
        }
        ops.push(DictOp::CheckAll);
        DictScript {
            name: format!("{}#{}", self.name, seed),
            seed,
            ops,
        }
    }
}

/// The standard conformance battery: three behaviourally distinct profiles,
/// each generated at three seeds (nine scripts per structure).
///
/// * `churn-small-keyspace` — heavy overwrite/remove collisions in a tiny
///   key space, the regime where balance-element resampling and merges fire
///   constantly;
/// * `grow-mostly` — insert-dominated growth with occasional deletes, the
///   classic index-build workload;
/// * `read-heavy-ordered` — range/successor/predecessor dominated, probing
///   navigation against a churning population.
pub fn standard_scripts() -> Vec<DictScript> {
    let profiles = [
        ScriptProfile {
            name: "churn-small-keyspace",
            ops: 1_500,
            key_space: 64,
            insert: 4,
            remove: 4,
            read: 2,
            ordered: 2,
            check_every: 250,
        },
        ScriptProfile {
            name: "grow-mostly",
            ops: 1_500,
            key_space: 100_000,
            insert: 8,
            remove: 1,
            read: 2,
            ordered: 1,
            check_every: 250,
        },
        ScriptProfile {
            name: "read-heavy-ordered",
            ops: 1_200,
            key_space: 512,
            insert: 3,
            remove: 2,
            read: 3,
            ordered: 6,
            check_every: 200,
        },
    ];
    let mut scripts = Vec::new();
    for profile in &profiles {
        for seed in [0xA5A5, 0xBEEF, 0x1234_5678] {
            scripts.push(profile.generate(seed));
        }
    }
    scripts
}

/// Statistics from a differential run, for test-side sanity assertions
/// (e.g. "this script actually exercised overwrites").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffReport {
    /// Operations applied.
    pub ops: usize,
    /// Inserts that overwrote an existing key.
    pub overwrites: usize,
    /// Removes that found their key.
    pub remove_hits: usize,
    /// Removes of absent keys.
    pub remove_misses: usize,
    /// Whole-state audits performed.
    pub audits: usize,
    /// Final number of keys.
    pub final_len: usize,
}

/// Replays `script` against `dict` and a `BTreeMap` oracle in lockstep,
/// asserting that every operation returns identical results.
///
/// # Panics
///
/// Panics (with the script name, operation index and operation) on the first
/// divergence between `dict` and the oracle.
pub fn run_dict_differential<D>(dict: &mut D, script: &DictScript) -> DiffReport
where
    D: Dictionary<Key = u64, Value = u64>,
{
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut report = DiffReport::default();
    let ctx = |i: usize, op: &DictOp| format!("script {} op #{i} {op:?}", script.name);
    for (i, op) in script.ops.iter().enumerate() {
        report.ops += 1;
        match *op {
            DictOp::Insert(k, v) => {
                let got = dict.insert(k, v);
                let want = oracle.insert(k, v);
                assert_eq!(got, want, "{}: insert previous value", ctx(i, op));
                if want.is_some() {
                    report.overwrites += 1;
                }
            }
            DictOp::Remove(k) => {
                let got = dict.remove(&k);
                let want = oracle.remove(&k);
                assert_eq!(got, want, "{}: removed value", ctx(i, op));
                if want.is_some() {
                    report.remove_hits += 1;
                } else {
                    report.remove_misses += 1;
                }
            }
            DictOp::Get(k) => {
                assert_eq!(dict.get(&k), oracle.get(&k).copied(), "{}: get", ctx(i, op));
            }
            DictOp::Contains(k) => {
                assert_eq!(
                    dict.contains(&k),
                    oracle.contains_key(&k),
                    "{}: contains",
                    ctx(i, op)
                );
            }
            DictOp::Range(lo, hi) => {
                let want: Vec<(u64, u64)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                let got = dict.range(&lo, &hi);
                assert_eq!(got, want, "{}: range contents/order", ctx(i, op));
                // The lazy path must agree with the eager one, for every
                // flavour of bound expression.
                let lazy: Vec<(u64, u64)> =
                    dict.range_iter(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(lazy, want, "{}: range_iter contents/order", ctx(i, op));
                if lo > 0 {
                    let lazy_excl: Vec<(u64, u64)> = dict
                        .range_iter((
                            std::ops::Bound::Excluded(lo - 1),
                            std::ops::Bound::Included(hi),
                        ))
                        .map(|(&k, &v)| (k, v))
                        .collect();
                    assert_eq!(lazy_excl, want, "{}: range_iter excluded bound", ctx(i, op));
                }
            }
            DictOp::Successor(k) => {
                let want = oracle.range(k..).next().map(|(&k, &v)| (k, v));
                assert_eq!(dict.successor(&k), want, "{}: successor", ctx(i, op));
            }
            DictOp::Predecessor(k) => {
                let want = oracle.range(..=k).next_back().map(|(&k, &v)| (k, v));
                assert_eq!(dict.predecessor(&k), want, "{}: predecessor", ctx(i, op));
            }
            DictOp::CheckAll => {
                report.audits += 1;
                assert_eq!(dict.len(), oracle.len(), "{}: len", ctx(i, op));
                assert_eq!(
                    dict.is_empty(),
                    oracle.is_empty(),
                    "{}: is_empty",
                    ctx(i, op)
                );
                let got = dict.to_sorted_vec();
                let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
                assert_eq!(got, want, "{}: full sorted contents", ctx(i, op));
                // The zero-copy full-scan surface must agree too.
                let lazy: Vec<(u64, u64)> = dict.iter().map(|(&k, &v)| (k, v)).collect();
                assert_eq!(lazy, want, "{}: iter() full scan", ctx(i, op));
                let keys: Vec<u64> = dict.keys().copied().collect();
                assert_eq!(
                    keys,
                    oracle.keys().copied().collect::<Vec<_>>(),
                    "{}: keys()",
                    ctx(i, op)
                );
            }
        }
    }
    report.final_len = oracle.len();
    report
}

/// Deterministic boundary-condition battery for a dictionary built by `make`.
///
/// Covers, in order: the empty structure (every read on nothing), a single
/// element (every read around one key), duplicate-key overwrite, removal of
/// absent keys, and a full drain followed by a refill with different
/// contents — the sequence that catches stale-tombstone and
/// shrink-to-empty bugs.
pub fn dictionary_edge_cases<D, F>(make: F)
where
    D: Dictionary<Key = u64, Value = u64>,
    F: Fn() -> D,
{
    // Empty structure.
    let mut d = make();
    assert_eq!(d.len(), 0, "fresh dictionary must be empty");
    assert!(d.is_empty());
    assert_eq!(d.get(&42), None);
    assert!(!d.contains(&42));
    assert_eq!(d.remove(&42), None, "remove on empty must miss");
    assert_eq!(d.range(&0, &u64::MAX), vec![]);
    assert_eq!(d.successor(&0), None);
    assert_eq!(d.predecessor(&u64::MAX), None);
    assert_eq!(d.to_sorted_vec(), vec![]);

    // Single element: reads on, below and above the key.
    let mut d = make();
    assert_eq!(d.insert(7, 70), None);
    assert_eq!(d.len(), 1);
    assert_eq!(d.get(&7), Some(70));
    assert_eq!(d.get(&6), None);
    assert_eq!(d.get(&8), None);
    assert_eq!(d.range(&0, &u64::MAX), vec![(7, 70)]);
    assert_eq!(d.range(&8, &u64::MAX), vec![]);
    assert_eq!(d.range(&7, &7), vec![(7, 70)]);
    assert_eq!(d.successor(&0), Some((7, 70)));
    assert_eq!(d.successor(&7), Some((7, 70)));
    assert_eq!(d.successor(&8), None);
    assert_eq!(d.predecessor(&u64::MAX), Some((7, 70)));
    assert_eq!(d.predecessor(&7), Some((7, 70)));
    assert_eq!(d.predecessor(&6), None);
    assert_eq!(d.remove(&7), Some(70));
    assert!(
        d.is_empty(),
        "structure must be empty after removing its only key"
    );

    // Duplicate-key overwrite: len stays, value and previous-value rotate.
    let mut d = make();
    assert_eq!(d.insert(5, 1), None);
    assert_eq!(d.insert(5, 2), Some(1));
    assert_eq!(d.insert(5, 3), Some(2));
    assert_eq!(d.len(), 1, "overwrites must not grow the dictionary");
    assert_eq!(d.get(&5), Some(3));
    assert_eq!(d.to_sorted_vec(), vec![(5, 3)]);

    // Remove-of-absent around present keys.
    let mut d = make();
    for k in [10u64, 20, 30] {
        d.insert(k, k * 10);
    }
    assert_eq!(d.remove(&15), None);
    assert_eq!(d.remove(&5), None);
    assert_eq!(d.remove(&35), None);
    assert_eq!(
        d.len(),
        3,
        "absent-key removes must not change the population"
    );
    assert_eq!(d.to_sorted_vec(), vec![(10, 100), (20, 200), (30, 300)]);

    // Full drain, then refill with different keys and values.
    let mut d = make();
    let first: Vec<u64> = (0..200).map(|k| k * 3).collect();
    for &k in &first {
        assert_eq!(d.insert(k, k), None);
    }
    assert_eq!(d.len(), first.len());
    // Drain in an order different from insertion (evens descending, then
    // the rest ascending) so the structure shrinks through varied shapes.
    for &k in first.iter().rev().filter(|k| *k % 2 == 0) {
        assert_eq!(d.remove(&k), Some(k), "drain phase 1, key {k}");
    }
    for &k in first.iter().filter(|k| *k % 2 == 1) {
        assert_eq!(d.remove(&k), Some(k), "drain phase 2, key {k}");
    }
    assert!(
        d.is_empty(),
        "dictionary must be empty after the full drain"
    );
    assert_eq!(d.to_sorted_vec(), vec![]);
    // Refill with an offset population and audit.
    let mut want = Vec::new();
    for k in (1..150u64).map(|k| k * 7 + 1) {
        assert_eq!(d.insert(k, k + 1), None, "refill insert {k}");
        want.push((k, k + 1));
    }
    want.sort();
    assert_eq!(d.to_sorted_vec(), want, "refilled contents must match");
    assert_eq!(d.len(), want.len());
}

/// Differential check of [`Dictionary::bulk_load`] against a `BTreeMap`
/// oracle and against an incrementally built twin.
///
/// `make` constructs a fresh (empty or pre-populated — `bulk_load` must
/// discard prior contents) dictionary. The check:
///
/// 1. generates `n` pairs with duplicate keys, shuffles them, and bulk-loads
///    them with `seed` — the result must match a `BTreeMap` loaded with the
///    same pairs in the same order (last write wins);
/// 2. probes `get`/`get_ref`/`successor`/`predecessor`/`range_iter` across
///    the key space against the oracle;
/// 3. keeps operating incrementally afterwards (insert/remove/get) to prove
///    the bulk-loaded structure is fully functional, auditing the final
///    state.
///
/// # Panics
///
/// Panics on the first divergence from the oracle.
pub fn run_bulk_load_differential<D, F>(make: F, n: usize, seed: u64)
where
    D: Dictionary<Key = u64, Value = u64>,
    F: Fn() -> D,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let key_space = (n as u64 * 2).max(8);
    let pairs: Vec<(u64, u64)> = (0..n)
        .map(|_| (rng.gen_range(0..key_space), rng.gen()))
        .collect();
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for &(k, v) in &pairs {
        oracle.insert(k, v);
    }

    let mut dict = make();
    dict.bulk_load(pairs.clone(), seed ^ 0xB01D);
    assert_eq!(dict.len(), oracle.len(), "bulk_load: len after load");
    assert_eq!(
        dict.to_sorted_vec(),
        oracle.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
        "bulk_load: contents after load"
    );

    for _ in 0..200 {
        let probe = rng.gen_range(0..key_space + 4);
        assert_eq!(
            dict.get(&probe),
            oracle.get(&probe).copied(),
            "bulk_load: get({probe})"
        );
        assert_eq!(
            dict.get_ref(&probe),
            oracle.get(&probe),
            "bulk_load: get_ref({probe})"
        );
        assert_eq!(
            dict.successor(&probe),
            oracle.range(probe..).next().map(|(&k, &v)| (k, v)),
            "bulk_load: successor({probe})"
        );
        assert_eq!(
            dict.predecessor(&probe),
            oracle.range(..=probe).next_back().map(|(&k, &v)| (k, v)),
            "bulk_load: predecessor({probe})"
        );
        let hi = probe.saturating_add(rng.gen_range(0..key_space / 4 + 1));
        let got: Vec<(u64, u64)> = dict.range_iter(probe..=hi).map(|(&k, &v)| (k, v)).collect();
        let want: Vec<(u64, u64)> = oracle.range(probe..=hi).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want, "bulk_load: range_iter({probe}..={hi})");
    }

    // The structure must remain fully operational after a bulk load.
    for step in 0..500u64 {
        let key = rng.gen_range(0..key_space);
        match rng.gen_range(0..10) {
            0..=5 => assert_eq!(
                dict.insert(key, step),
                oracle.insert(key, step),
                "post-bulk insert({key})"
            ),
            6..=8 => assert_eq!(
                dict.remove(&key),
                oracle.remove(&key),
                "post-bulk remove({key})"
            ),
            _ => assert_eq!(
                dict.get(&key),
                oracle.get(&key).copied(),
                "post-bulk get({key})"
            ),
        }
    }
    assert_eq!(
        dict.to_sorted_vec(),
        oracle.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
        "bulk_load: final audit"
    );
}

/// Tunable generator for batched differential runs (see
/// [`run_batch_differential`]).
#[derive(Debug, Clone, Copy)]
pub struct BatchProfile {
    /// Number of batches to apply.
    pub batches: usize,
    /// Operations per batch.
    pub batch_len: usize,
    /// Keys are drawn uniformly from `0..key_space`. Small key spaces force
    /// duplicate keys *within* one batch (last write wins) and remove-hits.
    pub key_space: u64,
    /// Probability (out of 100) that an operation is a remove.
    pub remove_pct: u32,
}

impl BatchProfile {
    /// Heavy-duplicate mixed batches in a tiny key space: the regime where
    /// last-write-wins, put-then-remove and remove-then-put all occur
    /// inside a single batch.
    pub fn churn() -> Self {
        Self {
            batches: 8,
            batch_len: 300,
            key_space: 48,
            remove_pct: 40,
        }
    }

    /// Insert-dominated growth over a large key space (mostly distinct
    /// keys, occasional removes).
    pub fn grow() -> Self {
        Self {
            batches: 6,
            batch_len: 500,
            key_space: 100_000,
            remove_pct: 10,
        }
    }

    /// Sequential-run batches (ascending key blocks) with interleaved
    /// removals of the previous block — the bulk-ingest shape.
    pub fn sequential() -> Self {
        Self {
            batches: 6,
            batch_len: 400,
            key_space: 0, // marker: keys are generated sequentially
            remove_pct: 25,
        }
    }
}

/// Drives `dict` through seeded mixed batches (duplicate keys included)
/// via [`Dictionary::apply_batch`], while a `BTreeMap` oracle applies the
/// same operations one at a time — checking the returned remove-hit count,
/// the full contents after every batch, and a [`Dictionary::get_many`]
/// probe sweep against per-key oracle lookups.
///
/// # Panics
///
/// Panics on the first divergence from the oracle.
pub fn run_batch_differential<D>(dict: &mut D, seed: u64, profile: BatchProfile)
where
    D: Dictionary<Key = u64, Value = u64>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for batch_no in 0..profile.batches {
        let ops: Vec<BatchOp<u64, u64>> = (0..profile.batch_len)
            .map(|i| {
                let key = if profile.key_space == 0 {
                    // Sequential blocks; removes target the previous block.
                    let block = batch_no as u64;
                    if rng.gen_range(0..100) < profile.remove_pct && block > 0 {
                        (block - 1) * profile.batch_len as u64 + i as u64
                    } else {
                        block * profile.batch_len as u64 + i as u64
                    }
                } else {
                    rng.gen_range(0..profile.key_space)
                };
                if rng.gen_range(0..100) < profile.remove_pct {
                    BatchOp::Remove(key)
                } else {
                    BatchOp::Put(key, rng.gen())
                }
            })
            .collect();
        let mut expected_removed = 0usize;
        for op in &ops {
            match op {
                BatchOp::Put(k, v) => {
                    oracle.insert(*k, *v);
                }
                BatchOp::Remove(k) => {
                    if oracle.remove(k).is_some() {
                        expected_removed += 1;
                    }
                }
            }
        }
        let removed = dict.apply_batch(ops);
        assert_eq!(
            removed, expected_removed,
            "seed {seed} batch #{batch_no}: remove-hit count"
        );
        assert_eq!(
            dict.len(),
            oracle.len(),
            "seed {seed} batch #{batch_no}: len"
        );
        assert_eq!(
            dict.to_sorted_vec(),
            oracle.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
            "seed {seed} batch #{batch_no}: contents after batch"
        );
    }
    // Batched lookups (sorted finger probes inside) must agree with the
    // oracle, in input order, hits and misses alike.
    let space = if profile.key_space == 0 {
        profile.batches as u64 * profile.batch_len as u64 + 10
    } else {
        profile.key_space + 10
    };
    let probes: Vec<u64> = (0..300).map(|_| rng.gen_range(0..space)).collect();
    let expected: Vec<Option<u64>> = probes.iter().map(|k| oracle.get(k).copied()).collect();
    assert_eq!(
        dict.get_many(&probes),
        expected,
        "seed {seed}: get_many disagrees with per-key lookups"
    );
}

/// Profile for a rank-addressed differential run (see
/// [`run_seq_differential`]). Ops are drawn on the fly because valid ranks
/// depend on the evolving length.
#[derive(Debug, Clone, Copy)]
pub struct SeqProfile {
    /// Number of operations to apply.
    pub ops: usize,
    /// Relative weight of rank inserts.
    pub insert: u32,
    /// Relative weight of rank deletes.
    pub delete: u32,
    /// Relative weight of reads (get / query).
    pub read: u32,
    /// Whether to interleave deliberately out-of-range operations (which
    /// must fail identically on the structure and the oracle).
    pub probe_out_of_range: bool,
}

impl SeqProfile {
    /// A balanced default profile.
    pub fn standard(ops: usize) -> Self {
        Self {
            ops,
            insert: 5,
            delete: 3,
            read: 4,
            probe_out_of_range: true,
        }
    }
}

/// Drives a [`RankedSequence`] against a `Vec` reference with a seeded
/// random rank-addressed workload, checking every returned element, every
/// range query, and — when `probe_out_of_range` is set — that invalid ranks
/// are rejected with the same [`hi_common::traits::RankError`] semantics.
///
/// Returns the number of operations applied.
///
/// # Panics
///
/// Panics on the first divergence from the oracle.
pub fn run_seq_differential<S>(seq: &mut S, seed: u64, profile: SeqProfile) -> usize
where
    S: RankedSequence<Item = u64>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut oracle: Vec<u64> = Vec::new();
    let total = profile.insert + profile.delete + profile.read;
    assert!(
        total > 0,
        "sequence profile needs at least one nonzero weight"
    );
    for i in 0..profile.ops {
        assert_eq!(seq.len(), oracle.len(), "op #{i}: length drifted");
        let roll = rng.gen_range(0..total);
        if roll < profile.insert || oracle.is_empty() {
            let rank = rng.gen_range(0..=oracle.len());
            let item: u64 = rng.gen();
            seq.insert_at(rank, item)
                .unwrap_or_else(|e| panic!("op #{i}: insert_at({rank}) failed: {e}"));
            oracle.insert(rank, item);
        } else if roll < profile.insert + profile.delete {
            let rank = rng.gen_range(0..oracle.len());
            let got = seq
                .delete_at(rank)
                .unwrap_or_else(|e| panic!("op #{i}: delete_at({rank}) failed: {e}"));
            let want = oracle.remove(rank);
            assert_eq!(got, want, "op #{i}: delete_at({rank}) element");
        } else {
            let rank = rng.gen_range(0..oracle.len());
            assert_eq!(seq.get(rank), Some(oracle[rank]), "op #{i}: get({rank})");
            let j = rng.gen_range(rank..oracle.len());
            let got = seq
                .query(rank, j)
                .unwrap_or_else(|e| panic!("op #{i}: query({rank}, {j}) failed: {e}"));
            assert_eq!(got, oracle[rank..=j], "op #{i}: query({rank}, {j})");
        }
        if profile.probe_out_of_range && i % 64 == 0 {
            let past_end = oracle.len() + rng.gen_range(1..4usize);
            assert!(
                seq.insert_at(past_end, 0).is_err(),
                "op #{i}: insert_at past the end must be rejected"
            );
            assert!(
                seq.delete_at(oracle.len()).is_err(),
                "op #{i}: delete_at(len) must be rejected"
            );
            assert_eq!(seq.get(oracle.len()), None, "op #{i}: get(len) must miss");
            if !oracle.is_empty() {
                let err = match seq.query(0, oracle.len()) {
                    Err(e) => e,
                    Ok(_) => panic!("op #{i}: query past the end must be rejected"),
                };
                assert_eq!(
                    (err.rank, err.len),
                    (oracle.len(), oracle.len()),
                    "op #{i}: out-of-bounds query must report rank j and len"
                );
            }
            // Uniform empty-range contract: i > j succeeds with no elements,
            // even at out-of-bounds ranks — on the oracle and the structure
            // alike.
            let a = rng.gen_range(0..oracle.len() + 3);
            if a > 0 {
                assert_eq!(
                    seq.query(a, a - 1).expect("empty range must be Ok").len(),
                    0,
                    "op #{i}: query({a}, {}) must be an empty Ok",
                    a - 1
                );
            }
        }
    }
    assert_eq!(seq.to_vec(), oracle, "final contents must match the oracle");
    profile.ops
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `BTreeMap` wrapped as a `Dictionary` — differential-testing the
    /// oracle against itself validates the runner's bookkeeping.
    struct MapDict(BTreeMap<u64, u64>);

    impl Dictionary for MapDict {
        type Key = u64;
        type Value = u64;
        fn len(&self) -> usize {
            self.0.len()
        }
        fn insert(&mut self, k: u64, v: u64) -> Option<u64> {
            self.0.insert(k, v)
        }
        fn remove(&mut self, k: &u64) -> Option<u64> {
            self.0.remove(k)
        }
        fn get_ref(&self, k: &u64) -> Option<&u64> {
            self.0.get(k)
        }
        fn range_iter<R: std::ops::RangeBounds<u64>>(
            &self,
            range: R,
        ) -> impl Iterator<Item = (&u64, &u64)> {
            self.0.range(range)
        }
        fn successor(&self, k: &u64) -> Option<(u64, u64)> {
            self.0.range(*k..).next().map(|(&k, &v)| (k, v))
        }
        fn predecessor(&self, k: &u64) -> Option<(u64, u64)> {
            self.0.range(..=*k).next_back().map(|(&k, &v)| (k, v))
        }
        fn to_sorted_vec(&self) -> Vec<(u64, u64)> {
            self.0.iter().map(|(&k, &v)| (k, v)).collect()
        }
    }

    /// A deliberately buggy dictionary: forgets to report overwrites.
    struct LossyInsert(BTreeMap<u64, u64>);

    impl Dictionary for LossyInsert {
        type Key = u64;
        type Value = u64;
        fn len(&self) -> usize {
            self.0.len()
        }
        fn insert(&mut self, k: u64, v: u64) -> Option<u64> {
            self.0.insert(k, v);
            None // bug: swallows the previous value
        }
        fn remove(&mut self, k: &u64) -> Option<u64> {
            self.0.remove(k)
        }
        fn get_ref(&self, k: &u64) -> Option<&u64> {
            self.0.get(k)
        }
        fn range_iter<R: std::ops::RangeBounds<u64>>(
            &self,
            range: R,
        ) -> impl Iterator<Item = (&u64, &u64)> {
            self.0.range(range)
        }
        fn successor(&self, k: &u64) -> Option<(u64, u64)> {
            self.0.range(*k..).next().map(|(&k, &v)| (k, v))
        }
        fn predecessor(&self, k: &u64) -> Option<(u64, u64)> {
            self.0.range(..=*k).next_back().map(|(&k, &v)| (k, v))
        }
        fn to_sorted_vec(&self) -> Vec<(u64, u64)> {
            self.0.iter().map(|(&k, &v)| (k, v)).collect()
        }
    }

    #[test]
    fn scripts_are_reproducible() {
        let p = &standard_scripts()[0];
        let again = ScriptProfile {
            name: "churn-small-keyspace",
            ops: 1_500,
            key_space: 64,
            insert: 4,
            remove: 4,
            read: 2,
            ordered: 2,
            check_every: 250,
        }
        .generate(p.seed);
        assert_eq!(p.ops, again.ops);
    }

    #[test]
    fn standard_scripts_cover_the_interesting_regimes() {
        let scripts = standard_scripts();
        assert!(scripts.len() >= 9, "need at least three seeds per profile");
        // The churn profile must actually produce overwrites and remove hits
        // when replayed — otherwise the conformance battery is toothless.
        let mut dict = MapDict(BTreeMap::new());
        let report = run_dict_differential(&mut dict, &scripts[0]);
        assert!(
            report.overwrites > 10,
            "churn script produced no overwrites"
        );
        assert!(
            report.remove_hits > 10,
            "churn script produced no remove hits"
        );
        assert!(report.remove_misses > 0);
        assert!(report.audits >= 2);
    }

    #[test]
    fn oracle_agrees_with_itself() {
        for script in standard_scripts() {
            let mut dict = MapDict(BTreeMap::new());
            run_dict_differential(&mut dict, &script);
        }
    }

    #[test]
    fn edge_cases_pass_on_the_reference() {
        dictionary_edge_cases(|| MapDict(BTreeMap::new()));
    }

    #[test]
    fn batch_runner_is_clean_on_the_reference() {
        // The reference dictionary uses the trait's per-op apply_batch
        // default, so this validates the runner's own bookkeeping (hit
        // counts, duplicate-key folding, probe sweep).
        for profile in [
            BatchProfile::churn(),
            BatchProfile::grow(),
            BatchProfile::sequential(),
        ] {
            let mut dict = MapDict(BTreeMap::new());
            run_batch_differential(&mut dict, 0xBA7C4, profile);
        }
    }

    #[test]
    #[should_panic(expected = "insert previous value")]
    fn harness_catches_a_lossy_insert() {
        let script = ScriptProfile {
            name: "bug-hunt",
            ops: 200,
            key_space: 8, // tiny key space forces an overwrite quickly
            insert: 1,
            remove: 0,
            read: 0,
            ordered: 0,
            check_every: 0,
        }
        .generate(1);
        let mut dict = LossyInsert(BTreeMap::new());
        run_dict_differential(&mut dict, &script);
    }

    #[test]
    fn vec_sequence_differential_is_clean() {
        /// Trivial Vec-backed RankedSequence.
        struct VecSeq(Vec<u64>);
        impl RankedSequence for VecSeq {
            type Item = u64;
            fn len(&self) -> usize {
                self.0.len()
            }
            fn insert_at(&mut self, rank: usize, item: u64) -> Result<(), hi_common::RankError> {
                if rank > self.0.len() {
                    return Err(hi_common::RankError {
                        rank,
                        len: self.0.len(),
                    });
                }
                self.0.insert(rank, item);
                Ok(())
            }
            fn delete_at(&mut self, rank: usize) -> Result<u64, hi_common::RankError> {
                if rank >= self.0.len() {
                    return Err(hi_common::RankError {
                        rank,
                        len: self.0.len(),
                    });
                }
                Ok(self.0.remove(rank))
            }
            fn get_ref(&self, rank: usize) -> Option<&u64> {
                self.0.get(rank)
            }
            fn range_iter(
                &self,
                i: usize,
                j: usize,
            ) -> Result<impl Iterator<Item = &u64>, hi_common::RankError> {
                if i > j {
                    return Ok(self.0[0..0].iter());
                }
                if j >= self.0.len() {
                    return Err(hi_common::RankError {
                        rank: j,
                        len: self.0.len(),
                    });
                }
                Ok(self.0[i..=j].iter())
            }
        }
        let applied = run_seq_differential(&mut VecSeq(Vec::new()), 77, SeqProfile::standard(800));
        assert_eq!(applied, 800);
    }
}
