//! Deferred-splice bookkeeping shared by both PMAs' group-commit engines.
//!
//! A batch replay updates every *decision* structure (rank tree / segment
//! counts, coin stream, capacity rule) one operation at a time — so layouts
//! stay bit-identical to per-op application — but records the element
//! splices instead of executing them. [`BatchState`] holds those records and
//! turns them, at commit, into **one gather/refill per maximal dirty run of
//! groups**:
//!
//! * every operation remembers the global rank it applied at and the group
//!   (leaf / segment) its splice targets; rebalanced windows are recorded
//!   as dirty *ranges* (O(1) per rebalance, however wide the window);
//! * dirty ranges merge into maximal runs, and element movement is always
//!   confined to a run (windows are contiguous and fully dirty);
//! * the arrival-order records are translated to positions within their
//!   run — `pos = rank − (elements before the run at batch start) − (net
//!   earlier batch inserts in runs to the left)` — and applied to an
//!   implicit-treap [`Rope`] over the run's tokens, so a run of `L`
//!   elements absorbs `m` splices in `O(L + m log(L + m))` regardless of
//!   where they land (a `Vec::insert` per splice would be `O(m·L)`);
//! * each run's current elements are then drained once and re-emitted in
//!   the rope's order, and the engine refills the run's groups from the
//!   merged result.
//!
//! Because a structure's groups, concatenated left to right, always equal
//! the logical sequence in rank order, refilling each dirty run with its
//! final slice reproduces exactly the state per-op application would have
//! reached.

use hi_common::batch::SignedFenwick;

/// What a replayed operation does at its recorded position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpliceKind {
    /// Insert the pending item with the given index.
    Insert(u32),
    /// Remove (and drop) the element at the position.
    Delete,
}

/// One replayed operation, in arrival order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpRecord {
    /// Global rank the operation applied at (mid-batch).
    pub rank: u64,
    /// Group (leaf / segment) the splice targets — for a window rebalance,
    /// the window's first group. Only its *run* identity matters.
    pub group: u32,
    /// Insert (with pending-item index) or delete.
    pub kind: SpliceKind,
}

/// A maximal run of dirty groups `[start, end)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Run {
    pub start: u32,
    pub end: u32,
}

// ---------------------------------------------------------------------
// Implicit-treap rope over run tokens
// ---------------------------------------------------------------------

const NONE: u32 = u32::MAX;

/// An implicit treap (rope) over *spans* of a run's initial elements plus
/// single pending items, supporting insert/delete at an element position in
/// expected `O(log m)` and an in-order traversal. Node count is `O(m)` for
/// `m` splices — independent of the run's length (a run starts as one span
/// `[0, L)`; splices split spans). The arena is reused across runs and
/// batches, so steady-state use allocates nothing.
#[derive(Debug, Clone, Default)]
struct Rope {
    left: Vec<u32>,
    right: Vec<u32>,
    /// Subtree size in *elements* (spans count their width).
    size: Vec<u32>,
    pri: Vec<u32>,
    /// Span start for initial nodes; pending-item index for pending nodes.
    payload: Vec<u32>,
    /// Span width for initial nodes; `NONE` marks a pending node (width 1).
    width: Vec<u32>,
    root: u32,
    rng: u64,
    /// Reusable traversal stack.
    stack: Vec<u32>,
}

impl Rope {
    /// Rebuilds the rope over `initial` in-order elements: one span node.
    fn reset(&mut self, initial: usize) {
        self.left.clear();
        self.right.clear();
        self.size.clear();
        self.pri.clear();
        self.payload.clear();
        self.width.clear();
        if initial == 0 {
            self.root = NONE;
            return;
        }
        self.push_node(0, initial as u32, u32::MAX);
        self.root = 0;
    }

    fn push_node(&mut self, payload: u32, width_or_none: u32, pri: u32) -> u32 {
        let id = self.left.len() as u32;
        self.left.push(NONE);
        self.right.push(NONE);
        self.size.push(if width_or_none == NONE {
            1
        } else {
            width_or_none
        });
        self.pri.push(pri);
        self.payload.push(payload);
        self.width.push(width_or_none);
        id
    }

    #[inline]
    fn node_width(&self, t: u32) -> u32 {
        let w = self.width[t as usize];
        if w == NONE {
            1
        } else {
            w
        }
    }

    #[inline]
    fn node_size(&self, t: u32) -> u32 {
        if t == NONE {
            0
        } else {
            self.size[t as usize]
        }
    }

    #[inline]
    fn pull(&mut self, t: u32) {
        self.size[t as usize] = self.node_width(t)
            + self.node_size(self.left[t as usize])
            + self.node_size(self.right[t as usize]);
    }

    /// Draws a deterministic pseudo-random priority (internal-only: the
    /// rope's shape never reaches the structure's layout).
    #[inline]
    fn draw_pri(&mut self) -> u32 {
        self.rng = self.rng.wrapping_mul(6364136223846793005).wrapping_add(97);
        ((self.rng >> 33) as u32) & (u32::MAX >> 2)
    }

    /// Splits `t` into (first `k` elements, rest) — splitting a span node in
    /// two when `k` falls inside it. The carved-off right piece draws a
    /// fresh priority and is merged over the old right subtree, so the
    /// treap's expected balance survives arbitrary span fragmentation.
    fn split(&mut self, t: u32, k: u32) -> (u32, u32) {
        if t == NONE {
            return (NONE, NONE);
        }
        let ls = self.node_size(self.left[t as usize]);
        let w = self.node_width(t);
        if k <= ls {
            let (a, b) = self.split(self.left[t as usize], k);
            self.left[t as usize] = b;
            self.pull(t);
            return (a, t);
        }
        if k >= ls + w {
            let (a, b) = self.split(self.right[t as usize], k - ls - w);
            self.right[t as usize] = a;
            self.pull(t);
            return (t, b);
        }
        // k lands inside this node's span: truncate the node to the left
        // piece and re-merge the right piece (fresh node) with the old
        // right subtree.
        debug_assert_ne!(self.width[t as usize], NONE, "pending nodes have width 1");
        let offset = k - ls;
        let start = self.payload[t as usize];
        let width = self.width[t as usize];
        let old_right = self.right[t as usize];
        self.width[t as usize] = offset;
        self.right[t as usize] = NONE;
        self.pull(t);
        let pri = self.draw_pri();
        let new = self.push_node(start + offset, width - offset, pri);
        let b = self.merge(new, old_right);
        (t, b)
    }

    /// Merges two ropes (`a` entirely before `b`).
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NONE {
            return b;
        }
        if b == NONE {
            return a;
        }
        if self.pri[a as usize] >= self.pri[b as usize] {
            let m = self.merge(self.right[a as usize], b);
            self.right[a as usize] = m;
            self.pull(a);
            a
        } else {
            let m = self.merge(a, self.left[b as usize]);
            self.left[b as usize] = m;
            self.pull(b);
            b
        }
    }

    /// Inserts a pending token carrying `payload` at element position `pos`.
    fn insert(&mut self, pos: usize, payload: u32) {
        let pri = self.draw_pri();
        let node = self.push_node(payload, NONE, pri);
        let (a, b) = self.split(self.root, pos as u32);
        let ab = self.merge(a, node);
        self.root = self.merge(ab, b);
    }

    /// Deletes the element at position `pos` (dropping a pending token or
    /// shrinking a span).
    fn delete(&mut self, pos: usize) {
        let (a, bc) = self.split(self.root, pos as u32);
        let (_b, c) = self.split(bc, 1);
        self.root = self.merge(a, c);
    }

    /// Number of elements.
    fn len(&self) -> usize {
        self.node_size(self.root) as usize
    }

    /// In-order traversal: calls `f(true, span_start, span_len)` for spans
    /// of initial elements and `f(false, pending_idx, 1)` for pending
    /// tokens.
    fn for_each_in_order(&mut self, mut f: impl FnMut(bool, u32, u32)) {
        self.stack.clear();
        let mut cur = self.root;
        loop {
            while cur != NONE {
                self.stack.push(cur);
                cur = self.left[cur as usize];
            }
            let Some(t) = self.stack.pop() else { break };
            let w = self.width[t as usize];
            if w == NONE {
                f(false, self.payload[t as usize], 1);
            } else {
                f(true, self.payload[t as usize], w);
            }
            cur = self.right[t as usize];
        }
    }
}

// ---------------------------------------------------------------------
// Batch state
// ---------------------------------------------------------------------

/// Deferred-splice state for one batch. All vectors keep their capacity
/// across batches (the owning structure holds the state for its lifetime),
/// so steady-state batches allocate nothing once warmed up. No bookkeeping
/// is proportional to the structure's group count — only to the batch and
/// the touched windows.
#[derive(Debug, Clone)]
pub(crate) struct BatchState<T> {
    /// Whether a batch is currently open.
    pub active: bool,
    /// Items awaiting insertion, taken at commit.
    pub pending: Vec<Option<T>>,
    /// One record per replayed op, in arrival order.
    pub records: Vec<OpRecord>,
    /// Dirty group ranges `[start, end)`, in recording order (unsorted,
    /// possibly overlapping — O(1) per rebalance).
    dirty_ranges: Vec<(u32, u32)>,
    /// Commit scratch: maximal dirty runs, initial elements before each
    /// run, per-run splice lists.
    runs: Vec<Run>,
    init_before: Vec<u64>,
    run_delta: Vec<i64>,
    record_runs: Vec<u32>,
    deltas: SignedFenwick,
    /// Splices scattered by run (counting sort, stable): positions are
    /// within the run at the op's application time.
    splices: Vec<(u64, SpliceKind)>,
    run_offsets: Vec<u32>,
    cursors: Vec<u32>,
    rope: Rope,
    /// Reusable gather buffer for run resolution.
    pub run_buf: Vec<T>,
    /// Reusable output buffer for run resolution.
    pub out_buf: Vec<T>,
}

impl<T> Default for BatchState<T> {
    fn default() -> Self {
        Self {
            active: false,
            pending: Vec::new(),
            records: Vec::new(),
            dirty_ranges: Vec::new(),
            runs: Vec::new(),
            init_before: Vec::new(),
            run_delta: Vec::new(),
            record_runs: Vec::new(),
            deltas: SignedFenwick::default(),
            splices: Vec::new(),
            run_offsets: Vec::new(),
            cursors: Vec::new(),
            rope: Rope::default(),
            run_buf: Vec::new(),
            out_buf: Vec::new(),
        }
    }
}

impl<T> BatchState<T> {
    /// Opens a batch. Clears all records; keeps capacities.
    pub fn begin(&mut self) {
        assert!(!self.active, "batch already open");
        self.active = true;
        self.reset_records();
    }

    /// Drops every record (used after a materializing full rebuild resets
    /// the layout mid-batch).
    pub fn reset_records(&mut self) {
        self.pending.clear();
        self.records.clear();
        self.dirty_ranges.clear();
    }

    /// Returns `true` when nothing was deferred (commit is a no-op).
    pub fn is_clean(&self) -> bool {
        self.records.is_empty() && self.dirty_ranges.is_empty()
    }

    /// Marks one group dirty.
    #[inline]
    pub fn mark_dirty(&mut self, group: usize) {
        self.dirty_ranges.push((group as u32, group as u32 + 1));
    }

    /// Marks a window of groups dirty — O(1), however wide the window.
    pub fn mark_dirty_window(&mut self, first: usize, count: usize) {
        self.dirty_ranges
            .push((first as u32, (first + count) as u32));
    }

    /// Records a deferred insert.
    pub fn record_insert(&mut self, rank: usize, group: usize, item: T) {
        let idx = self.pending.len() as u32;
        self.pending.push(Some(item));
        self.records.push(OpRecord {
            rank: rank as u64,
            group: group as u32,
            kind: SpliceKind::Insert(idx),
        });
    }

    /// Records a deferred delete.
    pub fn record_delete(&mut self, rank: usize, group: usize) {
        self.records.push(OpRecord {
            rank: rank as u64,
            group: group as u32,
            kind: SpliceKind::Delete,
        });
    }

    /// Resolves the batch into per-run splice lists. `final_prefix(g)` must
    /// report the number of elements in groups `[0, g)` *after* the replay
    /// (the engine's count structures qualify — the rank tree / segment
    /// Fenwick are replayed op by op). Returns the number of runs.
    ///
    /// Work is `O(W log W + m log m)` for `W` dirty ranges and `m` records —
    /// independent of the structure's total group count.
    pub fn plan_commit(&mut self, mut final_prefix: impl FnMut(usize) -> u64) -> usize {
        // 1. Merge the dirty ranges into maximal runs.
        self.dirty_ranges.sort_unstable();
        self.runs.clear();
        for &(start, end) in &self.dirty_ranges {
            match self.runs.last_mut() {
                Some(last) if start <= last.end => last.end = last.end.max(end),
                _ => self.runs.push(Run { start, end }),
            }
        }
        let run_count = self.runs.len();
        // 2. Per-record run index (binary search over the sorted runs) and
        //    per-run net element delta.
        self.record_runs.clear();
        self.run_delta.clear();
        self.run_delta.resize(run_count, 0);
        self.run_offsets.clear();
        self.run_offsets.resize(run_count + 1, 0);
        for rec in &self.records {
            let r = self
                .runs
                .partition_point(|run| run.start <= rec.group)
                .checked_sub(1)
                // hi-lint: allow(panic-surface): runs cover every recorded group starting at group 0, so partition_point >= 1
                .expect("op recorded before the first run");
            debug_assert!(rec.group < self.runs[r].end, "op outside every run");
            self.record_runs.push(r as u32);
            self.run_offsets[r + 1] += 1;
            match rec.kind {
                SpliceKind::Insert(_) => self.run_delta[r] += 1,
                SpliceKind::Delete => self.run_delta[r] -= 1,
            }
        }
        for r in 0..run_count {
            self.run_offsets[r + 1] += self.run_offsets[r];
        }
        // 3. Initial (batch-begin) element prefix before each run: the
        //    final prefix minus the net deltas of every earlier run.
        self.init_before.clear();
        let mut delta_before = 0i64;
        for r in 0..run_count {
            let fp = final_prefix(self.runs[r].start as usize) as i64;
            self.init_before.push((fp - delta_before) as u64);
            delta_before += self.run_delta[r];
        }
        // 4. Arrival-order pass: translate each record's global rank into a
        //    position within its run and scatter the splices by run,
        //    preserving arrival order (stable counting sort). `deltas`
        //    tracks, per run, the net inserts applied so far, so earlier
        //    runs' splices shift later runs' ranks correctly.
        self.deltas.reset(run_count);
        self.cursors.clear();
        self.cursors
            .extend_from_slice(&self.run_offsets[..run_count]);
        self.splices.clear();
        self.splices
            .resize(self.records.len(), (0, SpliceKind::Delete));
        for (rec, &run) in self.records.iter().zip(&self.record_runs) {
            let run = run as usize;
            let pos = rec.rank as i64 - self.init_before[run] as i64 - self.deltas.prefix(run);
            debug_assert!(pos >= 0, "splice position underflow");
            self.splices[self.cursors[run] as usize] = (pos as u64, rec.kind);
            self.cursors[run] += 1;
            match rec.kind {
                SpliceKind::Insert(_) => self.deltas.add(run, 1),
                SpliceKind::Delete => self.deltas.add(run, -1),
            }
        }
        run_count
    }

    /// The planned runs, in ascending group order.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// The run at `idx` (copied out so the caller can keep borrowing the
    /// state mutably).
    pub fn run(&self, idx: usize) -> Run {
        self.runs[idx]
    }

    /// Applies run `idx`'s splices (in arrival order) to `buf`, which must
    /// hold the run's initial elements in rank order, leaving the merged
    /// result in `buf`. The splices drive an implicit-treap rope, so cost
    /// is `O(L + m log(L + m))` — deleted initial elements are dropped,
    /// pending items are moved in.
    pub fn apply_run_splices(&mut self, idx: usize, buf: &mut Vec<T>) {
        let (lo, hi) = (
            self.run_offsets[idx] as usize,
            self.run_offsets[idx + 1] as usize,
        );
        if lo == hi {
            return;
        }
        if hi - lo == 1 {
            // Single splice (the common case for scattered batches): one
            // in-place Vec splice beats building a rope and re-emitting the
            // whole run.
            let (pos, kind) = self.splices[lo];
            match kind {
                SpliceKind::Insert(p) => buf.insert(
                    pos as usize,
                    self.pending[p as usize]
                        .take()
                        // hi-lint: allow(panic-surface): each pending slot is spliced exactly once per commit
                        .expect("pending item spliced twice"),
                ),
                SpliceKind::Delete => {
                    drop(buf.remove(pos as usize));
                }
            }
            return;
        }
        self.rope.reset(buf.len());
        for s in lo..hi {
            let (pos, kind) = self.splices[s];
            match kind {
                SpliceKind::Insert(p) => self.rope.insert(pos as usize, p),
                SpliceKind::Delete => self.rope.delete(pos as usize),
            }
        }
        // Resolve the rope's span order into elements: spans appear in
        // increasing start order, so a single drain pass bulk-moves
        // survivors and drops deletions.
        let mut out = std::mem::take(&mut self.out_buf);
        out.clear();
        out.reserve(self.rope.len());
        {
            let mut drain = buf.drain(..);
            let mut next_initial = 0u32;
            let pending = &mut self.pending;
            self.rope.for_each_in_order(|is_initial, v, w| {
                if is_initial {
                    debug_assert!(v >= next_initial, "initial spans out of order");
                    while next_initial < v {
                        drop(drain.next());
                        next_initial += 1;
                    }
                    out.extend(drain.by_ref().take(w as usize));
                    next_initial += w;
                } else {
                    out.push(
                        pending[v as usize]
                            .take()
                            // hi-lint: allow(panic-surface): each pending slot is spliced exactly once per commit
                            .expect("pending item spliced twice"),
                    );
                }
            });
            // Remaining initial elements were deleted; `drain` drops them.
        }
        std::mem::swap(buf, &mut out);
        self.out_buf = out;
    }

    /// Closes the batch (after a commit or a flush consumed the records).
    pub fn finish(&mut self) {
        self.active = false;
        self.reset_records();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rope_reproduces_vec_splices() {
        // Differential test: random insert/delete-at-position streams
        // against a plain Vec reference.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) % m.max(1)
        };
        for initial in [0usize, 1, 7, 64, 500] {
            let mut rope = Rope::default();
            rope.reset(initial);
            // Reference: tokens as (is_initial, value).
            let mut model: Vec<(bool, u32)> = (0..initial as u32).map(|i| (true, i)).collect();
            for op in 0..400u32 {
                if model.is_empty() || next(3) != 0 {
                    let pos = next(model.len() as u64 + 1) as usize;
                    rope.insert(pos, op);
                    model.insert(pos, (false, op));
                } else {
                    let pos = next(model.len() as u64) as usize;
                    rope.delete(pos);
                    model.remove(pos);
                }
                assert_eq!(rope.len(), model.len());
            }
            let mut got = Vec::new();
            rope.for_each_in_order(|a, b, w| {
                if a {
                    for i in 0..w {
                        got.push((true, b + i));
                    }
                } else {
                    got.push((false, b));
                }
            });
            assert_eq!(got, model, "initial = {initial}");
        }
    }

    /// Reference: apply the same splices to a flat model vector.
    #[test]
    fn runs_and_positions_reproduce_flat_splices() {
        // Groups of 2 elements each; groups 1, 2 and 5 get dirty.
        let groups: Vec<Vec<u64>> = vec![
            vec![0, 1],
            vec![2, 3],
            vec![4, 5],
            vec![6, 7],
            vec![8, 9],
            vec![10, 11],
        ];
        let mut model: Vec<u64> = groups.iter().flatten().copied().collect();
        let mut st: BatchState<u64> = BatchState::default();
        st.begin();
        // Insert 100 at rank 3 (group 1), delete rank 5 (now element 4 in
        // group 2), insert 200 at rank 10 (group 5).
        st.mark_dirty(1);
        st.record_insert(3, 1, 100);
        model.insert(3, 100);
        st.mark_dirty(2);
        st.record_delete(5, 2);
        model.remove(5);
        st.mark_dirty(5);
        st.record_insert(10, 5, 200);
        model.insert(10, 200);

        // Final prefix before group g, per the model's final state: groups
        // 0..g hold the final slices.
        let final_counts = [2u64, 3, 1, 2, 2, 3];
        let runs = st.plan_commit(|g| final_counts[..g].iter().sum());
        assert_eq!(runs, 2, "groups 1-2 coalesce, group 5 stands alone");
        // Run 0: groups 1..3.
        let r0 = st.run(0);
        assert_eq!((r0.start, r0.end), (1, 3));
        let mut buf: Vec<u64> = groups[1..3].iter().flatten().copied().collect();
        st.apply_run_splices(0, &mut buf);
        assert_eq!(buf, vec![2, 100, 3, 5]);
        // Run 1: group 5.
        let r1 = st.run(1);
        assert_eq!((r1.start, r1.end), (5, 6));
        let mut buf: Vec<u64> = groups[5].clone();
        st.apply_run_splices(1, &mut buf);
        assert_eq!(buf, vec![200, 10, 11]);
        // The concatenation [g0][run0][g3][g4][run1] equals the model.
        let mut rebuilt: Vec<u64> = groups[0].clone();
        rebuilt.extend([2, 100, 3, 5]);
        rebuilt.extend(groups[3].iter().copied());
        rebuilt.extend(groups[4].iter().copied());
        rebuilt.extend([200, 10, 11]);
        assert_eq!(rebuilt, model);
        st.finish();
        assert!(st.is_clean());
    }
}
