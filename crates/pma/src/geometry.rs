//! Geometry of the history-independent PMA (paper §3.3).
//!
//! Given the capacity parameter `N̂` (drawn by the WHI capacity rule), the
//! PMA's layout is completely determined:
//!
//! * the tree of ranges has height `h = ⌈log N̂ − log log N̂⌉` (the root is the
//!   whole array at depth 0, the leaves are at depth `h`);
//! * every leaf range has `L = ⌈C_L · log N̂⌉` slots, so the array has
//!   `N_S = 2^h · L = Θ(N̂)` slots;
//! * a non-leaf range at depth `d` has a candidate set of
//!   `|M_d| = ⌈c₁ · N̂ / (2^d · log N̂)⌉` middle elements.
//!
//! The constants must satisfy `C_L ≥ 1 + c₁ + 6/log N̂` (Lemma 7: ranges never
//! overflow) and `c₁ < 1 − 6/log N̂` (Lemma 8: leaves stay constant-factor
//! full). The paper uses `c₁ = 1/2`, `C_L = 2` for `N̂ > 4096` and falls back
//! to a plain dynamic array for tiny `N̂`; [`Geometry`] does the same, using a
//! single-leaf layout (height 0) below [`SMALL_LIMIT`] and adaptive constants
//! between [`SMALL_LIMIT`] and 4096 so that both inequalities always hold.

/// Below this `N̂` the PMA degenerates to a single evenly-spread leaf
/// (the paper's "dynamic array" fallback, footnote 5).
pub const SMALL_LIMIT: usize = 128;

/// `N̂` at and above which the paper's headline constants (`c₁ = 1/2`,
/// `C_L = 2`) are used.
pub const PAPER_CONSTANTS_LIMIT: usize = 4096;

/// The complete set of layout parameters derived from `N̂`.
#[derive(Debug, Clone, PartialEq)]
pub struct Geometry {
    /// The capacity parameter this geometry was derived from.
    pub n_hat: usize,
    /// Height of the range tree (leaves at depth `h`; `h = 0` means the whole
    /// array is one leaf).
    pub height: u32,
    /// Slots per leaf range.
    pub leaf_slots: usize,
    /// Total slots in the array (`2^h · leaf_slots`).
    pub total_slots: usize,
    /// The constant `c₁` used for candidate-set sizes.
    pub c1: f64,
    /// The constant `C_L` used for leaf sizes.
    pub c_l: f64,
    /// `|M_d|` per depth `0..height`, precomputed so the per-level reservoir
    /// decisions on the update path never touch floating point.
    candidate_sizes: Vec<usize>,
}

impl Geometry {
    /// Derives the layout for capacity parameter `n_hat ≥ 1`.
    pub fn for_n_hat(n_hat: usize) -> Self {
        assert!(n_hat >= 1, "geometry requires N̂ ≥ 1");
        if n_hat < SMALL_LIMIT {
            // Single leaf with 2·N̂ slots (at least 4): the dynamic-array
            // fallback. Elements are always evenly spread across the leaf.
            let leaf_slots = (2 * n_hat).max(4);
            return Self {
                n_hat,
                height: 0,
                leaf_slots,
                total_slots: leaf_slots,
                c1: 0.0,
                c_l: 2.0,
                candidate_sizes: Vec::new(),
            };
        }
        let lg = (n_hat as f64).log2();
        let (c1, c_l) = if n_hat >= PAPER_CONSTANTS_LIMIT {
            (0.5, 2.0)
        } else {
            // Adaptive constants that satisfy the Lemma 7/8 inequalities with
            // a little slack for every N̂ in [SMALL_LIMIT, 4096).
            let c1 = 0.9 * (1.0 - 6.0 / lg);
            let c_l = 1.0 + c1 + 6.0 / lg + 0.05;
            (c1, c_l)
        };
        let height = (lg - lg.log2()).ceil().max(1.0) as u32;
        let leaf_slots = (c_l * lg).ceil() as usize;
        let total_slots = (1usize << height) * leaf_slots;
        let candidate_sizes = (0..height)
            .map(|d| {
                let raw = (c1 * n_hat as f64 / ((1u64 << d) as f64 * lg)).ceil() as usize;
                raw.clamp(1, total_slots >> d)
            })
            .collect();
        Self {
            n_hat,
            height,
            leaf_slots,
            total_slots,
            c1,
            c_l,
            candidate_sizes,
        }
    }

    /// Number of leaf ranges (`2^h`).
    pub fn leaf_count(&self) -> usize {
        1usize << self.height
    }

    /// Number of levels in the range tree (`h + 1`), which is also the number
    /// of levels of the rank tree.
    pub fn levels(&self) -> u32 {
        self.height + 1
    }

    /// Total number of ranges (nodes of the range tree).
    pub fn range_count(&self) -> usize {
        (1usize << (self.height + 1)) - 1
    }

    /// Number of slots in a range at depth `d`.
    pub fn slots_at_depth(&self, d: u32) -> usize {
        debug_assert!(d <= self.height);
        self.total_slots >> d
    }

    /// Candidate-set size `|M_d|` for a non-leaf range at depth `d`.
    ///
    /// Always at least 1 and never larger than the range's slot count.
    /// Precomputed at construction, so the per-level lookup on the update
    /// path is a table read.
    #[inline]
    pub fn candidate_size(&self, d: u32) -> usize {
        debug_assert!(d < self.height, "leaves have no candidate set");
        self.candidate_sizes[d as usize]
    }

    /// Leaf (group) index owning `slot`.
    #[inline]
    pub fn leaf_of_slot(&self, slot: usize) -> usize {
        debug_assert!(slot < self.total_slots);
        slot / self.leaf_slots
    }

    /// First slot of leaf `leaf`.
    #[inline]
    pub fn leaf_start(&self, leaf: usize) -> usize {
        debug_assert!(leaf < self.leaf_count());
        leaf * self.leaf_slots
    }

    /// 0-based start of the candidate window for a range currently holding
    /// `len` elements, with candidate-set size `m`: the paper's
    /// "`1 + ⌈ℓ/2⌉ − ⌈m/2⌉`-th element" converted to 0-based indexing and
    /// clamped into `[0, len − m_eff]`.
    ///
    /// Returns `(window_start, effective_window_size)` where the effective
    /// size is `min(m, len)` (the window cannot exceed the elements present).
    pub fn candidate_window(len: usize, m: usize) -> (usize, usize) {
        if len == 0 {
            return (0, 0);
        }
        let m_eff = m.min(len);
        let start_1based = (len.div_ceil(2) + 1).saturating_sub(m_eff.div_ceil(2));
        let start = start_1based.saturating_sub(1).min(len - m_eff);
        (start, m_eff)
    }

    /// Returns `true` when this geometry is the single-leaf fallback.
    pub fn is_small(&self) -> bool {
        self.height == 0
    }

    /// Verifies the Lemma 7 pre-condition `C_L ≥ 1 + c₁ + 6/log N̂` and the
    /// Lemma 8 pre-condition `c₁ < 1 − 6/log N̂`. Used by tests and debug
    /// assertions.
    pub fn constants_are_valid(&self) -> bool {
        if self.is_small() {
            return true;
        }
        let lg = (self.n_hat as f64).log2();
        self.c_l + 1e-9 >= 1.0 + self.c1 + 6.0 / lg && self.c1 < 1.0 - 6.0 / lg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_n_hat_is_single_leaf() {
        for n_hat in 1..SMALL_LIMIT {
            let g = Geometry::for_n_hat(n_hat);
            assert!(g.is_small());
            assert_eq!(g.leaf_count(), 1);
            assert!(g.total_slots >= 2 * n_hat || g.total_slots >= 4);
            assert!(g.constants_are_valid());
        }
    }

    #[test]
    fn large_n_hat_uses_paper_constants() {
        let g = Geometry::for_n_hat(1 << 20);
        assert_eq!(g.c1, 0.5);
        assert_eq!(g.c_l, 2.0);
        assert!(g.constants_are_valid());
    }

    #[test]
    fn constants_valid_across_the_whole_range() {
        for n_hat in (SMALL_LIMIT..20_000).step_by(37) {
            let g = Geometry::for_n_hat(n_hat);
            assert!(g.constants_are_valid(), "N̂ = {n_hat}: {g:?}");
        }
    }

    #[test]
    fn space_is_linear() {
        // N_S ≤ (2·C_L + 1)·N̂ per the paper, and at least N̂ slots so
        // everything fits.
        for n_hat in [SMALL_LIMIT, 1_000, 4_096, 65_536, 1 << 20] {
            let g = Geometry::for_n_hat(n_hat);
            assert!(
                g.total_slots as f64 <= (2.0 * g.c_l + 1.5) * n_hat as f64,
                "N̂ = {n_hat}: {} slots",
                g.total_slots
            );
            assert!(g.total_slots >= n_hat, "N̂ = {n_hat}: too few slots");
        }
    }

    #[test]
    fn heights_grow_logarithmically() {
        let g1 = Geometry::for_n_hat(1 << 12);
        let g2 = Geometry::for_n_hat(1 << 20);
        assert!(g2.height > g1.height);
        assert!(g2.height as usize <= 21);
    }

    #[test]
    fn leaf_slots_hold_logarithmically_many() {
        let g = Geometry::for_n_hat(1 << 16);
        // C_L = 2, log2 = 16 → 32 slots per leaf.
        assert_eq!(g.leaf_slots, 32);
        assert_eq!(g.slots_at_depth(g.height), g.leaf_slots);
        assert_eq!(g.slots_at_depth(0), g.total_slots);
    }

    #[test]
    fn candidate_sizes_shrink_with_depth() {
        let g = Geometry::for_n_hat(1 << 16);
        let mut prev = usize::MAX;
        for d in 0..g.height {
            let m = g.candidate_size(d);
            assert!(m >= 1);
            assert!(m <= prev);
            prev = m;
        }
        // Root candidate set: c1·N̂/log N̂ = 0.5·65536/16 = 2048.
        assert_eq!(g.candidate_size(0), 2048);
    }

    #[test]
    fn candidate_window_is_centred_and_clamped() {
        // len = 100, m = 10 → 1-based start = 51 − 5 = 46 → 0-based 45.
        assert_eq!(Geometry::candidate_window(100, 10), (45, 10));
        // Window never extends past the elements present.
        let (w, m_eff) = Geometry::candidate_window(6, 10);
        assert_eq!(m_eff, 6);
        assert_eq!(w, 0);
        // Empty range.
        assert_eq!(Geometry::candidate_window(0, 8), (0, 0));
        // Single element.
        assert_eq!(Geometry::candidate_window(1, 8), (0, 1));
    }

    #[test]
    fn candidate_window_always_in_bounds() {
        for len in 0..200usize {
            for m in 1..50usize {
                let (w, m_eff) = Geometry::candidate_window(len, m);
                assert!(m_eff <= len);
                if len > 0 {
                    assert!(w + m_eff <= len, "len={len} m={m} w={w} m_eff={m_eff}");
                }
            }
        }
    }

    #[test]
    fn levels_and_range_count() {
        let g = Geometry::for_n_hat(1 << 14);
        assert_eq!(g.levels(), g.height + 1);
        assert_eq!(g.range_count(), (1 << (g.height + 1)) - 1);
        assert_eq!(g.leaf_count(), 1 << g.height);
    }

    #[test]
    #[should_panic(expected = "N̂ ≥ 1")]
    fn zero_n_hat_panics() {
        Geometry::for_n_hat(0);
    }
}
