//! Persisting PMAs: mapping a slot array onto a [`block_store::BlockStore`]
//! image and rebuilding it on open.
//!
//! Any sequence that exposes its occupancy bitmap ([`Occupancy`]) and its
//! elements in rank order ([`RankedSequence`]) serializes with no extra
//! framing: the image's k-th set bit holds the k-th element. Two flush
//! flavors exist because the paper's at-rest guarantee and the repo's
//! steady-state allocation guarantee pull in different directions:
//!
//! * [`flush_canonical`] first re-draws the layout from *(contents, seed)*
//!   via [`RankedSequence::bulk_load`], so the committed image is the pure
//!   function `f(contents, seed)` — nothing about the operation history
//!   survives on disk. This is what the facade's `PersistentDict::flush`
//!   does, and what makes [`open_hi_pma`]'s fingerprint verification sound.
//! * [`flush_layout`] writes the current in-RAM layout as-is: allocation-free
//!   in the steady state (the store reuses its page-aligned staging
//!   buffers), weakly history independent at rest — the image is *a* sample
//!   of the layout distribution, not the canonical one.
//!
//! Opening always rebuilds with `bulk_load(records, stored_seed)`, so a
//! reopened structure is `f(contents, seed)` regardless of how the previous
//! process built it.

use block_store::{layout_fingerprint, BlockStore, FileError, Record, StoreMeta};
use hi_common::counters::SharedCounters;
use hi_common::rng::RngSource;
use hi_common::traits::{Occupancy, RankedSequence};
use io_sim::Tracer;
use std::fmt;
use std::io;

use crate::{ClassicPma, DensityBands, HiPma};

/// A typed error from persisting or reopening a PMA.
///
/// Callers that stay on the facade's `io::Result` surface keep working: the
/// `From` impl folds a `PersistError` back into an [`io::Error`] with the
/// same message text. Callers that care can match the typed variants —
/// [`PersistError::Corrupt`] for a failed checksum,
/// [`PersistError::Transient`] for an error that outlived the retry budget,
/// [`PersistError::NoSpace`] for a full disk,
/// [`PersistError::FingerprintMismatch`] for an image that does not
/// reproduce under `(contents, seed)` — instead of grepping message text.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying block store failed (I/O, injected crash, poisoned
    /// handle — everything without a more specific variant below).
    Store(io::Error),
    /// A block of the image failed its checksum, or a decoded structure is
    /// internally inconsistent.
    Corrupt {
        /// The offending block id (0 = header).
        block: u64,
    },
    /// A transient storage error survived the whole bounded retry budget.
    Transient {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The device is out of space.
    NoSpace,
    /// The layout rebuilt from the stored records and seed does not
    /// reproduce the committed image's fingerprint — the image was flushed
    /// non-canonically or the store's contents were tampered with.
    FingerprintMismatch {
        /// Fingerprint recorded in the committed header.
        committed: u64,
        /// Fingerprint of the layout rebuilt by `bulk_load`.
        rebuilt: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Store(e) => e.fmt(f),
            PersistError::Corrupt { block } => {
                write!(f, "persisted image corrupt at block {block}")
            }
            PersistError::Transient { attempts } => write!(
                f,
                "transient storage error persisted through {attempts} attempts"
            ),
            PersistError::NoSpace => write!(f, "no space left on device"),
            PersistError::FingerprintMismatch { committed, rebuilt } => write!(
                f,
                "rebuilt layout does not reproduce the committed fingerprint \
                 (committed {committed:#018x}, rebuilt {rebuilt:#018x}; \
                 was the image flushed non-canonically?)"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Store(e)
    }
}

impl From<FileError> for PersistError {
    fn from(e: FileError) -> Self {
        match e {
            FileError::Corrupt { block, .. } => PersistError::Corrupt { block },
            FileError::Transient { attempts } => PersistError::Transient { attempts },
            FileError::NoSpace => PersistError::NoSpace,
            other => PersistError::Store(other.into()),
        }
    }
}

impl From<PersistError> for io::Error {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Store(io) => io,
            corrupt @ PersistError::Corrupt { .. } => {
                io::Error::new(io::ErrorKind::InvalidData, corrupt.to_string())
            }
            mismatch @ PersistError::FingerprintMismatch { .. } => {
                io::Error::new(io::ErrorKind::InvalidData, mismatch.to_string())
            }
            other => io::Error::other(other.to_string()),
        }
    }
}

/// Commits the sequence's current in-RAM layout. Steady-state calls are
/// allocation-free; the image is weakly history independent (see module
/// docs). Returns the committed generation.
pub fn flush_layout<S, T>(seq: &S, seed: u64, store: &mut BlockStore) -> Result<u64, PersistError>
where
    S: Occupancy + RankedSequence<Item = T>,
    T: Record + Clone,
{
    Ok(store.commit(
        seq.occupancy_words(),
        seq.slot_count() as u64,
        seq.len() as u64,
        seq.iter().cloned(),
        seed,
    )?)
}

/// Re-draws the layout from *(contents, seed)* and commits it: the on-disk
/// image becomes the pure function `f(contents, seed)`.
pub fn flush_canonical<S, T>(
    seq: &mut S,
    seed: u64,
    store: &mut BlockStore,
) -> Result<u64, PersistError>
where
    S: Occupancy + RankedSequence<Item = T>,
    T: Record + Clone,
{
    let items: Vec<T> = seq.iter().cloned().collect();
    seq.bulk_load(items, seed);
    flush_layout(seq, seed, store)
}

/// Checks that a rebuilt layout reproduces the committed image's
/// fingerprint — the recovery half of the `f(contents, seed)` contract.
pub fn verify_layout<S: Occupancy>(seq: &S, meta: &StoreMeta) -> Result<(), PersistError> {
    let fp = layout_fingerprint(seq.occupancy_words(), seq.slot_count() as u64);
    if fp == meta.fingerprint {
        Ok(())
    } else {
        Err(PersistError::FingerprintMismatch {
            committed: meta.fingerprint,
            rebuilt: fp,
        })
    }
}

/// Rebuilds a [`HiPma`] from a canonical committed image: loads the
/// records, bulk-loads them with the stored seed, and verifies the rebuilt
/// layout reproduces the committed fingerprint.
pub fn open_hi_pma<T>(
    store: &mut BlockStore,
    counters: SharedCounters,
    tracer: Tracer,
    elem_size: u64,
) -> Result<(HiPma<T>, StoreMeta), PersistError>
where
    T: Record + Clone,
{
    let (meta, _words, records) = store.load::<T>()?;
    let mut pma = HiPma::with_parts(RngSource::from_seed(meta.seed), counters, tracer, elem_size);
    pma.bulk_load(records, meta.seed);
    verify_layout(&pma, &meta)?;
    Ok((pma, meta))
}

/// Rebuilds a [`ClassicPma`] from a canonical committed image (the
/// baseline's bulk load is deterministic in *(contents, seed)* too).
pub fn open_classic_pma<T>(
    store: &mut BlockStore,
    counters: SharedCounters,
    tracer: Tracer,
    elem_size: u64,
) -> Result<(ClassicPma<T>, StoreMeta), PersistError>
where
    T: Record + Clone,
{
    let (meta, _words, records) = store.load::<T>()?;
    let mut pma = ClassicPma::with_parts(DensityBands::standard(), counters, tracer, elem_size);
    pma.bulk_load(records, meta.seed);
    verify_layout(&pma, &meta)?;
    Ok((pma, meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use block_store::{temp_path, StoreOptions};

    fn cleanup(store: &BlockStore) {
        let data = store.path().to_path_buf();
        let journal = store.journal_path().to_path_buf();
        let _ = std::fs::remove_file(data);
        let _ = std::fs::remove_file(journal);
    }

    fn hi_pma(seed: u64) -> HiPma<u64> {
        HiPma::with_parts(
            RngSource::from_seed(seed),
            SharedCounters::new(),
            Tracer::disabled(),
            8,
        )
    }

    #[test]
    fn hi_pma_canonical_roundtrip_reproduces_layout_exactly() {
        let path = temp_path("persist-hi");
        let mut store = BlockStore::open(&path, StoreOptions::new(512).no_sync()).unwrap();

        // Build through an arbitrary (history-dependent) insertion order.
        let mut pma = hi_pma(1);
        for k in (0..2_000u64).rev() {
            let rank = pma.lower_bound_by(|x| x.cmp(&k));
            pma.insert_at(rank, k).unwrap();
        }
        flush_canonical(&mut pma, 0xA5EED, &mut store).unwrap();
        let words_at_flush = pma.occupancy_words().to_vec();

        let mut store = BlockStore::open(&path, StoreOptions::new(512).no_sync()).unwrap();
        let (reopened, meta) =
            open_hi_pma::<u64>(&mut store, SharedCounters::new(), Tracer::disabled(), 8).unwrap();
        assert_eq!(meta.seed, 0xA5EED);
        assert_eq!(reopened.len(), 2_000);
        assert_eq!(
            reopened.occupancy_words(),
            &words_at_flush[..],
            "reopen must reproduce the canonical layout bit for bit"
        );
        assert_eq!(
            reopened.iter().copied().collect::<Vec<_>>(),
            (0..2_000u64).collect::<Vec<_>>()
        );
        cleanup(&store);
    }

    #[test]
    fn classic_pma_roundtrips_too() {
        let path = temp_path("persist-classic");
        let mut store = BlockStore::open(&path, StoreOptions::new(512).no_sync()).unwrap();
        let mut pma: ClassicPma<(u64, u64)> = ClassicPma::with_parts(
            DensityBands::standard(),
            SharedCounters::new(),
            Tracer::disabled(),
            16,
        );
        for k in 0..500u64 {
            let rank = pma.len();
            pma.insert_at(rank, (k, k * k)).unwrap();
        }
        flush_canonical(&mut pma, 7, &mut store).unwrap();

        let mut store = BlockStore::open(&path, StoreOptions::new(512).no_sync()).unwrap();
        let (reopened, _) = open_classic_pma::<(u64, u64)>(
            &mut store,
            SharedCounters::new(),
            Tracer::disabled(),
            16,
        )
        .unwrap();
        assert_eq!(reopened.len(), 500);
        assert_eq!(reopened.get(499), Some((499, 499 * 499)));
        cleanup(&store);
    }

    #[test]
    fn flush_layout_persists_the_live_image() {
        // The non-canonical flavor: what is committed is the in-RAM layout
        // as it stands, verified by reading the raw image back.
        let path = temp_path("persist-raw");
        let mut store = BlockStore::open(&path, StoreOptions::new(512).no_sync()).unwrap();
        let mut pma = hi_pma(3);
        for k in 0..300u64 {
            let rank = pma.lower_bound_by(|x| x.cmp(&k));
            pma.insert_at(rank, k).unwrap();
        }
        flush_layout(&pma, 99, &mut store).unwrap();
        let (meta, words, records) = store.load::<u64>().unwrap();
        assert_eq!(words, pma.occupancy_words());
        assert_eq!(records, pma.iter().copied().collect::<Vec<_>>());
        assert_eq!(meta.len, 300);
        cleanup(&store);
    }
}
