//! Even spreading of elements across a window of slots.
//!
//! Both PMAs place the elements of a leaf (or of a rebalance window) at
//! deterministic, evenly spaced slot positions. Determinism matters for
//! history independence: the layout of a leaf holding `n` elements in `L`
//! slots must be a function of `(n, L)` only (paper §3.1, base case of the
//! recursion), never of which element arrived when.
//!
//! The placement arithmetic lives here; the storage it drives (dense values
//! plus an occupancy bitmap) lives in [`crate::store`].

/// Slot index of the `j`-th of `n` elements spread evenly over `slots` slots
/// (`0 ≤ j < n ≤ slots`).
///
/// Uses the canonical `⌊j · slots / n⌋` spreading, which places the first
/// element at slot 0 and leaves gaps as evenly as possible. Consecutive
/// elements are at most `⌈slots / n⌉` slots apart, so a constant-factor-full
/// leaf has `O(1)` gaps between consecutive elements (Lemma 8).
///
/// The product is computed in `u64` — one native multiply and divide — and
/// falls back to `u128` only when `j · slots` would overflow (arrays beyond
/// ~2³² slots), keeping the division off the critical path's slow lane.
#[inline]
pub fn spread_position(j: usize, n: usize, slots: usize) -> usize {
    debug_assert!(n > 0 && j < n && n <= slots);
    match (j as u64).checked_mul(slots as u64) {
        Some(product) => (product / n as u64) as usize,
        None => ((j as u128 * slots as u128) / n as u128) as usize,
    }
}

/// Calls `f` with the slot position of each of `n` elements spread evenly
/// over `slots` slots, in increasing element order — exactly
/// `spread_position(0..n)`, but generated incrementally (one division per
/// *window* instead of one per element): `⌊j·S/n⌋` advances by `⌊S/n⌋` per
/// step plus a Bresenham-style carry of the remainder.
#[inline]
pub fn for_each_spread_position(n: usize, slots: usize, mut f: impl FnMut(usize)) {
    if n == 0 {
        return;
    }
    debug_assert!(n <= slots);
    let step = slots / n;
    let rem = slots % n;
    let mut pos = 0usize;
    let mut err = 0usize;
    for _ in 0..n {
        f(pos);
        pos += step;
        err += rem;
        if err >= n {
            pos += 1;
            err -= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_monotone_and_in_bounds() {
        for n in 1..=30usize {
            for slots in n..=60usize {
                let mut prev = None;
                for j in 0..n {
                    let p = spread_position(j, n, slots);
                    assert!(p < slots);
                    if let Some(q) = prev {
                        assert!(p > q, "positions must be strictly increasing");
                    }
                    prev = Some(p);
                }
            }
        }
    }

    #[test]
    fn full_window_is_dense() {
        for n in 1..=20usize {
            let positions: Vec<usize> = (0..n).map(|j| spread_position(j, n, n)).collect();
            assert_eq!(positions, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fast_path_agrees_with_u128_reference() {
        // Property test pinning the u64 fast path to the old all-u128
        // arithmetic, including near the overflow boundary.
        let reference =
            |j: usize, n: usize, slots: usize| ((j as u128 * slots as u128) / n as u128) as usize;
        let huge = 1usize << 40;
        for (j, n, slots) in [
            (0, 1, 1),
            (3, 7, 100),
            (12_345, 54_321, 100_000),
            (huge - 2, huge - 1, huge),
            (huge / 2, huge / 2 + 1, huge),
        ] {
            assert_eq!(
                spread_position(j, n, slots),
                reference(j, n, slots),
                "j={j} n={n} slots={slots}"
            );
        }
    }

    #[test]
    fn incremental_positions_match_the_closed_form() {
        // Property test pinning the Bresenham generator to `⌊j·S/n⌋`.
        for n in 1..=64usize {
            for slots in n..=130usize {
                let mut got = Vec::with_capacity(n);
                for_each_spread_position(n, slots, |p| got.push(p));
                let expected: Vec<usize> = (0..n).map(|j| spread_position(j, n, slots)).collect();
                assert_eq!(got, expected, "n={n} slots={slots}");
            }
        }
        for_each_spread_position(0, 10, |_| panic!("no positions for n = 0"));
    }

    #[test]
    fn gaps_are_bounded_for_half_full_windows() {
        // A window at least half full has interior gaps of at most 2 slots.
        for n in 4..=40usize {
            let slots = 2 * n;
            let positions: Vec<usize> = (0..n).map(|j| spread_position(j, n, slots)).collect();
            for pair in positions.windows(2) {
                assert!(pair[1] - pair[0] - 1 <= 2, "n = {n}");
            }
        }
    }
}
