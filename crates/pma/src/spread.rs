//! Even spreading of elements across a window of slots.
//!
//! Both PMAs place the elements of a leaf (or of a rebalance window) at
//! deterministic, evenly spaced slot positions. Determinism matters for
//! history independence: the layout of a leaf holding `n` elements in `L`
//! slots must be a function of `(n, L)` only (paper §3.1, base case of the
//! recursion), never of which element arrived when.

/// Slot index of the `j`-th of `n` elements spread evenly over `slots` slots
/// (`0 ≤ j < n ≤ slots`).
///
/// Uses the canonical `⌊j · slots / n⌋` spreading, which places the first
/// element at slot 0 and leaves gaps as evenly as possible. Consecutive
/// elements are at most `⌈slots / n⌉` slots apart, so a constant-factor-full
/// leaf has `O(1)` gaps between consecutive elements (Lemma 8).
#[inline]
pub fn spread_position(j: usize, n: usize, slots: usize) -> usize {
    debug_assert!(n > 0 && j < n && n <= slots);
    // u128 arithmetic avoids overflow for absurdly large arrays.
    ((j as u128 * slots as u128) / n as u128) as usize
}

/// Writes `elements` evenly into `slots[0..len]`, clearing every other slot.
/// Returns the number of element placements performed (each placement is one
/// "element move" in the paper's Figure 2 accounting).
pub fn spread_into<T: Clone>(elements: &[T], slots: &mut [Option<T>]) -> u64 {
    let n = elements.len();
    let len = slots.len();
    assert!(n <= len, "cannot pack {n} elements into {len} slots");
    for s in slots.iter_mut() {
        *s = None;
    }
    for (j, elem) in elements.iter().enumerate() {
        slots[spread_position(j, n, len)] = Some(elem.clone());
    }
    n as u64
}

/// Collects the occupied slots of a window, in slot order, into `out`.
pub fn gather_from<T: Clone>(slots: &[Option<T>], out: &mut Vec<T>) {
    for v in slots.iter().flatten() {
        out.push(v.clone());
    }
}

/// Counts the occupied slots of a window.
pub fn count_occupied<T>(slots: &[Option<T>]) -> usize {
    slots.iter().filter(|s| s.is_some()).count()
}

/// Largest run of consecutive empty slots *between two occupied slots* of the
/// window (leading and trailing gaps are not counted). Used by the Lemma 8
/// invariant checks.
pub fn max_interior_gap<T>(slots: &[Option<T>]) -> usize {
    let mut max_gap = 0usize;
    let mut current = 0usize;
    let mut seen_element = false;
    for slot in slots {
        match slot {
            Some(_) => {
                if seen_element {
                    max_gap = max_gap.max(current);
                }
                seen_element = true;
                current = 0;
            }
            None => current += 1,
        }
    }
    max_gap
}

/// Lazily yields the occupied elements of `slots[start_slot..]` in order,
/// charging each visited slot to `tracer` as the iterator advances — the
/// shared sequential-scan engine behind both PMAs' `iter_from`/`range_iter`
/// (one rank lookup up front, then `O(1 + k/B)` transfers for `k` consumed
/// elements). A `start_slot` past the end yields nothing.
pub(crate) fn scan_occupied_from<T>(
    slots: &[Option<T>],
    start_slot: usize,
    tracer: io_sim::Tracer,
    region: io_sim::Region,
) -> impl Iterator<Item = &T> {
    let start_slot = start_slot.min(slots.len());
    slots[start_slot..]
        .iter()
        .enumerate()
        .inspect(move |(off, _)| {
            tracer.read(region.addr((start_slot + off) as u64), region.span(1));
        })
        .filter_map(|(_, slot)| slot.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_monotone_and_in_bounds() {
        for n in 1..=30usize {
            for slots in n..=60usize {
                let mut prev = None;
                for j in 0..n {
                    let p = spread_position(j, n, slots);
                    assert!(p < slots);
                    if let Some(q) = prev {
                        assert!(p > q, "positions must be strictly increasing");
                    }
                    prev = Some(p);
                }
            }
        }
    }

    #[test]
    fn full_window_is_dense() {
        for n in 1..=20usize {
            let positions: Vec<usize> = (0..n).map(|j| spread_position(j, n, n)).collect();
            assert_eq!(positions, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn spread_into_places_all_elements_in_order() {
        let elements = vec![10, 20, 30, 40];
        let mut slots = vec![None; 10];
        let moves = spread_into(&elements, &mut slots);
        assert_eq!(moves, 4);
        let mut gathered = Vec::new();
        gather_from(&slots, &mut gathered);
        assert_eq!(gathered, elements);
        assert_eq!(count_occupied(&slots), 4);
    }

    #[test]
    fn spread_into_clears_stale_slots() {
        let mut slots = vec![Some(99); 8];
        spread_into(&[1, 2], &mut slots);
        assert_eq!(count_occupied(&slots), 2);
        let mut gathered = Vec::new();
        gather_from(&slots, &mut gathered);
        assert_eq!(gathered, vec![1, 2]);
    }

    #[test]
    fn spread_empty_clears_everything() {
        let mut slots = vec![Some(7); 5];
        let moves = spread_into::<i32>(&[], &mut slots);
        assert_eq!(moves, 0);
        assert_eq!(count_occupied(&slots), 0);
    }

    #[test]
    #[should_panic(expected = "cannot pack")]
    fn overfull_panics() {
        let mut slots = vec![None; 2];
        spread_into(&[1, 2, 3], &mut slots);
    }

    #[test]
    fn interior_gaps_are_bounded_for_half_full_windows() {
        // A window at least half full has interior gaps of at most 2 slots.
        for n in 4..=40usize {
            let slots_len = 2 * n;
            let elements: Vec<usize> = (0..n).collect();
            let mut slots = vec![None; slots_len];
            spread_into(&elements, &mut slots);
            assert!(max_interior_gap(&slots) <= 2, "n = {n}");
        }
    }

    #[test]
    fn max_interior_gap_examples() {
        let slots = vec![Some(1), None, None, Some(2), None, Some(3), None];
        assert_eq!(max_interior_gap(&slots), 2);
        let no_gap = vec![Some(1), Some(2)];
        assert_eq!(max_interior_gap(&no_gap), 0);
        let empty: Vec<Option<i32>> = vec![None; 4];
        assert_eq!(max_interior_gap(&empty), 0);
        let single = vec![None, Some(5), None];
        assert_eq!(max_interior_gap(&single), 0);
    }
}
