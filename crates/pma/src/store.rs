//! Flat slot storage: dense per-group values plus a packed occupancy bitmap.
//!
//! Both PMAs view their backing array as a sequence of fixed-width *groups*
//! of slots (the HI PMA's leaf ranges, the classic PMA's segments). The old
//! engine stored the array as `Vec<Option<T>>` — 16 bytes per slot for `u64`
//! records, a discriminant probe per slot scan, and a clone per element per
//! rebalance. [`SlotStore`] splits the representation:
//!
//! * **values** live dense, in rank order, in one `Vec<T>` per group whose
//!   capacity is fixed at the group's slot count (Lemma 7 guarantees a group
//!   never overflows), so gathers and spreads are `memmove`s of contiguous
//!   values and steady-state leaf updates are a single `Vec::insert`;
//! * the **virtual slot layout** — which slot of the group each element
//!   occupies, i.e. the memory representation that weak history independence
//!   is defined over — lives in a [`Bitmap`], maintained bit-identically to
//!   the old engine's `Option` occupancy (`⌊j·slots/n⌋` even spreading).
//!
//! Occupancy counts are popcounts, gap checks are word scans, and rebalances
//! *move* elements (drain/refill) instead of cloning them.

use hi_common::bitmap::Bitmap;
use io_sim::{Region, Tracer};

use crate::spread::for_each_spread_position;

/// Dense per-group value storage with a packed slot-occupancy bitmap.
#[derive(Debug, Clone)]
pub struct SlotStore<T> {
    groups: Vec<Vec<T>>,
    bitmap: Bitmap,
    group_slots: usize,
    /// Words per group-sized bit pattern (`⌈group_slots / 64⌉`).
    pattern_stride: usize,
    /// `patterns[n·stride .. (n+1)·stride]` is the even spread of `n`
    /// elements over one group's slots, as packed bits. A group's occupancy
    /// is a pure function of its element count, so a group rewrite is a
    /// table row blitted in with a couple of masked word stores instead of
    /// one read-modify-write per element.
    patterns: Vec<u64>,
}

impl<T> SlotStore<T> {
    /// Creates an empty store of `group_count` groups of `group_slots` slots
    /// each. Every group's capacity is reserved up front so steady-state
    /// updates never reallocate.
    pub fn new(group_count: usize, group_slots: usize) -> Self {
        assert!(group_count > 0 && group_slots > 0);
        let pattern_stride = group_slots.div_ceil(64);
        let mut patterns = vec![0u64; (group_slots + 1) * pattern_stride];
        for n in 0..=group_slots {
            let row = &mut patterns[n * pattern_stride..(n + 1) * pattern_stride];
            for_each_spread_position(n, group_slots, |p| row[p / 64] |= 1 << (p % 64));
        }
        Self {
            groups: (0..group_count)
                .map(|_| Vec::with_capacity(group_slots))
                .collect(),
            bitmap: Bitmap::new(group_count * group_slots),
            group_slots,
            pattern_stride,
            patterns,
        }
    }

    /// Total number of slots.
    pub fn total_slots(&self) -> usize {
        self.bitmap.len()
    }

    /// Slots per group.
    pub fn group_slots(&self) -> usize {
        self.group_slots
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The occupancy bitmap (the structure's layout fingerprint).
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// The dense elements of group `g`, in rank order.
    pub fn group(&self, g: usize) -> &[T] {
        &self.groups[g]
    }

    /// Number of elements in group `g`.
    pub fn group_len(&self, g: usize) -> usize {
        self.groups[g].len()
    }

    /// Total number of stored elements.
    pub fn element_count(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Borrows the element at dense index `idx` of group `g`.
    pub fn get(&self, g: usize, idx: usize) -> Option<&T> {
        self.groups.get(g)?.get(idx)
    }

    /// First slot of group `g`.
    #[inline]
    fn group_start(&self, g: usize) -> usize {
        g * self.group_slots
    }

    /// Rewrites the bitmap bits of group `g` to the even spread of `n`
    /// elements over its slots — the exact layout the old `spread_into`
    /// produced — as one masked store per word (the precomputed pattern
    /// row; an out-of-range `n` fails the row indexing).
    fn respread_bits(&mut self, g: usize, n: usize) {
        let start = self.group_start(g);
        self.bitmap.write_range_bits(
            start,
            self.group_slots,
            &self.patterns[n * self.pattern_stride..(n + 1) * self.pattern_stride],
        );
    }

    /// Inserts `item` at dense rank `rel` of group `g` and respreads the
    /// group's slot bits. Zero allocations (the group's capacity is fixed)
    /// and zero clones.
    pub fn insert_in_group(&mut self, g: usize, rel: usize, item: T) {
        debug_assert!(self.groups[g].len() < self.group_slots, "group overflow");
        self.groups[g].insert(rel, item);
        let n = self.groups[g].len();
        self.respread_bits(g, n);
    }

    /// Removes and returns the element at dense rank `rel` of group `g`,
    /// respreading the group's slot bits.
    pub fn remove_in_group(&mut self, g: usize, rel: usize) -> T {
        let item = self.groups[g].remove(rel);
        let n = self.groups[g].len();
        self.respread_bits(g, n);
        item
    }

    /// Moves every element of groups `[g0, g0 + window_groups)` into `out`
    /// (in rank order), clearing the groups and their bits.
    pub fn drain_window_into(&mut self, g0: usize, window_groups: usize, out: &mut Vec<T>) {
        let mut total = 0usize;
        for g in g0..g0 + window_groups {
            total += self.groups[g].len();
        }
        out.reserve(total + 1); // +1: callers usually insert one more element
        for g in g0..g0 + window_groups {
            out.append(&mut self.groups[g]);
        }
        let start = self.group_start(g0);
        self.bitmap
            .clear_range(start, start + window_groups * self.group_slots);
    }

    /// Fills groups `[g0, g0 + window_groups)` — which must be empty — with
    /// `count` elements taken from `iter`, evenly spread over the window's
    /// slots. Elements land in the group owning their spread position, so
    /// the dense storage and the bitmap describe the same layout.
    pub fn fill_window<I: Iterator<Item = T>>(
        &mut self,
        g0: usize,
        window_groups: usize,
        iter: &mut I,
        count: usize,
    ) {
        let slots = window_groups * self.group_slots;
        // Hard assert (as the old `spread_into` had): an overfull window in
        // release would silently repeat positions and overflow group
        // capacities instead of failing loudly.
        assert!(
            count <= slots,
            "cannot pack {count} elements into {slots} slots"
        );
        let start = self.group_start(g0);
        if window_groups == 1 {
            // Single-group fill (the HI PMA's per-leaf refills): move the
            // elements in one tight loop, blit the pattern row in one go.
            let group = &mut self.groups[g0];
            debug_assert!(group.is_empty());
            group.extend(iter.take(count));
            debug_assert_eq!(group.len(), count, "iterator shorter than promised count");
            self.bitmap.write_range_bits(
                start,
                self.group_slots,
                &self.patterns[count * self.pattern_stride..(count + 1) * self.pattern_stride],
            );
            return;
        }
        let groups = &mut self.groups;
        let bitmap = &mut self.bitmap;
        let group_slots = self.group_slots;
        for_each_spread_position(count, slots, |p| {
            let g = g0 + p / group_slots;
            debug_assert!(groups[g].len() < group_slots);
            // hi-lint: allow(panic-surface): for_each_spread_position yields exactly count positions, the iterator's promised length
            let item = iter.next().expect("iterator shorter than promised count");
            groups[g].push(item);
            bitmap.set(start + p);
        });
    }

    /// Fills group `g` — which must be empty — with `count` elements taken
    /// from `iter`, writing the group's slot bits from an explicit packed
    /// pattern (`⌈group_slots/64⌉` words, low bit = the group's first slot).
    ///
    /// Used by the classic PMA's group commit, where a segment's bits are a
    /// *slice* of its last rebalance window's even spread — not the
    /// single-group spread the pattern table holds.
    pub fn fill_group_with_bits<I: Iterator<Item = T>>(
        &mut self,
        g: usize,
        iter: &mut I,
        count: usize,
        bits: &[u64],
    ) {
        debug_assert!(self.groups[g].is_empty(), "group must be drained first");
        debug_assert!(count <= self.group_slots);
        let group = &mut self.groups[g];
        group.extend(iter.take(count));
        debug_assert_eq!(group.len(), count, "iterator shorter than promised count");
        debug_assert_eq!(
            bits.iter().map(|w| w.count_ones() as usize).sum::<usize>(),
            count,
            "bit pattern popcount disagrees with element count"
        );
        let start = self.group_start(g);
        self.bitmap.write_range_bits(start, self.group_slots, bits);
    }

    /// Lazily yields the elements from dense position `(g, idx)` onward, in
    /// rank order. Each group is charged to `tracer` as one sequential read
    /// of its slot span when the iterator enters it (per-window batching —
    /// the old engine charged per slot).
    pub fn iter_from(
        &self,
        g: usize,
        idx: usize,
        tracer: Tracer,
        region: Region,
    ) -> ScanIter<'_, T> {
        ScanIter {
            store: self,
            group: g,
            idx,
            entered: false,
            tracer,
            region,
        }
    }
}

/// Sequential scan over a [`SlotStore`] from a dense position, charging each
/// visited group to the tracer as one read.
pub struct ScanIter<'a, T> {
    store: &'a SlotStore<T>,
    group: usize,
    idx: usize,
    entered: bool,
    tracer: Tracer,
    region: Region,
}

impl<'a, T> ScanIter<'a, T> {
    fn charge_group(&self, g: usize) {
        if self.tracer.is_enabled() {
            let slots = self.store.group_slots as u64;
            self.tracer
                .read(self.region.addr(g as u64 * slots), self.region.span(slots));
        }
    }
}

impl<'a, T> Iterator for ScanIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        loop {
            if self.group >= self.store.group_count() {
                return None;
            }
            if !self.entered {
                self.charge_group(self.group);
                self.entered = true;
            }
            if let Some(item) = self.store.groups[self.group].get(self.idx) {
                self.idx += 1;
                return Some(item);
            }
            self.group += 1;
            self.idx = 0;
            self.entered = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(groups: &[&[u64]], group_slots: usize) -> SlotStore<u64> {
        let mut s: SlotStore<u64> = SlotStore::new(groups.len(), group_slots);
        for (g, elems) in groups.iter().enumerate() {
            let mut iter = elems.iter().copied();
            s.fill_window(g, 1, &mut iter, elems.len());
        }
        s
    }

    #[test]
    fn fill_and_bits_match_even_spread() {
        let s = store_with(&[&[10, 20], &[30, 40, 50]], 6);
        assert_eq!(s.total_slots(), 12);
        assert_eq!(s.element_count(), 5);
        // Group 0: 2 elements over 6 slots -> slots 0 and 3.
        // Group 1: 3 elements over 6 slots -> slots 6, 8, 10.
        let occupied: Vec<usize> = (0..12).filter(|&i| s.bitmap().get(i)).collect();
        assert_eq!(occupied, vec![0, 3, 6, 8, 10]);
        assert_eq!(s.group(0), &[10, 20]);
        assert_eq!(s.group(1), &[30, 40, 50]);
    }

    #[test]
    fn insert_and_remove_respread() {
        let mut s = store_with(&[&[10, 30]], 8);
        s.insert_in_group(0, 1, 20);
        assert_eq!(s.group(0), &[10, 20, 30]);
        // 3 elements over 8 slots -> 0, 2, 5.
        let occupied: Vec<usize> = (0..8).filter(|&i| s.bitmap().get(i)).collect();
        assert_eq!(occupied, vec![0, 2, 5]);
        assert_eq!(s.remove_in_group(0, 0), 10);
        assert_eq!(s.group(0), &[20, 30]);
        assert_eq!(s.bitmap().count_ones(), 2);
    }

    #[test]
    fn drain_then_refill_moves_everything() {
        let mut s = store_with(&[&[1, 2], &[3], &[4, 5, 6]], 4);
        let mut out = Vec::new();
        s.drain_window_into(0, 3, &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(s.element_count(), 0);
        assert_eq!(s.bitmap().count_ones(), 0);
        // Refill as one 3-group window: 6 elements over 12 slots.
        let mut iter = out.into_iter();
        s.fill_window(0, 3, &mut iter, 6);
        assert_eq!(s.element_count(), 6);
        let gathered: Vec<u64> = s
            .iter_from(0, 0, Tracer::disabled(), Region::new(0, 8, 12))
            .copied()
            .collect();
        assert_eq!(gathered, vec![1, 2, 3, 4, 5, 6]);
        // Window spread: positions 0, 2, 4, 6, 8, 10 -> groups get 2 each.
        assert_eq!(s.group_len(0), 2);
        assert_eq!(s.group_len(1), 2);
        assert_eq!(s.group_len(2), 2);
    }

    #[test]
    #[should_panic(expected = "cannot pack")]
    fn overfull_window_panics() {
        let mut s: SlotStore<u64> = SlotStore::new(2, 4);
        let mut iter = 0..9u64;
        s.fill_window(0, 2, &mut iter, 9);
    }

    #[test]
    fn scan_iter_crosses_empty_groups() {
        let s = store_with(&[&[], &[7], &[], &[8, 9]], 4);
        let all: Vec<u64> = s
            .iter_from(0, 0, Tracer::disabled(), Region::new(0, 8, 16))
            .copied()
            .collect();
        assert_eq!(all, vec![7, 8, 9]);
        let tail: Vec<u64> = s
            .iter_from(3, 1, Tracer::disabled(), Region::new(0, 8, 16))
            .copied()
            .collect();
        assert_eq!(tail, vec![9]);
        let none: Vec<u64> = s
            .iter_from(4, 0, Tracer::disabled(), Region::new(0, 8, 16))
            .copied()
            .collect();
        assert_eq!(none, Vec::<u64>::new());
    }

    #[test]
    fn scan_iter_charges_per_group_not_per_slot() {
        use io_sim::IoConfig;
        let s = store_with(&[&[1, 2, 3], &[4, 5, 6]], 256);
        let tracer = Tracer::enabled(IoConfig::new(4096, 1 << 10));
        let region = Region::new(0, 16, 512);
        let n = s.iter_from(0, 0, tracer.clone(), region).count();
        assert_eq!(n, 6);
        // Each group spans exactly one 4 KiB block (256 slots x 16 bytes):
        // one read per group entered, not one per slot visited.
        assert_eq!(tracer.stats().reads, 2);
    }
}
