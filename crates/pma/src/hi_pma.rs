//! The weakly history-independent packed-memory array (paper §3–§4).
//!
//! # How the structure works
//!
//! The PMA stores `N` elements in user-specified (rank) order in an array of
//! `N_S = Θ(N)` slots. The array is viewed as a complete binary tree of
//! *ranges*: the root is the whole array, every node splits its slots in half
//! and the leaves are ranges of `Θ(log N̂)` slots.
//!
//! History independence comes from three ingredients:
//!
//! 1. **Size**: the capacity parameter `N̂` is kept uniform over
//!    `{N, …, 2N−1}` by the WHI dynamic-array rule ([`hi_common::HiCapacity`]).
//!    Every change of `N̂` rebuilds the whole structure.
//! 2. **Splits**: every non-leaf range `R` has a *balance element* `b_R` —
//!    the first element of its right child — chosen uniformly at random from
//!    the range's *candidate set* `M_R` (the `|M_d|` middle elements of `R`).
//!    The balance elements are kept uniform by reservoir sampling with
//!    deletes (Invariant 6): a newcomer to `M_R` takes over with probability
//!    `1/|M_R|`; if the balance leaves `M_R`, a fresh balance is drawn
//!    uniformly. Whenever the balance of `R` changes, `R` and all its
//!    descendant ranges are rebuilt from scratch.
//! 3. **Leaves**: the elements of a leaf are spread evenly over its slots, a
//!    deterministic function of the leaf's element count.
//!
//! Consequently the entire memory representation is a function of `(N, N̂,
//! balance choices)` — none of which depend on the operation history — which
//! is the content of Lemma 9.
//!
//! Element counts per range are kept in the **rank tree**, a complete binary
//! tree in the van Emde Boas layout ([`veb_tree::VebTree`]), so finding the
//! leaf containing a given rank costs `O(log N)` operations and `O(log_B N)`
//! I/Os.
//!
//! # Storage engine
//!
//! The backing array is a [`SlotStore`]: element values live **dense, in
//! rank order, one `Vec<T>` per leaf range** (capacity fixed at the leaf's
//! slot count), and the slot-occupancy layout — the memory representation
//! that weak history independence quantifies over — is a packed `u64`
//! [`hi_common::Bitmap`] maintained bit-identically to the historical
//! `Vec<Option<T>>` engine. A steady-state leaf update is therefore one
//! `Vec::insert`/`remove` plus a rewrite of the leaf's bitmap words — **zero
//! heap allocations and zero `Clone` calls** — and rebalances gather into a
//! reusable [`Scratch`] arena and *move* elements back into the leaves.
//! This is pure representation engineering: the occupancy distribution, the
//! coins drawn, and therefore the WHI guarantee are unchanged (the
//! representation function of Lemma 9 is computed, not sampled).

use hi_common::batch::SeekFinger;
use hi_common::capacity::{CapacityEvent, HiCapacity};
use hi_common::counters::SharedCounters;
use hi_common::rng::{DetRng, RngSource};
use hi_common::scratch::Scratch;
use hi_common::traits::{Occupancy, RankError, RankedSequence};
use io_sim::{Region, Tracer};
use rand::Rng;
use veb_tree::navigation::{children, leaf_index};
use veb_tree::VebTree;

use crate::batch::BatchState;
use crate::geometry::Geometry;
use crate::spread::spread_position;
use crate::store::{ScanIter, SlotStore};

/// Diagnostic record describing one range's balance element, used by the
/// χ²-uniformity experiment (paper §4.3) and the statistical tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalanceRecord {
    /// BFS index of the range in the range tree.
    pub range: usize,
    /// Depth of the range (root = 0).
    pub depth: u32,
    /// Number of elements currently in the range.
    pub len: usize,
    /// Effective candidate-set size (`min(|M_d|, len)`).
    pub window: usize,
    /// Position of the balance element within the candidate window
    /// (`0 ≤ offset < window`).
    pub offset: usize,
}

/// Elements of the half-open interval `a` that are not in the half-open
/// interval `b` — at most two contiguous pieces, yielded in increasing order.
/// Used by the reservoir decisions to enumerate the (at most a couple of)
/// elements that enter a candidate window when it slides.
fn interval_difference(a: (usize, usize), b: (usize, usize)) -> impl Iterator<Item = usize> {
    let left = a.0..a.1.min(b.0.max(a.0));
    let right = a.0.max(b.1.min(a.1))..a.1;
    left.chain(right)
}

/// Outcome of the per-range reservoir decision during a descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    /// Keep descending; no rebuild at this range.
    Descend,
    /// Rebuild this range. `forced` carries the relative rank (in the range's
    /// *new* element ordering) that must become the balance element (lottery
    /// winner), or `None` to draw uniformly (out-of-bounds / deleted balance).
    Rebuild { forced: Option<usize> },
}

/// The weakly history-independent packed-memory array.
///
/// Implements [`RankedSequence`]: elements are addressed by rank, exactly as
/// in the paper's `Insert(i, x)` / `Delete(i)` / `Query(i, j)` API. Ordering
/// by key is the responsibility of the caller (or of the
/// [cache-oblivious B-tree](https://docs.rs/cob-btree) built on top).
#[derive(Debug, Clone)]
pub struct HiPma<T: Clone> {
    store: SlotStore<T>,
    rank_tree: VebTree<u64>,
    /// For every non-leaf range, a copy of its balance element (the paper's
    /// §5 "tree storing the values of each balance element"), maintained
    /// under exactly the same rebuild events as the rank tree. This is what
    /// turns the PMA into an augmented PMA / cache-oblivious B-tree: keyed
    /// searches descend this tree in `O(log_B N)` I/Os.
    value_tree: VebTree<Option<T>>,
    geometry: Geometry,
    capacity: HiCapacity,
    rng: DetRng,
    counters: SharedCounters,
    tracer: Tracer,
    array_region: Region,
    elem_size: u64,
    /// Reusable gather buffer for the rebuild paths; capacity persists
    /// across rebalances so steady-state rebuilds allocate nothing.
    scratch: Scratch<T>,
    /// Deferred-splice state for the group-commit batch path (see
    /// [`HiPma::batch_begin`]). Empty and inert outside a batch.
    batch: BatchState<T>,
    /// Roots of the range subtrees whose balances were re-planned during
    /// the current batch replay: `(range, depth, first leaf)`. Their value
    /// (balance copy) subtrees are recomputed once, at commit, from the
    /// final element arrangement.
    batch_roots: Vec<(u32, u32, u32)>,
}

impl<T: Clone> HiPma<T> {
    /// Creates an empty PMA seeded from `seed` (the structure's secret coins).
    pub fn new(seed: u64) -> Self {
        Self::with_parts(
            RngSource::from_seed(seed),
            SharedCounters::new(),
            Tracer::disabled(),
            16,
        )
    }

    /// Creates an empty PMA drawing its coins from OS entropy.
    pub fn from_entropy() -> Self {
        Self::with_parts(
            // hi-lint: allow(entropy): forwards to the audited RngSource intake; production PMAs need a seed the observer cannot know
            RngSource::from_entropy(),
            SharedCounters::new(),
            Tracer::disabled(),
            16,
        )
    }

    /// Creates an empty PMA with explicit randomness, counter ledger, I/O
    /// tracer and per-element on-disk size in bytes.
    pub fn with_parts(
        mut rng: RngSource,
        counters: SharedCounters,
        tracer: Tracer,
        elem_size: u64,
    ) -> Self {
        assert!(elem_size > 0, "element size must be positive");
        let geometry = Geometry::for_n_hat(1);
        let rank_tree = VebTree::new(
            geometry.levels(),
            Self::rank_tree_base(&geometry, elem_size),
            8,
            tracer.clone(),
        );
        let value_tree = VebTree::new(
            geometry.levels(),
            Self::value_tree_base(&geometry, elem_size),
            elem_size,
            tracer.clone(),
        );
        let array_region = Region::new(0, elem_size, geometry.total_slots as u64);
        Self {
            store: SlotStore::new(geometry.leaf_count(), geometry.leaf_slots),
            rank_tree,
            value_tree,
            geometry,
            capacity: HiCapacity::new(),
            rng: rng.split("hi-pma"),
            counters,
            tracer,
            array_region,
            elem_size,
            scratch: Scratch::new(),
            batch: BatchState::default(),
            batch_roots: Vec::new(),
        }
    }

    fn rank_tree_base(geometry: &Geometry, elem_size: u64) -> u64 {
        // The rank tree lives immediately after the slot array, aligned to a
        // 4 KiB boundary so the two never share a block at common block
        // sizes.
        let array_bytes = geometry.total_slots as u64 * elem_size;
        array_bytes.div_ceil(4096) * 4096
    }

    fn value_tree_base(geometry: &Geometry, elem_size: u64) -> u64 {
        // The value tree follows the rank tree (which holds 8-byte counts).
        let rank_bytes = geometry.range_count() as u64 * 8;
        let base = Self::rank_tree_base(geometry, elem_size) + rank_bytes;
        base.div_ceil(4096) * 4096
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.capacity.len()
    }

    /// Returns `true` when the PMA is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current capacity parameter `N̂`.
    pub fn n_hat(&self) -> usize {
        self.capacity.n_hat()
    }

    /// Total number of slots in the backing array (`N_S`).
    pub fn total_slots(&self) -> usize {
        self.geometry.total_slots
    }

    /// The geometry derived from the current `N̂`.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The shared operation counters.
    pub fn counters(&self) -> &SharedCounters {
        &self.counters
    }

    /// The I/O tracer handle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Occupancy bitmap of the backing array — the part of the memory
    /// representation that the weak-history-independence tests compare across
    /// histories (slot contents are determined by the element set once the
    /// occupancy is fixed). Decoded from the packed words; see the
    /// [`Occupancy`] impl for the allocation-free form.
    pub fn occupancy(&self) -> Vec<bool> {
        self.store.bitmap().to_bools()
    }

    /// Balance-element diagnostics for every non-leaf range, used by the
    /// §4.3 χ² experiment. Derived purely from the rank tree — no slot
    /// probing.
    pub fn balance_records(&self) -> Vec<BalanceRecord> {
        let mut records = Vec::new();
        if self.geometry.is_small() {
            return records;
        }
        let mut stack = vec![(0usize, 0u32)];
        while let Some((range, depth)) = stack.pop() {
            if depth >= self.geometry.height {
                continue;
            }
            let len = *self.rank_tree.peek(range) as usize;
            if len == 0 {
                continue;
            }
            let (left, right) = children(range);
            let l1 = *self.rank_tree.peek(left) as usize;
            let m = self.geometry.candidate_size(depth);
            let (w, m_eff) = Geometry::candidate_window(len, m);
            if m_eff > 0 && l1 >= w && l1 < w + m_eff {
                records.push(BalanceRecord {
                    range,
                    depth,
                    len,
                    window: m_eff,
                    offset: l1 - w,
                });
            }
            stack.push((left, depth + 1));
            stack.push((right, depth + 1));
        }
        records
    }

    /// Verifies the structural invariants the analysis relies on. Panics with
    /// a description of the violated invariant. Intended for tests; cost is
    /// `Θ(N_S)`.
    pub fn check_invariants(&self) {
        // Root count equals the logical length.
        assert_eq!(
            *self.rank_tree.peek(0) as usize,
            self.len(),
            "root count disagrees with len()"
        );
        // Occupied slots equal the logical length, by popcount…
        assert_eq!(
            self.store.bitmap().count_ones(),
            self.len(),
            "occupied slots disagree with len()"
        );
        // …and the dense storage holds exactly as many values as the bitmap
        // claims, leaf by leaf.
        for leaf in 0..self.geometry.leaf_count() {
            let start = self.geometry.leaf_start(leaf);
            assert_eq!(
                self.store.group_len(leaf),
                self.store
                    .bitmap()
                    .count_range(start, start + self.geometry.leaf_slots),
                "leaf {leaf}: dense values and bitmap disagree"
            );
        }
        if self.is_empty() {
            return;
        }
        // Capacity invariant.
        assert!(
            self.n_hat() >= self.len() && self.n_hat() < 2 * self.len(),
            "N̂ = {} outside {{N..2N-1}} for N = {}",
            self.n_hat(),
            self.len()
        );
        self.check_range(0, 0, 0);
    }

    fn check_range(&self, range: usize, depth: u32, slot_start: usize) {
        let slots = self.geometry.slots_at_depth(depth);
        let len = *self.rank_tree.peek(range) as usize;
        // Lemma 7: a range never holds more elements than it has slots.
        assert!(
            len <= slots,
            "range {range} at depth {depth} holds {len} elements in {slots} slots"
        );
        let occupied = self
            .store
            .bitmap()
            .count_range(slot_start, slot_start + slots);
        assert_eq!(
            occupied, len,
            "range {range}: rank tree says {len}, slots say {occupied}"
        );
        if depth == self.geometry.height {
            // Leaf: evenly spread, so interior gaps are bounded by the
            // slots-per-element ratio.
            if len >= 2 {
                let gap = self
                    .store
                    .bitmap()
                    .max_interior_gap(slot_start, slot_start + slots);
                assert!(
                    gap <= slots / len + 1,
                    "leaf {range}: gap {gap} too large for {len} elements in {slots} slots"
                );
            }
            return;
        }
        let (left, right) = children(range);
        let l1 = *self.rank_tree.peek(left) as usize;
        let l2 = *self.rank_tree.peek(right) as usize;
        assert_eq!(l1 + l2, len, "range {range}: children counts don't add up");
        // Invariant 6 precondition: the balance element lies in the window.
        if len > 0 {
            let m = self.geometry.candidate_size(depth);
            let (w, m_eff) = Geometry::candidate_window(len, m);
            assert!(
                m_eff == 0 || (l1 >= w && l1 < w + m_eff),
                "range {range}: balance rank {l1} outside window [{w}, {})",
                w + m_eff
            );
        }
        self.check_range(left, depth + 1, slot_start);
        self.check_range(right, depth + 1, slot_start + slots / 2);
    }

    // ------------------------------------------------------------------
    // Rebuild machinery
    // ------------------------------------------------------------------

    /// Moves every element, in rank order, into the scratch buffer (charging
    /// a sequential scan). The leaves are left empty; the caller must refill
    /// them (or replace the store) before the next operation.
    fn gather_all(&mut self) -> Vec<T> {
        self.tracer
            .read(self.array_region.base, self.array_region.byte_len());
        let mut buf = self.scratch.take();
        self.store
            .drain_window_into(0, self.geometry.leaf_count(), &mut buf);
        buf
    }

    /// Moves the elements of the range starting at `slot_start` spanning
    /// `slot_count` slots into the scratch buffer.
    fn gather_range(&mut self, slot_start: usize, slot_count: usize) -> Vec<T> {
        self.tracer.read(
            self.array_region.addr(slot_start as u64),
            self.array_region.span(slot_count as u64),
        );
        let g0 = self.geometry.leaf_of_slot(slot_start);
        let window = slot_count / self.geometry.leaf_slots;
        let mut buf = self.scratch.take();
        self.store.drain_window_into(g0, window, &mut buf);
        buf
    }

    /// Rebuilds the entire structure for the current `N̂`, placing `buf`.
    /// Consumes the buffer back into the scratch arena.
    fn rebuild_everything(&mut self, mut buf: Vec<T>) {
        let n_hat = self.capacity.n_hat().max(1);
        self.geometry = Geometry::for_n_hat(n_hat);
        self.store = SlotStore::new(self.geometry.leaf_count(), self.geometry.leaf_slots);
        self.array_region = Region::new(0, self.elem_size, self.geometry.total_slots as u64);
        self.rank_tree = VebTree::new(
            self.geometry.levels(),
            Self::rank_tree_base(&self.geometry, self.elem_size),
            8,
            self.tracer.clone(),
        );
        self.value_tree = VebTree::new(
            self.geometry.levels(),
            Self::value_tree_base(&self.geometry, self.elem_size),
            self.elem_size,
            self.tracer.clone(),
        );
        self.counters.add_rebuild(self.geometry.total_slots as u64);
        self.plan_range(0, 0, 0, &buf, None);
        self.refill_leaves(0, self.geometry.leaf_count(), &mut buf);
        self.scratch.restore(buf);
    }

    /// Rebuilds range `range` (BFS index) at `depth`, whose slots start at
    /// `slot_start`, so that it contains exactly the elements of `buf`.
    /// Phase 1 ([`Self::plan_range`]) draws the balance coins and updates
    /// the trees in exactly the old engine's order; phase 2
    /// ([`Self::refill_leaves`]) moves the elements back into the leaves.
    fn rebuild_range(
        &mut self,
        range: usize,
        depth: u32,
        slot_start: usize,
        mut buf: Vec<T>,
        forced_balance: Option<usize>,
    ) {
        self.plan_range(range, depth, slot_start, &buf, forced_balance);
        let g0 = self.geometry.leaf_of_slot(slot_start);
        let window = self.geometry.slots_at_depth(depth) / self.geometry.leaf_slots;
        self.refill_leaves(g0, window, &mut buf);
        self.scratch.restore(buf);
    }

    /// Phase 1 of a rebuild: descends the range tree, drawing each range's
    /// balance element (reservoir-forced or uniform) and writing the rank
    /// and value trees — the same coin order as an element-placing rebuild,
    /// so layouts stay bit-identical to the historical engine. Leaf visits
    /// charge the element moves and the sequential leaf write.
    ///
    /// `forced_balance` pins the relative rank of the balance element of
    /// *this* range (a reservoir lottery winner); descendant ranges always
    /// draw their balances uniformly from their candidate windows.
    fn plan_range(
        &mut self,
        range: usize,
        depth: u32,
        slot_start: usize,
        elements: &[T],
        forced_balance: Option<usize>,
    ) {
        let slot_count = self.geometry.slots_at_depth(depth);
        debug_assert!(
            elements.len() <= slot_count,
            "range overflow: {} elements into {} slots",
            elements.len(),
            slot_count
        );
        self.rank_tree.set(range, elements.len() as u64);
        if depth == self.geometry.height {
            self.counters.add_moves(elements.len() as u64);
            self.tracer.write(
                self.array_region.addr(slot_start as u64),
                self.array_region.span(slot_count as u64),
            );
            return;
        }
        let len = elements.len();
        let m = self.geometry.candidate_size(depth);
        let (w, m_eff) = Geometry::candidate_window(len, m);
        let balance = if len == 0 {
            0
        } else {
            match forced_balance {
                Some(b) => {
                    debug_assert!(b >= w && b < w + m_eff, "forced balance outside window");
                    b
                }
                None => w + self.rng.gen_range(0..m_eff.max(1)),
            }
        };
        self.value_tree.set(range, elements.get(balance).cloned());
        let (left, right) = children(range);
        self.plan_range(left, depth + 1, slot_start, &elements[..balance], None);
        self.plan_range(
            right,
            depth + 1,
            slot_start + slot_count / 2,
            &elements[balance..],
            None,
        );
    }

    /// Phase 2 of a rebuild: drains `buf` left to right, refilling leaves
    /// `[first_leaf, first_leaf + leaf_window)` with the per-leaf counts
    /// phase 1 recorded in the rank tree. Every element is *moved*.
    fn refill_leaves(&mut self, first_leaf: usize, leaf_window: usize, buf: &mut Vec<T>) {
        let levels = self.geometry.levels();
        let mut iter = buf.drain(..);
        for leaf in first_leaf..first_leaf + leaf_window {
            let count = *self.rank_tree.peek(leaf_index(levels, leaf)) as usize;
            self.store.fill_window(leaf, 1, &mut iter, count);
        }
        debug_assert!(iter.next().is_none(), "rebuild left elements unplaced");
    }

    // ------------------------------------------------------------------
    // Reservoir decisions
    // ------------------------------------------------------------------

    /// Reservoir decision at a non-leaf range for an insert at relative rank
    /// `r` (in the *new* ordering), where the balance currently sits at
    /// relative rank `l1` (old ordering) and the range held `len` elements.
    ///
    /// The candidate window holds `Θ(N̂ / (2^d log N̂))` elements, so the
    /// decision must not iterate over it. Because the window slides by at
    /// most one position per update, at most a couple of elements enter the
    /// window; they are identified with O(1) interval arithmetic and each is
    /// offered the leadership with probability `1/|window|` (reservoir step).
    fn decide_insert(&mut self, r: usize, l1: usize, len: usize, m: usize) -> Decision {
        let (w_old, m_old) = Geometry::candidate_window(len, m);
        let (w_new, m_new) = Geometry::candidate_window(len + 1, m);
        debug_assert!(m_new >= 1);
        // New rank of the old balance element.
        let balance_new_rank = if r <= l1 { l1 + 1 } else { l1 };
        if len == 0 || balance_new_rank < w_new || balance_new_rank >= w_new + m_new {
            // Out-of-bounds rebuild: the balance slid out of the candidate
            // set (or the range was empty); a fresh balance is drawn
            // uniformly from the new window.
            return Decision::Rebuild { forced: None };
        }
        // Old-ranks of the *old* elements that lie in the new window. The new
        // window is [w_new, w_new + m_new) in new-rank space; an old element
        // at old-rank q has new-rank q (if q < r) or q + 1 (if q ≥ r).
        let covered = if r < w_new {
            // All window positions are past the insertion point.
            (w_new - 1, w_new + m_new - 1)
        } else if r >= w_new + m_new {
            (w_new, w_new + m_new)
        } else {
            // The new element occupies one window position.
            (w_new, w_new + m_new - 1)
        };
        let mut winner: Option<usize> = None;
        // Old elements newly covered by the window: `covered` minus the old
        // window [w_old, w_old + m_old).
        for q in interval_difference(covered, (w_old, w_old + m_old)) {
            let new_rank = if q < r { q } else { q + 1 };
            if self.rng.gen_range(0..m_new) == 0 {
                winner = Some(new_rank);
            }
        }
        // The inserted element itself, if it landed inside the window.
        if r >= w_new && r < w_new + m_new && self.rng.gen_range(0..m_new) == 0 {
            winner = Some(r);
        }
        match winner {
            Some(p) => Decision::Rebuild { forced: Some(p) },
            None => Decision::Descend,
        }
    }

    /// Reservoir decision at a non-leaf range for a delete of the element at
    /// relative rank `r` (old ordering). See [`HiPma::decide_insert`] for the
    /// structure of the computation.
    fn decide_delete(&mut self, r: usize, l1: usize, len: usize, m: usize) -> Decision {
        debug_assert!(len >= 1 && r < len);
        if r == l1 {
            // The balance element itself is deleted: draw a fresh one
            // uniformly (lottery rebuild in the paper's terminology).
            return Decision::Rebuild { forced: None };
        }
        let (w_old, m_old) = Geometry::candidate_window(len, m);
        let (w_new, m_new) = Geometry::candidate_window(len - 1, m);
        if m_new == 0 {
            return Decision::Rebuild { forced: None };
        }
        let balance_new_rank = if r < l1 { l1 - 1 } else { l1 };
        if balance_new_rank < w_new || balance_new_rank >= w_new + m_new {
            return Decision::Rebuild { forced: None };
        }
        // Old-ranks covered by the new window: new-rank p maps to old-rank p
        // (p < r) or p + 1 (p ≥ r), so the covered old-ranks form up to two
        // contiguous pieces around the deleted rank.
        let first = (w_new, (w_new + m_new).min(r));
        let second = ((w_new + 1).max(r + 1), w_new + m_new + 1);
        let mut winner: Option<usize> = None;
        for piece in [first, second] {
            if piece.0 >= piece.1 {
                continue;
            }
            for q in interval_difference(piece, (w_old, w_old + m_old)) {
                debug_assert_ne!(q, r);
                let new_rank = if q < r { q } else { q - 1 };
                if self.rng.gen_range(0..m_new) == 0 {
                    winner = Some(new_rank);
                }
            }
        }
        match winner {
            Some(p) => Decision::Rebuild { forced: Some(p) },
            None => Decision::Descend,
        }
    }

    // ------------------------------------------------------------------
    // Leaf operations
    // ------------------------------------------------------------------

    /// Steady-state leaf insert: one dense `Vec::insert` plus a rewrite of
    /// the leaf's bitmap words. No allocation, no clone, no gather buffer.
    fn leaf_insert(&mut self, slot_start: usize, rel_rank: usize, item: T) {
        let slot_count = self.geometry.leaf_slots;
        self.tracer.read(
            self.array_region.addr(slot_start as u64),
            self.array_region.span(slot_count as u64),
        );
        let leaf = self.geometry.leaf_of_slot(slot_start);
        let n = self.store.group_len(leaf);
        debug_assert!(rel_rank <= n, "leaf rank out of bounds");
        debug_assert!(n < slot_count, "leaf overflow: Lemma 7 violated");
        self.store.insert_in_group(leaf, rel_rank.min(n), item);
        self.counters.add_moves(n as u64 + 1);
        self.tracer.write(
            self.array_region.addr(slot_start as u64),
            self.array_region.span(slot_count as u64),
        );
    }

    /// Steady-state leaf delete: the mirror of [`Self::leaf_insert`].
    fn leaf_delete(&mut self, slot_start: usize, rel_rank: usize) -> T {
        let slot_count = self.geometry.leaf_slots;
        self.tracer.read(
            self.array_region.addr(slot_start as u64),
            self.array_region.span(slot_count as u64),
        );
        let leaf = self.geometry.leaf_of_slot(slot_start);
        let n = self.store.group_len(leaf);
        debug_assert!(rel_rank < n, "leaf rank out of bounds");
        let removed = self.store.remove_in_group(leaf, rel_rank);
        self.counters.add_moves(n as u64 - 1);
        self.tracer.write(
            self.array_region.addr(slot_start as u64),
            self.array_region.span(slot_count as u64),
        );
        removed
    }

    // ------------------------------------------------------------------
    // Public operations
    // ------------------------------------------------------------------

    /// Inserts `item` as the `rank`-th element. See [`RankedSequence::insert_at`].
    pub fn insert(&mut self, rank: usize, item: T) -> Result<(), RankError> {
        if rank > self.len() {
            return Err(RankError {
                rank,
                len: self.len(),
            });
        }
        self.counters.add_insert();
        let event = self.capacity.on_insert(&mut self.rng);
        if let CapacityEvent::Rebuild { .. } = event {
            let mut buf = self.gather_all();
            buf.insert(rank, item);
            self.counters.add_resize();
            self.rebuild_everything(buf);
            return Ok(());
        }
        // Descend the range tree. Only the root count and each level's left
        // child are read from the rank tree: a child's own count is derived
        // from its parent's (`l1` going left, `len − l1` going right),
        // halving the vEB accesses per level.
        let mut range = 0usize;
        let mut depth = 0u32;
        let mut slot_start = 0usize;
        let mut rel_rank = rank;
        let mut len_before = *self.rank_tree.get(0) as usize;
        loop {
            if depth == self.geometry.height {
                self.rank_tree.set(range, (len_before + 1) as u64);
                self.leaf_insert(slot_start, rel_rank, item);
                return Ok(());
            }
            let (left, _right) = children(range);
            let l1 = *self.rank_tree.get(left) as usize;
            let m = self.geometry.candidate_size(depth);
            let decision = self.decide_insert(rel_rank, l1, len_before, m);
            self.rank_tree.set(range, (len_before + 1) as u64);
            match decision {
                Decision::Rebuild { forced } => {
                    let slot_count = self.geometry.slots_at_depth(depth);
                    let mut buf = self.gather_range(slot_start, slot_count);
                    buf.insert(rel_rank, item);
                    self.counters.add_rebuild(slot_count as u64);
                    self.rebuild_range(range, depth, slot_start, buf, forced);
                    return Ok(());
                }
                Decision::Descend => {
                    let half = self.geometry.slots_at_depth(depth) / 2;
                    if rel_rank <= l1 {
                        range = left;
                        len_before = l1;
                    } else {
                        range = 2 * range + 2;
                        slot_start += half;
                        rel_rank -= l1;
                        len_before -= l1;
                    }
                    depth += 1;
                }
            }
        }
    }

    /// Deletes and returns the `rank`-th element. See [`RankedSequence::delete_at`].
    pub fn delete(&mut self, rank: usize) -> Result<T, RankError> {
        if rank >= self.len() {
            return Err(RankError {
                rank,
                len: self.len(),
            });
        }
        self.counters.add_delete();
        let event = self.capacity.on_delete(&mut self.rng);
        if let CapacityEvent::Rebuild { .. } = event {
            let mut buf = self.gather_all();
            let removed = buf.remove(rank);
            self.counters.add_resize();
            if self.capacity.is_empty() {
                self.scratch.restore(buf);
                self.reset_empty();
            } else {
                self.rebuild_everything(buf);
            }
            return Ok(removed);
        }
        let mut range = 0usize;
        let mut depth = 0u32;
        let mut slot_start = 0usize;
        let mut rel_rank = rank;
        let mut len_before = *self.rank_tree.get(0) as usize;
        loop {
            if depth == self.geometry.height {
                self.rank_tree.set(range, (len_before - 1) as u64);
                return Ok(self.leaf_delete(slot_start, rel_rank));
            }
            let (left, _right) = children(range);
            let l1 = *self.rank_tree.get(left) as usize;
            let m = self.geometry.candidate_size(depth);
            let decision = self.decide_delete(rel_rank, l1, len_before, m);
            self.rank_tree.set(range, (len_before - 1) as u64);
            match decision {
                Decision::Rebuild { forced } => {
                    let slot_count = self.geometry.slots_at_depth(depth);
                    let mut buf = self.gather_range(slot_start, slot_count);
                    let removed = buf.remove(rel_rank);
                    self.counters.add_rebuild(slot_count as u64);
                    self.rebuild_range(range, depth, slot_start, buf, forced);
                    return Ok(removed);
                }
                Decision::Descend => {
                    let half = self.geometry.slots_at_depth(depth) / 2;
                    if rel_rank < l1 {
                        range = left;
                        len_before = l1;
                    } else {
                        range = 2 * range + 2;
                        slot_start += half;
                        rel_rank -= l1;
                        len_before -= l1;
                    }
                    depth += 1;
                }
            }
        }
    }

    /// Returns the `rank`-th element, if any.
    pub fn get_rank(&self, rank: usize) -> Option<T> {
        self.get_rank_ref(rank).cloned()
    }

    /// Borrows the `rank`-th element, if any, without copying it.
    pub fn get_rank_ref(&self, rank: usize) -> Option<&T> {
        if rank >= self.len() {
            return None;
        }
        let (leaf, idx) = self.locate(rank);
        self.store.get(leaf, idx)
    }

    /// Lazily yields the elements with ranks `rank..len` in order, without
    /// allocating: one rank-tree descent to find the starting leaf, then a
    /// sequential scan of the dense leaves (`O(1 + k/B)` I/Os for `k`
    /// consumed elements, charged to the tracer one leaf at a time as the
    /// iterator enters it).
    pub fn iter_from(&self, rank: usize) -> ScanIter<'_, T> {
        let (leaf, idx) = if rank >= self.len() {
            (self.geometry.leaf_count(), 0)
        } else {
            self.locate(rank)
        };
        self.store
            .iter_from(leaf, idx, self.tracer.clone(), self.array_region)
    }

    /// Borrows every element in rank order (a full sequential scan).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.iter_from(0)
    }

    /// The zero-copy form of the paper's `Query(i, j)`: lazily yields the
    /// `i`-th through `j`-th elements inclusive. Costs one descent plus a
    /// contiguous scan of `O(1 + k/B)` blocks for `k = j − i + 1` elements.
    ///
    /// Uniform error contract: `i > j` is an empty range (`Ok`); `j ≥ len`
    /// (with `i ≤ j`) is a [`RankError`].
    pub fn range_iter(&self, i: usize, j: usize) -> Result<impl Iterator<Item = &T>, RankError> {
        if i > j {
            return Ok(self.iter_from(usize::MAX).take(0));
        }
        if j >= self.len() {
            return Err(RankError {
                rank: j,
                len: self.len(),
            });
        }
        self.counters.add_query();
        Ok(self.iter_from(i).take(j - i + 1))
    }

    /// The paper's `Query(i, j)` with an owned result: clones the `i`-th
    /// through `j`-th elements inclusive into a `Vec`. Thin wrapper over
    /// [`HiPma::range_iter`] (same error contract), pre-sized to `k` since
    /// the rank bounds give the exact result count.
    pub fn range_query(&self, i: usize, j: usize) -> Result<Vec<T>, RankError> {
        let iter = self.range_iter(i, j)?;
        let mut out = Vec::with_capacity(if i > j { 0 } else { j - i + 1 });
        out.extend(iter.cloned());
        Ok(out)
    }

    /// Replaces the entire contents with `items` (in rank order), drawing
    /// **fresh coins** from `seed`: the capacity parameter `N̂` is re-drawn
    /// uniformly from `{n, …, 2n−1}` and every balance element uniformly
    /// from its candidate window, exactly the distribution an incremental
    /// build converges to. The resulting layout is therefore a pure function
    /// of *(items, seed)* — independent of the previous contents, of the
    /// structure's RNG position, and of how the caller ordered earlier
    /// operations. Cost is `O(n)` element moves instead of the incremental
    /// `O(n log² n)`.
    pub fn bulk_load(&mut self, items: impl IntoIterator<Item = T>, seed: u64) {
        let mut buf = self.scratch.take();
        buf.extend(items);
        let mut source = RngSource::from_seed(seed);
        self.rng = source.split("hi-pma");
        self.capacity = HiCapacity::with_len(buf.len(), &mut self.rng);
        self.counters.add_resize();
        if buf.is_empty() {
            self.scratch.restore(buf);
            self.reset_empty();
        } else {
            self.rebuild_everything(buf);
        }
    }

    /// Resets to the canonical empty layout (shared by delete-to-empty and
    /// `bulk_load` of nothing).
    fn reset_empty(&mut self) {
        self.geometry = Geometry::for_n_hat(1);
        self.store = SlotStore::new(self.geometry.leaf_count(), self.geometry.leaf_slots);
        self.array_region = Region::new(0, self.elem_size, self.geometry.total_slots as u64);
        self.rank_tree = VebTree::new(
            self.geometry.levels(),
            Self::rank_tree_base(&self.geometry, self.elem_size),
            8,
            self.tracer.clone(),
        );
        self.value_tree = VebTree::new(
            self.geometry.levels(),
            Self::value_tree_base(&self.geometry, self.elem_size),
            self.elem_size,
            self.tracer.clone(),
        );
    }

    /// Finds the dense position of the element with the given rank,
    /// returning `(leaf_index, index_within_leaf)`. Charges the rank-tree
    /// descent and one sequential read of the leaf to the tracer. With dense
    /// per-leaf storage the within-leaf position *is* the relative rank —
    /// no slot probing.
    fn locate(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.len());
        let mut range = 0usize;
        let mut depth = 0u32;
        let mut slot_start = 0usize;
        let mut rel_rank = rank;
        while depth < self.geometry.height {
            let (left, right) = children(range);
            let l1 = *self.rank_tree.get(left) as usize;
            let half = self.geometry.slots_at_depth(depth) / 2;
            if rel_rank < l1 {
                range = left;
            } else {
                range = right;
                slot_start += half;
                rel_rank -= l1;
            }
            depth += 1;
        }
        self.tracer.read(
            self.array_region.addr(slot_start as u64),
            self.array_region.span(self.geometry.leaf_slots as u64),
        );
        (self.geometry.leaf_of_slot(slot_start), rel_rank)
    }

    /// Expected slot position of the `j`-th element of a leaf holding `n`
    /// elements (exposed for the layout tests).
    pub fn leaf_slot_for(&self, j: usize, n: usize) -> usize {
        spread_position(j, n, self.geometry.leaf_slots)
    }

    /// Rank of the first element `e` for which `f(e)` is not `Less`, assuming
    /// the caller keeps the sequence sorted with respect to `f` (as the
    /// cache-oblivious B-tree does with keys). Returns `len()` when every
    /// element compares `Less`.
    ///
    /// This is the paper's §5 keyed search over the *augmented PMA*: the
    /// descent reads the value tree (balance elements) and the rank tree,
    /// both in the vEB layout, costing `O(log N)` comparisons and
    /// `O(log_B N)` I/Os, then scans one leaf.
    pub fn lower_bound_by<F>(&self, f: F) -> usize
    where
        F: Fn(&T) -> std::cmp::Ordering,
    {
        self.lower_bound_ref_by(f).0
    }

    /// [`HiPma::lower_bound_by`] fused with a borrow of the element at the
    /// returned rank, still in one descent: when the lower bound lands in
    /// the leaf the descent reached, the element is read straight out of
    /// the dense leaf; only the rare fall-off-the-leaf case (the bound
    /// belongs to a later leaf) pays a second rank descent.
    pub fn lower_bound_ref_by<F>(&self, f: F) -> (usize, Option<&T>)
    where
        F: Fn(&T) -> std::cmp::Ordering,
    {
        if self.is_empty() {
            return (0, None);
        }
        let (leaf, rank_offset) = self.lower_bound_leaf_by(&f);
        self.tracer.read(
            self.array_region
                .addr(self.geometry.leaf_start(leaf) as u64),
            self.array_region.span(self.geometry.leaf_slots as u64),
        );
        let group = self.store.group(leaf);
        // The dense leaf is sorted under `f`; binary-search it instead of
        // the previous linear scan.
        let pos = group.partition_point(|e| f(e) == std::cmp::Ordering::Less);
        let rank = rank_offset + pos;
        if pos < group.len() {
            (rank, Some(&group[pos]))
        } else {
            // The bound lies beyond this leaf; resolve the element (if any)
            // by rank.
            (rank, self.get_rank_ref(rank))
        }
    }

    /// The leaf a keyed descent lands in and the rank of its first element
    /// (the non-terminal part of [`HiPma::lower_bound_ref_by`]).
    fn lower_bound_leaf_by<F>(&self, f: &F) -> (usize, usize)
    where
        F: Fn(&T) -> std::cmp::Ordering,
    {
        let mut range = 0usize;
        let mut depth = 0u32;
        let mut slot_start = 0usize;
        let mut rank_offset = 0usize;
        while depth < self.geometry.height {
            let (left, right) = children(range);
            let l1 = *self.rank_tree.get(left) as usize;
            let half = self.geometry.slots_at_depth(depth) / 2;
            let go_right = match self.value_tree.get(range) {
                Some(balance) => f(balance) == std::cmp::Ordering::Less,
                None => false,
            };
            if go_right {
                rank_offset += l1;
                slot_start += half;
                range = right;
            } else {
                range = left;
            }
            depth += 1;
        }
        (self.geometry.leaf_of_slot(slot_start), rank_offset)
    }

    /// How many leaves a seek finger walks before giving up and paying one
    /// value-tree descent instead: close probes (sorted batches, dense
    /// probe sets) ride the walk, sparse probes cost `O(log N)` like a
    /// plain search — never `O(distance)`.
    pub const SEEK_WALK_LIMIT: usize = 32;

    /// [`HiPma::lower_bound_ref_by`] with a resumable [`SeekFinger`]:
    /// ascending probe runs resume from the previous probe's leaf and walk
    /// dense leaves left to right (a group-length read and one comparison
    /// per skipped leaf); probes farther than [`Self::SEEK_WALK_LIMIT`]
    /// leaves (and the first probe) pay one value-tree descent to re-seed
    /// the finger.
    pub fn lower_bound_seek_by<F>(&self, finger: &mut SeekFinger, f: F) -> (usize, Option<&T>)
    where
        F: Fn(&T) -> std::cmp::Ordering,
    {
        if self.is_empty() {
            finger.valid = false;
            return (0, None);
        }
        let (mut leaf, mut base, mut descended) = if finger.valid {
            (finger.group, finger.base_rank, false)
        } else {
            let (l, b) = self.lower_bound_leaf_by(&f);
            (l, b, true)
        };
        let leaf_count = self.geometry.leaf_count();
        let mut walked = 0usize;
        loop {
            if leaf >= leaf_count {
                finger.valid = false;
                debug_assert_eq!(base, self.len());
                return (self.len(), None);
            }
            let group = self.store.group(leaf);
            match group.last() {
                Some(last) if f(last) != std::cmp::Ordering::Less => break,
                _ => {
                    base += group.len();
                    leaf += 1;
                    walked += 1;
                    if walked >= Self::SEEK_WALK_LIMIT && !descended {
                        // The target is far: one descent lands within a
                        // couple of leaves of it (the descent never
                        // overshoots, so only move forward).
                        let (l, b) = self.lower_bound_leaf_by(&f);
                        if l > leaf {
                            leaf = l;
                            base = b;
                        }
                        descended = true;
                    }
                }
            }
        }
        self.tracer.read(
            self.array_region
                .addr(self.geometry.leaf_start(leaf) as u64),
            self.array_region.span(self.geometry.leaf_slots as u64),
        );
        let group = self.store.group(leaf);
        let pos = group.partition_point(|e| f(e) == std::cmp::Ordering::Less);
        finger.group = leaf;
        finger.base_rank = base;
        finger.valid = true;
        (base + pos, Some(&group[pos]))
    }

    // ------------------------------------------------------------------
    // Group-commit batch updates
    // ------------------------------------------------------------------
    //
    // The batch path replays every *decision* one operation at a time —
    // capacity events, reservoir lotteries and balance draws consume the
    // coin stream exactly as the per-op path would, and the rank tree is
    // updated along every descent — but records the element splices instead
    // of executing them. `batch_commit` then touches each maximal dirty run
    // of leaves once: one gather, one splice pass over the contiguous
    // buffer, one refill per leaf, and one recomputation of the re-planned
    // ranges' balance copies from the final arrangement (their identity is
    // exactly the element at the left child's final count, which is what
    // sequential application leaves there). The resulting occupancy bitmap,
    // rank tree, value tree and RNG position are bit-identical to applying
    // the operations one at a time.

    /// Opens a deferred batch. Pair with [`HiPma::batch_commit`]; between
    /// the two, only [`HiPma::batch_insert`] / [`HiPma::batch_delete`] may
    /// touch the structure.
    pub fn batch_begin(&mut self) {
        self.batch.begin();
        self.batch_roots.clear();
    }

    /// Replays one insert of an open batch at `rank` (the rank it applies
    /// at mid-batch), deferring the element movement. Draws exactly the
    /// coins [`HiPma::insert`] would draw.
    pub fn batch_insert(&mut self, rank: usize, item: T) {
        debug_assert!(self.batch.active, "batch_insert outside a batch");
        debug_assert!(rank <= self.len());
        self.counters.add_insert();
        let event = self.capacity.on_insert(&mut self.rng);
        if let CapacityEvent::Rebuild { .. } = event {
            // Same coins and same layout as the sequential path: gather the
            // full current sequence (pending splices included), splice the
            // new element, rebuild everything.
            let mut buf = self.flush_batch_sequence();
            buf.insert(rank, item);
            self.counters.add_resize();
            self.rebuild_everything(buf);
            self.batch.reset_records();
            return;
        }
        let mut range = 0usize;
        let mut depth = 0u32;
        let mut slot_start = 0usize;
        let mut rel_rank = rank;
        let mut len_before = *self.rank_tree.get(0) as usize;
        loop {
            if depth == self.geometry.height {
                self.rank_tree.set(range, (len_before + 1) as u64);
                let leaf = self.geometry.leaf_of_slot(slot_start);
                debug_assert!(len_before < self.geometry.leaf_slots, "leaf overflow");
                self.counters.add_moves(len_before as u64 + 1);
                self.batch.mark_dirty(leaf);
                self.batch.record_insert(rank, leaf, item);
                return;
            }
            let (left, _right) = children(range);
            let l1 = *self.rank_tree.get(left) as usize;
            let m = self.geometry.candidate_size(depth);
            let decision = self.decide_insert(rel_rank, l1, len_before, m);
            self.rank_tree.set(range, (len_before + 1) as u64);
            match decision {
                Decision::Rebuild { forced } => {
                    let slot_count = self.geometry.slots_at_depth(depth);
                    self.counters.add_rebuild(slot_count as u64);
                    self.plan_counts(range, depth, len_before + 1, forced);
                    let first_leaf = self.geometry.leaf_of_slot(slot_start);
                    let window = slot_count / self.geometry.leaf_slots;
                    self.batch.mark_dirty_window(first_leaf, window);
                    self.batch_roots
                        .push((range as u32, depth, first_leaf as u32));
                    self.batch.record_insert(rank, first_leaf, item);
                    return;
                }
                Decision::Descend => {
                    let half = self.geometry.slots_at_depth(depth) / 2;
                    if rel_rank <= l1 {
                        range = left;
                        len_before = l1;
                    } else {
                        range = 2 * range + 2;
                        slot_start += half;
                        rel_rank -= l1;
                        len_before -= l1;
                    }
                    depth += 1;
                }
            }
        }
    }

    /// Replays one delete of an open batch at `rank`, deferring the element
    /// movement. Draws exactly the coins [`HiPma::delete`] would draw; the
    /// removed element is dropped at commit.
    pub fn batch_delete(&mut self, rank: usize) {
        debug_assert!(self.batch.active, "batch_delete outside a batch");
        debug_assert!(rank < self.len());
        self.counters.add_delete();
        let event = self.capacity.on_delete(&mut self.rng);
        if let CapacityEvent::Rebuild { .. } = event {
            let mut buf = self.flush_batch_sequence();
            drop(buf.remove(rank));
            self.counters.add_resize();
            if self.capacity.is_empty() {
                self.scratch.restore(buf);
                self.reset_empty();
            } else {
                self.rebuild_everything(buf);
            }
            self.batch.reset_records();
            return;
        }
        let mut range = 0usize;
        let mut depth = 0u32;
        let mut slot_start = 0usize;
        let mut rel_rank = rank;
        let mut len_before = *self.rank_tree.get(0) as usize;
        loop {
            if depth == self.geometry.height {
                self.rank_tree.set(range, (len_before - 1) as u64);
                let leaf = self.geometry.leaf_of_slot(slot_start);
                self.counters.add_moves(len_before as u64 - 1);
                self.batch.mark_dirty(leaf);
                self.batch.record_delete(rank, leaf);
                return;
            }
            let (left, _right) = children(range);
            let l1 = *self.rank_tree.get(left) as usize;
            let m = self.geometry.candidate_size(depth);
            let decision = self.decide_delete(rel_rank, l1, len_before, m);
            self.rank_tree.set(range, (len_before - 1) as u64);
            match decision {
                Decision::Rebuild { forced } => {
                    let slot_count = self.geometry.slots_at_depth(depth);
                    self.counters.add_rebuild(slot_count as u64);
                    self.plan_counts(range, depth, len_before - 1, forced);
                    let first_leaf = self.geometry.leaf_of_slot(slot_start);
                    let window = slot_count / self.geometry.leaf_slots;
                    self.batch.mark_dirty_window(first_leaf, window);
                    self.batch_roots
                        .push((range as u32, depth, first_leaf as u32));
                    self.batch.record_delete(rank, first_leaf);
                    return;
                }
                Decision::Descend => {
                    let half = self.geometry.slots_at_depth(depth) / 2;
                    if rel_rank < l1 {
                        range = left;
                        len_before = l1;
                    } else {
                        range = 2 * range + 2;
                        slot_start += half;
                        rel_rank -= l1;
                        len_before -= l1;
                    }
                    depth += 1;
                }
            }
        }
    }

    /// Closes an open batch: one merge-rebalance per maximal dirty run of
    /// leaves, then a single recomputation of the re-planned balance copies.
    pub fn batch_commit(&mut self) {
        if !self.batch.active {
            return;
        }
        if self.batch.is_clean() {
            self.batch_roots.clear();
            self.batch.finish();
            return;
        }
        {
            let Self {
                ref mut batch,
                ref rank_tree,
                ref geometry,
                ..
            } = *self;
            batch.plan_commit(|leaf| prefix_before_leaf(rank_tree, geometry, leaf));
        }
        // Value-subtree roots are recomputed once per *maximal* re-planned
        // subtree: tree ranges either nest or are disjoint, so after
        // sorting by first leaf (outermost window first at ties) a sweep
        // drops every root covered by the previous kept one. Nested roots
        // would only recompute identical values — skipping them turns the
        // sum of rebuilt windows into their union.
        self.batch_roots.sort_unstable_by_key(|&(_, d, fl)| (fl, d));
        {
            let height = self.geometry.height;
            let mut covered_end = 0u32;
            self.batch_roots.retain(|&(_, d, fl)| {
                if fl < covered_end {
                    debug_assert!(fl + (1u32 << (height - d)) <= covered_end);
                    false
                } else {
                    covered_end = fl + (1u32 << (height - d));
                    true
                }
            });
        }
        let levels = self.geometry.levels();
        let leaf_slots = self.geometry.leaf_slots;
        let mut root_cursor = 0usize;
        for run_idx in 0..self.batch.runs().len() {
            let run = self.batch.run(run_idx);
            let (g0, g1) = (run.start as usize, run.end as usize);
            self.tracer.read(
                self.array_region.addr((g0 * leaf_slots) as u64),
                self.array_region.span(((g1 - g0) * leaf_slots) as u64),
            );
            let mut buf = std::mem::take(&mut self.batch.run_buf);
            buf.clear();
            self.store.drain_window_into(g0, g1 - g0, &mut buf);
            self.batch.apply_run_splices(run_idx, &mut buf);
            self.counters.add_batch_gather();
            // Recompute the balance copies of every range re-planned inside
            // this run, from the *final* arrangement: a range's balance is
            // the element at its left child's count — the invariant descents
            // preserve — so one pass over the merged buffer restores exactly
            // the values sequential application would have left.
            let mut offset = 0usize;
            let mut leaf = g0;
            while root_cursor < self.batch_roots.len() {
                let (range, depth, first_leaf) = self.batch_roots[root_cursor];
                if first_leaf as usize >= g1 {
                    break;
                }
                while leaf < first_leaf as usize {
                    offset += *self.rank_tree.peek(leaf_index(levels, leaf)) as usize;
                    leaf += 1;
                }
                let len = *self.rank_tree.peek(range as usize) as usize;
                self.set_values_from(range as usize, depth, &buf[offset..offset + len]);
                root_cursor += 1;
            }
            // Refill each leaf of the run with its final count — the dense
            // concatenation of leaves always equals the sequence in rank
            // order, so slicing the merged run by final counts reproduces
            // the per-op layout bit for bit.
            let mut iter = buf.drain(..);
            for lf in g0..g1 {
                let count = *self.rank_tree.peek(leaf_index(levels, lf)) as usize;
                self.store.fill_window(lf, 1, &mut iter, count);
            }
            debug_assert!(iter.next().is_none(), "batch commit left elements unplaced");
            drop(iter);
            self.tracer.write(
                self.array_region.addr((g0 * leaf_slots) as u64),
                self.array_region.span(((g1 - g0) * leaf_slots) as u64),
            );
            self.batch.run_buf = buf;
        }
        debug_assert_eq!(root_cursor, self.batch_roots.len());
        self.batch_roots.clear();
        self.batch.finish();
    }

    /// Phase-1-only rebuild used by the batch replay: draws each range's
    /// balance coins and writes the rank tree in exactly [`HiPma::plan_range`]'s
    /// order, but touches no elements (the balance *copies* are recomputed at
    /// commit, and the leaves are refilled then).
    fn plan_counts(&mut self, range: usize, depth: u32, len: usize, forced_balance: Option<usize>) {
        self.rank_tree.set(range, len as u64);
        if depth == self.geometry.height {
            self.counters.add_moves(len as u64);
            return;
        }
        let m = self.geometry.candidate_size(depth);
        let (w, m_eff) = Geometry::candidate_window(len, m);
        let balance = if len == 0 {
            0
        } else {
            match forced_balance {
                Some(b) => {
                    debug_assert!(b >= w && b < w + m_eff, "forced balance outside window");
                    b
                }
                None => w + self.rng.gen_range(0..m_eff.max(1)),
            }
        };
        let (left, _right) = children(range);
        self.plan_counts(left, depth + 1, balance, None);
        self.plan_counts(2 * range + 2, depth + 1, len - balance, None);
    }

    /// Writes the balance copies of the subtree rooted at `range` from the
    /// final elements of that range (`elements.len()` must equal the range's
    /// rank-tree count). `len == 0` ranges get `None`, exactly as
    /// [`HiPma::plan_range`] leaves them.
    fn set_values_from(&mut self, range: usize, depth: u32, elements: &[T]) {
        debug_assert_eq!(*self.rank_tree.peek(range) as usize, elements.len());
        if depth == self.geometry.height {
            return;
        }
        let (left, right) = children(range);
        let l1 = *self.rank_tree.peek(left) as usize;
        self.value_tree.set(range, elements.get(l1).cloned());
        self.set_values_from(left, depth + 1, &elements[..l1]);
        self.set_values_from(right, depth + 1, &elements[l1..]);
    }

    /// Materializes the full current sequence (pending splices applied) into
    /// a scratch buffer, leaving every leaf empty — the batch equivalent of
    /// [`HiPma::gather_all`], used when a capacity event forces a whole-
    /// structure rebuild mid-batch.
    fn flush_batch_sequence(&mut self) -> Vec<T> {
        let mut out = self.scratch.take();
        let leaf_count = self.geometry.leaf_count();
        self.tracer
            .read(self.array_region.base, self.array_region.byte_len());
        if self.batch.is_clean() {
            self.store.drain_window_into(0, leaf_count, &mut out);
            self.batch_roots.clear();
            return out;
        }
        {
            let Self {
                ref mut batch,
                ref rank_tree,
                ref geometry,
                ..
            } = *self;
            batch.plan_commit(|leaf| prefix_before_leaf(rank_tree, geometry, leaf));
        }
        let mut run_idx = 0usize;
        let mut g = 0usize;
        while g < leaf_count {
            if run_idx < self.batch.runs().len() && self.batch.run(run_idx).start as usize == g {
                let run = self.batch.run(run_idx);
                let mut buf = std::mem::take(&mut self.batch.run_buf);
                buf.clear();
                self.store
                    .drain_window_into(g, (run.end - run.start) as usize, &mut buf);
                self.batch.apply_run_splices(run_idx, &mut buf);
                self.counters.add_batch_gather();
                out.append(&mut buf);
                self.batch.run_buf = buf;
                run_idx += 1;
                g = run.end as usize;
            } else {
                self.store.drain_window_into(g, 1, &mut out);
                g += 1;
            }
        }
        debug_assert_eq!(run_idx, self.batch.runs().len());
        self.batch_roots.clear();
        out
    }
}

/// Number of elements in leaves `[0, leaf)`, read from the rank tree in one
/// root-to-leaf descent (used by the batch commit to place runs without
/// scanning every group).
fn prefix_before_leaf(rank_tree: &VebTree<u64>, geometry: &Geometry, leaf: usize) -> u64 {
    let mut acc = 0u64;
    let mut range = 0usize;
    let mut rel = leaf;
    for depth in 0..geometry.height {
        let (left, right) = children(range);
        let half = 1usize << (geometry.height - depth - 1);
        if rel >= half {
            acc += *rank_tree.peek(left);
            rel -= half;
            range = right;
        } else {
            range = left;
        }
    }
    acc
}

impl<T: Clone> Occupancy for HiPma<T> {
    fn slot_count(&self) -> usize {
        self.geometry.total_slots
    }

    fn occupancy_words(&self) -> &[u64] {
        self.store.bitmap().words()
    }
}

impl<T: Clone> RankedSequence for HiPma<T> {
    type Item = T;

    fn len(&self) -> usize {
        HiPma::len(self)
    }

    fn insert_at(&mut self, rank: usize, item: T) -> Result<(), RankError> {
        self.insert(rank, item)
    }

    fn delete_at(&mut self, rank: usize) -> Result<T, RankError> {
        self.delete(rank)
    }

    fn get_ref(&self, rank: usize) -> Option<&T> {
        self.get_rank_ref(rank)
    }

    fn get(&self, rank: usize) -> Option<T> {
        self.get_rank(rank)
    }

    fn lower_bound_by<F>(&self, f: F) -> usize
    where
        F: Fn(&T) -> std::cmp::Ordering,
    {
        // Single value-tree descent (the §5 keyed search) instead of the
        // default binary search over O(log n) rank descents — this is what
        // keeps the keyed adapter's operations near native rank speed.
        HiPma::lower_bound_by(self, f)
    }

    fn lower_bound_ref_by<F>(&self, f: F) -> (usize, Option<&T>)
    where
        F: Fn(&T) -> std::cmp::Ordering,
    {
        HiPma::lower_bound_ref_by(self, f)
    }

    fn lower_bound_seek_by<F>(&self, finger: &mut SeekFinger, f: F) -> (usize, Option<&T>)
    where
        F: Fn(&T) -> std::cmp::Ordering,
    {
        HiPma::lower_bound_seek_by(self, finger, f)
    }

    fn batch_begin(&mut self) {
        HiPma::batch_begin(self)
    }

    fn batch_insert_at(&mut self, rank: usize, item: T) {
        HiPma::batch_insert(self, rank, item)
    }

    fn batch_delete_at(&mut self, rank: usize) {
        HiPma::batch_delete(self, rank)
    }

    fn batch_commit(&mut self) {
        HiPma::batch_commit(self)
    }

    fn range_iter(&self, i: usize, j: usize) -> Result<impl Iterator<Item = &T>, RankError> {
        HiPma::range_iter(self, i, j)
    }

    fn query(&self, i: usize, j: usize) -> Result<Vec<T>, RankError> {
        self.range_query(i, j)
    }

    fn bulk_load(&mut self, items: impl IntoIterator<Item = T>, seed: u64) {
        HiPma::bulk_load(self, items, seed)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn filled(n: usize, seed: u64) -> HiPma<u64> {
        let mut pma = HiPma::new(seed);
        for i in 0..n {
            pma.insert(i, i as u64).unwrap();
        }
        pma
    }

    #[test]
    fn empty_pma() {
        let pma: HiPma<u32> = HiPma::new(1);
        assert_eq!(pma.len(), 0);
        assert!(pma.is_empty());
        assert_eq!(pma.get_rank(0), None);
        assert!(pma.range_query(0, 0).is_err());
    }

    #[test]
    fn sequential_appends_preserve_order() {
        let pma = filled(2000, 7);
        assert_eq!(pma.len(), 2000);
        let all = pma.range_query(0, 1999).unwrap();
        assert_eq!(all, (0..2000u64).collect::<Vec<_>>());
        pma.check_invariants();
    }

    #[test]
    fn front_inserts_preserve_order() {
        let mut pma = HiPma::new(3);
        for i in 0..1500u64 {
            pma.insert(0, i).unwrap();
        }
        let all = pma.range_query(0, 1499).unwrap();
        let expected: Vec<u64> = (0..1500u64).rev().collect();
        assert_eq!(all, expected);
        pma.check_invariants();
    }

    #[test]
    fn random_inserts_match_reference_model() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut pma = HiPma::new(4);
        let mut model: Vec<u64> = Vec::new();
        for step in 0..4000u64 {
            let rank = rng.gen_range(0..=model.len());
            pma.insert(rank, step).unwrap();
            model.insert(rank, step);
        }
        assert_eq!(pma.len(), model.len());
        assert_eq!(pma.range_query(0, model.len() - 1).unwrap(), model);
        pma.check_invariants();
    }

    #[test]
    fn mixed_inserts_and_deletes_match_reference_model() {
        let mut rng = StdRng::seed_from_u64(1234);
        let mut pma = HiPma::new(5);
        let mut model: Vec<u64> = Vec::new();
        for step in 0..6000u64 {
            let delete = !model.is_empty() && rng.gen_bool(0.4);
            if delete {
                let rank = rng.gen_range(0..model.len());
                let expected = model.remove(rank);
                let got = pma.delete(rank).unwrap();
                assert_eq!(got, expected, "step {step}");
            } else {
                let rank = rng.gen_range(0..=model.len());
                pma.insert(rank, step).unwrap();
                model.insert(rank, step);
            }
            if step % 500 == 0 {
                pma.check_invariants();
            }
        }
        if !model.is_empty() {
            assert_eq!(pma.range_query(0, model.len() - 1).unwrap(), model);
        }
        pma.check_invariants();
    }

    #[test]
    fn delete_everything_then_reuse() {
        let mut pma = filled(600, 8);
        for _ in 0..600 {
            pma.delete(0).unwrap();
        }
        assert!(pma.is_empty());
        pma.check_invariants();
        for i in 0..100u64 {
            pma.insert(i as usize, i).unwrap();
        }
        assert_eq!(pma.len(), 100);
        assert_eq!(
            pma.range_query(0, 99).unwrap(),
            (0..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn get_rank_returns_elements() {
        let pma = filled(300, 9);
        for rank in [0usize, 1, 150, 298, 299] {
            assert_eq!(pma.get_rank(rank), Some(rank as u64));
        }
        assert_eq!(pma.get_rank(300), None);
    }

    #[test]
    fn range_query_middle() {
        let pma = filled(1000, 10);
        let got = pma.range_query(400, 449).unwrap();
        assert_eq!(got, (400..450u64).collect::<Vec<_>>());
        // Uniform contract: i > j is an empty range, not an error.
        assert_eq!(pma.range_query(10, 5).unwrap(), Vec::<u64>::new());
        assert_eq!(pma.range_query(2000, 1000).unwrap(), Vec::<u64>::new());
        assert!(pma.range_query(0, 1000).is_err());
        assert_eq!(
            pma.range_query(0, 1000).unwrap_err(),
            hi_common::RankError {
                rank: 1000,
                len: 1000
            }
        );
    }

    #[test]
    fn bulk_load_builds_a_valid_pma() {
        let mut pma: HiPma<u64> = HiPma::new(9);
        // Pre-existing contents must be fully discarded.
        for i in 0..100 {
            pma.insert(i, 7777).unwrap();
        }
        pma.bulk_load((0..5000u64).map(|k| k * 2), 0xB01D);
        assert_eq!(pma.len(), 5000);
        assert_eq!(pma.get_rank(0), Some(0));
        assert_eq!(pma.get_rank(4999), Some(9998));
        pma.check_invariants();
        // Still fully operational afterwards.
        pma.insert(0, 123).unwrap();
        assert_eq!(pma.get_rank(0), Some(123));
        pma.check_invariants();
    }

    #[test]
    fn bulk_load_layout_is_a_function_of_items_and_seed() {
        let build = |pre: usize, seed: u64| {
            let mut pma: HiPma<u64> = HiPma::new(1234);
            for i in 0..pre {
                pma.insert(i, i as u64).unwrap();
            }
            pma.bulk_load(0..3000u64, seed);
            pma
        };
        let a = build(0, 5);
        let b = build(500, 5);
        assert_eq!(a.to_vec(), b.to_vec());
        assert_eq!(a.n_hat(), b.n_hat());
        assert_eq!(
            a.occupancy(),
            b.occupancy(),
            "same items + seed must give a bit-identical layout regardless of prior history"
        );
        let c = build(0, 6);
        assert_ne!(
            a.occupancy(),
            c.occupancy(),
            "different seed, different layout"
        );
    }

    #[test]
    fn range_iter_and_refs_agree_with_owned_queries() {
        let pma = filled(1000, 17);
        let lazy: Vec<u64> = pma.range_iter(100, 199).unwrap().copied().collect();
        assert_eq!(lazy, pma.range_query(100, 199).unwrap());
        assert_eq!(pma.get_rank_ref(42), Some(&42));
        assert_eq!(pma.get_rank_ref(1000), None);
        assert_eq!(pma.iter().count(), 1000);
        assert_eq!(pma.iter_from(990).count(), 10);
        assert_eq!(pma.iter_from(2000).count(), 0);
    }

    #[test]
    fn out_of_bounds_operations_fail() {
        let mut pma = filled(10, 11);
        assert!(pma.insert(12, 0).is_err());
        assert!(pma.delete(10).is_err());
        assert_eq!(pma.len(), 10);
    }

    #[test]
    fn space_is_linear_in_n() {
        let pma = filled(20_000, 12);
        let ratio = pma.total_slots() as f64 / pma.len() as f64;
        assert!(ratio >= 1.0, "array must be at least as large as N");
        assert!(ratio <= 10.0, "space overhead {ratio} is not linear");
    }

    #[test]
    fn capacity_parameter_stays_in_range() {
        let mut pma = HiPma::new(13);
        let mut rng = StdRng::seed_from_u64(31);
        for step in 0..3000u64 {
            if !pma.is_empty() && rng.gen_bool(0.3) {
                let rank = rng.gen_range(0..pma.len());
                pma.delete(rank).unwrap();
            } else {
                let rank = rng.gen_range(0..=pma.len());
                pma.insert(rank, step).unwrap();
            }
            if !pma.is_empty() {
                assert!(pma.n_hat() >= pma.len());
                assert!(pma.n_hat() < 2 * pma.len());
            }
        }
    }

    #[test]
    fn moves_are_counted() {
        let pma = filled(500, 14);
        let counters = pma.counters().snapshot();
        assert_eq!(counters.inserts, 500);
        assert!(counters.element_moves > 0);
        // Each insert moves at least one element (itself).
        assert!(counters.element_moves >= 500);
    }

    #[test]
    fn amortized_moves_grow_polylogarithmically() {
        // The analysis gives O(log² N) amortized moves; verify that the
        // per-insert average stays far below sqrt(N) (which would indicate
        // accidental linear-time rebalancing).
        let n = 30_000usize;
        let pma = filled(n, 15);
        let counters = pma.counters().snapshot();
        let per_insert = counters.element_moves as f64 / n as f64;
        let log2n = (n as f64).log2();
        assert!(
            per_insert <= 8.0 * log2n * log2n,
            "moves per insert {per_insert} exceed 8·log²N = {}",
            8.0 * log2n * log2n
        );
    }

    #[test]
    fn balance_records_are_well_formed() {
        let pma = filled(5_000, 16);
        let records = pma.balance_records();
        assert!(!records.is_empty());
        for r in &records {
            assert!(r.offset < r.window, "offset outside window: {r:?}");
            assert!(r.len > 0);
        }
    }

    #[test]
    fn occupancy_matches_len() {
        let pma = filled(700, 17);
        let occ = pma.occupancy();
        assert_eq!(occ.iter().filter(|&&b| b).count(), 700);
        assert_eq!(occ.len(), pma.total_slots());
    }

    #[test]
    fn traced_insert_costs_are_modest() {
        // With tracing enabled, a single insert at large N should touch
        // far fewer blocks than a linear scan of the structure.
        use io_sim::IoConfig;
        let tracer = Tracer::enabled(IoConfig::new(4096, 1 << 14));
        let mut pma: HiPma<u64> = HiPma::with_parts(
            RngSource::from_seed(18),
            SharedCounters::new(),
            tracer.clone(),
            16,
        );
        for i in 0..20_000u64 {
            pma.insert(i as usize, i).unwrap();
        }
        // Measure the marginal cost of 100 more inserts with a cold cache.
        tracer.reset_cold();
        for i in 0..100u64 {
            pma.insert((i * 131 % 20_000) as usize, i).unwrap();
        }
        let per_op = tracer.stats().reads as f64 / 100.0;
        let linear_scan = (pma.total_slots() as f64 * 16.0) / 4096.0;
        assert!(
            per_op < linear_scan / 4.0,
            "per-insert I/O {per_op} should be far below a full scan {linear_scan}"
        );
    }

    #[test]
    fn same_state_same_distribution_of_occupancy() {
        // Weak history independence, tested statistically: build the same
        // 200-element set via two different histories over many seeds and
        // compare where element 0 lands. The two distributions of positions
        // must agree (χ² two-sample test would be ideal; here we compare
        // coarse histograms with a generous tolerance).
        let n = 200usize;
        let trials = 300usize;
        let buckets = 8usize;
        let mut hist_a = vec![0f64; buckets];
        let mut hist_b = vec![0f64; buckets];
        for t in 0..trials {
            // History A: append 0..n in order.
            let mut a = HiPma::new(10_000 + t as u64);
            for i in 0..n {
                a.insert(i, i as u64).unwrap();
            }
            // History B: insert even ranks first, then odds, then delete and
            // reinsert the first quarter.
            let mut b = HiPma::new(20_000 + t as u64);
            let mut contents: Vec<u64> = Vec::new();
            for i in (0..n as u64).filter(|x| x % 2 == 0) {
                let rank = contents.binary_search(&i).unwrap_err();
                b.insert(rank, i).unwrap();
                contents.insert(rank, i);
            }
            for i in (0..n as u64).filter(|x| x % 2 == 1) {
                let rank = contents.binary_search(&i).unwrap_err();
                b.insert(rank, i).unwrap();
                contents.insert(rank, i);
            }
            for i in 0..n as u64 / 4 {
                let rank = contents.binary_search(&i).unwrap();
                b.delete(rank).unwrap();
                contents.remove(rank);
                let rank = contents.binary_search(&i).unwrap_err();
                b.insert(rank, i).unwrap();
                contents.insert(rank, i);
            }
            assert_eq!(
                a.range_query(0, n - 1).unwrap(),
                b.range_query(0, n - 1).unwrap()
            );
            // Where does the first element sit, as a fraction of the array?
            let pos_a =
                a.occupancy().iter().position(|&x| x).unwrap() as f64 / a.total_slots() as f64;
            let pos_b =
                b.occupancy().iter().position(|&x| x).unwrap() as f64 / b.total_slots() as f64;
            hist_a[(pos_a * buckets as f64) as usize % buckets] += 1.0;
            hist_b[(pos_b * buckets as f64) as usize % buckets] += 1.0;
        }
        // Total-variation distance between the two empirical distributions
        // should be small if the layout distribution is history independent.
        let tv: f64 = hist_a
            .iter()
            .zip(&hist_b)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / (2.0 * trials as f64);
        assert!(
            tv < 0.15,
            "layout distributions differ between histories: TV = {tv}, {hist_a:?} vs {hist_b:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = filled(800, 42);
        let b = filled(800, 42);
        assert_eq!(a.occupancy(), b.occupancy());
        assert_eq!(a.n_hat(), b.n_hat());
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let a = filled(800, 1);
        let b = filled(800, 2);
        // Contents identical…
        assert_eq!(
            a.range_query(0, 799).unwrap(),
            b.range_query(0, 799).unwrap()
        );
        // …but the layouts should differ (overwhelmingly likely).
        assert_ne!(a.occupancy(), b.occupancy());
    }

    #[test]
    fn lower_bound_matches_binary_search() {
        let mut pma = HiPma::new(321);
        let mut model: Vec<u64> = Vec::new();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..3000 {
            let key = rng.gen_range(0..100_000u64);
            let rank = model.partition_point(|x| x < &key);
            if model.get(rank) == Some(&key) {
                continue; // keep keys distinct
            }
            pma.insert(rank, key).unwrap();
            model.insert(rank, key);
        }
        for probe in (0..100_000u64).step_by(997) {
            let expected = model.partition_point(|x| x < &probe);
            let got = pma.lower_bound_by(|x| x.cmp(&probe));
            assert_eq!(got, expected, "probe {probe}");
        }
        assert_eq!(pma.lower_bound_by(|x| x.cmp(&u64::MAX)), model.len());
        assert_eq!(pma.lower_bound_by(|x| x.cmp(&0)), 0);
    }

    #[test]
    fn lower_bound_after_deletes() {
        let mut pma = HiPma::new(654);
        let mut model: Vec<u64> = (0..2000u64).map(|x| x * 2).collect();
        for (rank, &v) in model.iter().enumerate() {
            pma.insert(rank, v).unwrap();
        }
        // Delete every third element.
        let mut idx = 0usize;
        while idx < model.len() {
            if idx.is_multiple_of(3) {
                pma.delete(idx).unwrap();
                model.remove(idx);
            } else {
                idx += 1;
            }
        }
        for probe in (0..4000u64).step_by(37) {
            let expected = model.partition_point(|x| x < &probe);
            assert_eq!(
                pma.lower_bound_by(|x| x.cmp(&probe)),
                expected,
                "probe {probe}"
            );
        }
    }

    #[test]
    fn lower_bound_on_empty_pma() {
        let pma: HiPma<u64> = HiPma::new(1);
        assert_eq!(pma.lower_bound_by(|x| x.cmp(&5)), 0);
    }

    #[test]
    fn ranked_sequence_trait_roundtrip() {
        let mut pma: HiPma<String> = HiPma::new(77);
        RankedSequence::insert_at(&mut pma, 0, "b".to_string()).unwrap();
        RankedSequence::insert_at(&mut pma, 0, "a".to_string()).unwrap();
        RankedSequence::insert_at(&mut pma, 2, "c".to_string()).unwrap();
        assert_eq!(pma.to_vec(), vec!["a", "b", "c"]);
        assert_eq!(RankedSequence::get(&pma, 1), Some("b".to_string()));
        assert_eq!(
            RankedSequence::delete_at(&mut pma, 0).unwrap(),
            "a".to_string()
        );
        assert_eq!(pma.to_vec(), vec!["b", "c"]);
    }

    #[test]
    fn occupancy_trait_matches_legacy_representation() {
        use hi_common::traits::Occupancy;
        let pma = filled(900, 21);
        assert_eq!(Occupancy::occupancy(&pma), pma.occupancy());
        assert_eq!(pma.occupied_slots(), 900);
        assert_eq!(pma.slot_count(), pma.total_slots());
        // The packed words cover every slot and nothing beyond.
        assert_eq!(pma.occupancy_words().len(), pma.total_slots().div_ceil(64));
    }

    #[test]
    fn batch_replay_is_bit_identical_to_per_op_application() {
        // The core group-commit guarantee: replaying a rank-op stream
        // through batch_begin/batch_insert/batch_delete/batch_commit draws
        // the same coins and leaves the same bits as applying it per-op —
        // occupancy bitmap, N̂, rank tree and value tree (probed via keyed
        // searches) all included. Exercised across sizes that cross the
        // small-geometry boundary and force mid-batch capacity rebuilds.
        for (n_warm, batch_len, seed) in [(0usize, 40usize, 1u64), (500, 300, 2), (3_000, 900, 3)] {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = |m: u64| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) % m.max(1)
            };
            // Shared warm-up trace, then a shared batch trace.
            let warm: Vec<(bool, u64)> = (0..n_warm).map(|i| (true, next(i as u64 + 1))).collect();
            let ops: Vec<(bool, u64)> = (0..batch_len)
                .map(|_| (next(3) != 0, next(u64::MAX)))
                .collect();

            let build_base = |seed: u64| {
                let mut p: HiPma<u64> = HiPma::new(seed);
                for (i, &(_, r)) in warm.iter().enumerate() {
                    p.insert((r % (p.len() as u64 + 1)) as usize, i as u64)
                        .unwrap();
                }
                p
            };
            let mut per_op = build_base(seed);
            let mut batched = build_base(seed);

            // Apply the same op stream per-op and batched.
            for (i, &(is_insert, r)) in ops.iter().enumerate() {
                if is_insert || per_op.is_empty() {
                    let rank = (r % (per_op.len() as u64 + 1)) as usize;
                    per_op.insert(rank, 1_000_000 + i as u64).unwrap();
                } else {
                    let rank = (r % per_op.len() as u64) as usize;
                    per_op.delete(rank).unwrap();
                }
            }
            batched.batch_begin();
            for (i, &(is_insert, r)) in ops.iter().enumerate() {
                if is_insert || batched.is_empty() {
                    let rank = (r % (batched.len() as u64 + 1)) as usize;
                    batched.batch_insert(rank, 1_000_000 + i as u64);
                } else {
                    let rank = (r % batched.len() as u64) as usize;
                    batched.batch_delete(rank);
                }
            }
            batched.batch_commit();

            assert_eq!(per_op.to_vec(), batched.to_vec(), "n_warm={n_warm}");
            assert_eq!(per_op.n_hat(), batched.n_hat(), "n_warm={n_warm}");
            assert_eq!(
                per_op.occupancy(),
                batched.occupancy(),
                "n_warm={n_warm}: occupancy must be bit-identical"
            );
            batched.check_invariants();
            // Value trees agree: keyed searches land identically, and the
            // structures stay coin-synchronized for further per-op updates.
            if !per_op.is_empty() {
                for probe in [0u64, 5, 1_000_123, u64::MAX] {
                    assert_eq!(
                        per_op.lower_bound_by(|x| x.cmp(&probe)),
                        batched.lower_bound_by(|x| x.cmp(&probe)),
                        "n_warm={n_warm}: keyed search diverged"
                    );
                }
            }
            for i in 0..200u64 {
                let rank = (i * 7919) % (per_op.len() as u64 + 1);
                per_op.insert(rank as usize, i).unwrap();
                batched.insert(rank as usize, i).unwrap();
            }
            assert_eq!(
                per_op.occupancy(),
                batched.occupancy(),
                "n_warm={n_warm}: post-batch coin streams diverged"
            );
        }
    }

    #[test]
    fn seek_finger_matches_plain_lower_bound() {
        let mut pma: HiPma<u64> = HiPma::new(99);
        let keys: Vec<u64> = (0..4_000u64).map(|k| k * 3).collect();
        for (i, &k) in keys.iter().enumerate() {
            pma.insert(i, k).unwrap();
        }
        let mut finger = SeekFinger::new();
        for probe in (0..12_500u64).step_by(7) {
            let (rank, elem) = pma.lower_bound_seek_by(&mut finger, |x| x.cmp(&probe));
            let expected = pma.lower_bound_by(|x| x.cmp(&probe));
            assert_eq!(rank, expected, "probe {probe}");
            assert_eq!(elem, pma.get_rank_ref(rank), "probe {probe}");
        }
        // Past-the-end probes park the finger at the end.
        let (rank, elem) = pma.lower_bound_seek_by(&mut finger, |x| x.cmp(&u64::MAX));
        assert_eq!((rank, elem), (keys.len(), None));
        let empty: HiPma<u64> = HiPma::new(1);
        let mut finger = SeekFinger::new();
        assert_eq!(
            empty.lower_bound_seek_by(&mut finger, |x: &u64| x.cmp(&5)),
            (0, None)
        );
    }

    #[test]
    fn rebuild_scratch_capacity_is_reused() {
        // After a capacity rebuild has sized the arena, steady-state range
        // rebuilds must not grow it again (the allocation-free guarantee is
        // asserted allocator-level in tests/alloc_regression.rs).
        let mut pma = filled(4_000, 23);
        let cap_after_warmup = pma.scratch.capacity();
        assert!(cap_after_warmup >= 2_000, "arena never warmed up");
        for i in 0..500 {
            pma.delete(i % pma.len()).unwrap();
        }
        for i in 0..500u64 {
            pma.insert((i as usize * 13) % (pma.len() + 1), i).unwrap();
        }
        assert!(
            pma.scratch.capacity() >= cap_after_warmup,
            "scratch arena must persist across rebalances"
        );
    }
}
