//! The classic (non-history-independent) packed-memory array baseline.
//!
//! This is the textbook density-threshold PMA of Itai–Konheim–Rodeh /
//! Bender–Demaine–Farach-Colton / Bender–Hu that the paper compares against
//! in §4.3: an array of `Θ(N)` slots divided into segments of `Θ(log N)`
//! slots, with an implicit binary tree of *windows* above the segments. Every
//! window has a depth-dependent density band; an update rebalances the
//! smallest enclosing window that is back within its band, and the whole
//! array is resized when even the root is out of bounds.
//!
//! The rebalance windows — and therefore the final layout — depend heavily on
//! *where* previous inserts and deletes happened, which is exactly the
//! history leak the HI PMA removes. Keeping this baseline around lets the
//! benchmarks reproduce the paper's "factor of ~7 runtime overhead" claim and
//! lets the tests demonstrate the leak itself.
//!
//! Storage uses the same allocation-free engine as the HI PMA
//! ([`SlotStore`]): values dense per segment, slot layout in a packed
//! bitmap, rebalances gathering into a reusable [`Scratch`] arena and
//! moving (never cloning) elements.

use hi_common::batch::SeekFinger;
use hi_common::counters::SharedCounters;
use hi_common::scratch::Scratch;
use hi_common::traits::{Occupancy, RankError, RankedSequence};
use io_sim::{Region, Tracer};

use crate::batch::BatchState;
use crate::fenwick::Fenwick;
use crate::spread::spread_position;
use crate::store::{ScanIter, SlotStore};

/// Density thresholds for the classic PMA, linearly interpolated by depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityBands {
    /// Maximum density allowed at the root (whole array).
    pub root_max: f64,
    /// Maximum density allowed at a leaf (single segment).
    pub leaf_max: f64,
    /// Minimum density allowed at the root.
    pub root_min: f64,
    /// Minimum density allowed at a leaf.
    pub leaf_min: f64,
}

impl DensityBands {
    /// The conventional thresholds (root 0.30–0.70, leaf 0.08–0.92).
    pub fn standard() -> Self {
        Self {
            root_max: 0.70,
            leaf_max: 0.92,
            root_min: 0.30,
            leaf_min: 0.08,
        }
    }

    /// Upper threshold for a window at `depth` out of `height` levels
    /// (depth 0 = root, depth == height = leaf).
    pub fn upper(&self, depth: u32, height: u32) -> f64 {
        if height == 0 {
            return self.leaf_max;
        }
        self.root_max + (self.leaf_max - self.root_max) * depth as f64 / height as f64
    }

    /// Lower threshold for a window at `depth` out of `height` levels.
    pub fn lower(&self, depth: u32, height: u32) -> f64 {
        if height == 0 {
            return self.leaf_min;
        }
        self.root_min - (self.root_min - self.leaf_min) * depth as f64 / height as f64
    }
}

/// The classic density-threshold PMA. Rank-addressed, like [`crate::HiPma`].
#[derive(Debug, Clone)]
pub struct ClassicPma<T: Clone> {
    store: SlotStore<T>,
    /// Elements per segment.
    seg_counts: Fenwick,
    seg_size: usize,
    segments: usize,
    /// log2(segments): depth of the window tree.
    height: u32,
    len: usize,
    bands: DensityBands,
    counters: SharedCounters,
    tracer: Tracer,
    region: Region,
    elem_size: u64,
    /// Reusable gather buffer for rebalances and resizes.
    scratch: Scratch<T>,
    /// Deferred-splice state for the group-commit batch path.
    batch: BatchState<T>,
    /// Per-segment record of the last rebalance window that covered the
    /// segment during a batch replay: `(first segment, window segments,
    /// element count at that rebalance)`. A segment's slot bits are the
    /// slice of that window's even spread, so the record is exactly what
    /// the commit needs to reproduce the per-op bitmap. Only consulted for
    /// dirty segments (every dirty segment was covered by some replayed
    /// rebalance).
    seg_pattern: Vec<(u32, u32, u32)>,
    /// Reusable packed-bit buffer for commit-time segment patterns.
    bit_buf: Vec<u64>,
}

impl<T: Clone> ClassicPma<T> {
    /// Creates an empty PMA with the standard density bands.
    pub fn new() -> Self {
        Self::with_parts(
            DensityBands::standard(),
            SharedCounters::new(),
            Tracer::disabled(),
            16,
        )
    }

    /// Creates an empty PMA with explicit bands, counters, tracer and
    /// per-element on-disk size.
    pub fn with_parts(
        bands: DensityBands,
        counters: SharedCounters,
        tracer: Tracer,
        elem_size: u64,
    ) -> Self {
        let mut pma = Self {
            store: SlotStore::new(1, 8),
            seg_counts: Fenwick::new(0),
            seg_size: 0,
            segments: 0,
            height: 0,
            len: 0,
            bands,
            counters,
            tracer,
            region: Region::new(0, elem_size, 1),
            elem_size,
            scratch: Scratch::new(),
            batch: BatchState::default(),
            seg_pattern: Vec::new(),
            bit_buf: Vec::new(),
        };
        pma.resize_to(8, Vec::new());
        pma
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots in the backing array.
    pub fn total_slots(&self) -> usize {
        self.store.total_slots()
    }

    /// Current segment size (`Θ(log N)` slots).
    pub fn segment_size(&self) -> usize {
        self.seg_size
    }

    /// The shared operation counters.
    pub fn counters(&self) -> &SharedCounters {
        &self.counters
    }

    /// Occupancy bitmap of the backing array (used by the history-leak
    /// demonstrations: unlike the HI PMA, this bitmap betrays where inserts
    /// happened). Decoded from the packed words; see the [`Occupancy`] impl
    /// for the allocation-free form.
    pub fn occupancy(&self) -> Vec<bool> {
        self.store.bitmap().to_bools()
    }

    /// Verifies structural invariants (rank index consistent with slots,
    /// densities within the root band). Intended for tests.
    pub fn check_invariants(&self) {
        assert_eq!(self.store.bitmap().count_ones(), self.len);
        assert_eq!(self.seg_counts.total() as usize, self.len);
        for seg in 0..self.segments {
            let start = seg * self.seg_size;
            let occ = self
                .store
                .bitmap()
                .count_range(start, start + self.seg_size);
            assert_eq!(occ as u64, self.seg_counts.get(seg), "segment {seg}");
            assert_eq!(
                occ,
                self.store.group_len(seg),
                "segment {seg}: dense values and bitmap disagree"
            );
            assert!(occ <= self.seg_size);
        }
    }

    // ------------------------------------------------------------------
    // Sizing and rebuilds
    // ------------------------------------------------------------------

    /// Picks the array size for `n` elements: the smallest power of two that
    /// keeps the root density at ~0.5, at least 8 slots.
    fn target_slots(n: usize) -> usize {
        ((2 * n).max(8)).next_power_of_two()
    }

    /// Rebuilds the array with `total_slots` slots containing `buf`,
    /// consuming the buffer back into the scratch arena.
    fn resize_to(&mut self, total_slots: usize, mut buf: Vec<T>) {
        debug_assert!(total_slots.is_power_of_two());
        // Segment size ≈ log2(total_slots), rounded so the segment count is a
        // power of two.
        let target_seg = (total_slots.trailing_zeros() as usize).max(2);
        let segments = (total_slots / target_seg).next_power_of_two().max(1);
        let seg_size = total_slots / segments;
        debug_assert!(seg_size * segments == total_slots);
        self.store = SlotStore::new(segments, seg_size);
        self.seg_size = seg_size;
        self.segments = segments;
        self.height = segments.trailing_zeros();
        self.len = buf.len();
        self.region = Region::new(0, self.elem_size, total_slots as u64);
        // Spread evenly across the whole array (one window of every
        // segment), then record per-segment counts.
        let count = buf.len();
        let mut iter = buf.drain(..);
        self.store.fill_window(0, segments, &mut iter, count);
        drop(iter);
        self.scratch.restore(buf);
        self.counters.add_moves(count as u64);
        self.counters.add_resize();
        self.tracer.write(self.region.base, self.region.byte_len());
        let mut counts = vec![0u64; segments];
        for (seg, c) in counts.iter_mut().enumerate() {
            *c = self.store.group_len(seg) as u64;
        }
        self.seg_counts = Fenwick::from_counts(&counts);
        // A resize rewrites every segment directly; stale pattern records
        // must not survive it (they are only consulted for dirty segments,
        // which a resize clears, but keep the vector sized to the layout).
        self.seg_pattern.clear();
        self.seg_pattern.resize(segments, (0, 0, 0));
    }

    /// Moves every element, in rank order, into the scratch buffer.
    fn gather_all(&mut self) -> Vec<T> {
        self.tracer.read(self.region.base, self.region.byte_len());
        let mut buf = self.scratch.take();
        self.store.drain_window_into(0, self.segments, &mut buf);
        buf
    }

    // ------------------------------------------------------------------
    // Rank navigation
    // ------------------------------------------------------------------

    /// Segment index and within-segment rank for a global rank. For
    /// `rank == len` (append) returns the last segment holding elements (or
    /// segment 0 when empty).
    fn segment_for_rank(&self, rank: usize) -> (usize, usize) {
        if rank >= self.len {
            // Append: place after the last element.
            if self.len == 0 {
                return (0, 0);
            }
            let (seg, within) = self
                .seg_counts
                .find_rank((self.len - 1) as u64)
                // hi-lint: allow(panic-surface): len > 0 on this branch, so len - 1 is a valid rank
                .expect("len - 1 is a valid rank");
            return (seg, within as usize + 1);
        }
        let (seg, within) = self
            .seg_counts
            .find_rank(rank as u64)
            // hi-lint: allow(panic-surface): rank < len was checked by the branch above
            .expect("rank < len was checked");
        (seg, within as usize)
    }

    /// Refills the window of `1 << level` segments containing `seg` with the
    /// elements of `buf`, evenly spread, updating the segment counts and
    /// returning the buffer to the scratch arena. Every element is moved.
    fn rebalance_window(&mut self, seg: usize, level: u32, mut buf: Vec<T>) {
        let window_segs = 1usize << level;
        let first_seg = (seg / window_segs) * window_segs;
        let start = first_seg * self.seg_size;
        let slot_count = window_segs * self.seg_size;
        let count = buf.len();
        let mut iter = buf.drain(..);
        self.store
            .fill_window(first_seg, window_segs, &mut iter, count);
        drop(iter);
        self.scratch.restore(buf);
        self.counters.add_moves(count as u64);
        self.counters.add_rebuild(slot_count as u64);
        self.tracer.write(
            self.region.addr(start as u64),
            self.region.span(slot_count as u64),
        );
        for s in first_seg..first_seg + window_segs {
            let occ = self.store.group_len(s);
            let old = self.seg_counts.get(s) as i64;
            self.seg_counts.add(s, occ as i64 - old);
        }
    }

    /// Moves the elements of the window of `1 << level` segments containing
    /// `seg` into the scratch buffer (clearing the window).
    fn gather_window(&mut self, seg: usize, level: u32) -> Vec<T> {
        let window_segs = 1usize << level;
        let first_seg = (seg / window_segs) * window_segs;
        let start = first_seg * self.seg_size;
        let slot_count = window_segs * self.seg_size;
        self.tracer.read(
            self.region.addr(start as u64),
            self.region.span(slot_count as u64),
        );
        let mut buf = self.scratch.take();
        self.store
            .drain_window_into(first_seg, window_segs, &mut buf);
        buf
    }

    /// Number of elements currently in the window of `1 << level` segments
    /// containing `seg`.
    fn window_count(&self, seg: usize, level: u32) -> usize {
        let window_segs = 1usize << level;
        let first_seg = (seg / window_segs) * window_segs;
        (self.seg_counts.prefix_sum(first_seg + window_segs)
            - self.seg_counts.prefix_sum(first_seg)) as usize
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    /// Inserts `item` as the `rank`-th element.
    pub fn insert(&mut self, rank: usize, item: T) -> Result<(), RankError> {
        if rank > self.len {
            return Err(RankError {
                rank,
                len: self.len,
            });
        }
        self.counters.add_insert();
        let (seg, _within) = self.segment_for_rank(rank);
        // Find the smallest window (starting from the single segment) whose
        // density after the insert is within its upper threshold.
        let mut level = 0u32;
        loop {
            let window_slots = (1usize << level) * self.seg_size;
            let count_after = self.window_count(seg, level) + 1;
            let depth = self.height - level;
            let threshold = self.bands.upper(depth, self.height);
            if count_after as f64 <= threshold * window_slots as f64 && count_after <= window_slots
            {
                // Rebalance this window with the new element included.
                let window_segs = 1usize << level;
                let first_seg = (seg / window_segs) * window_segs;
                let rank_of_window_start = self.seg_counts.prefix_sum(first_seg) as usize;
                let mut buf = self.gather_window(seg, level);
                let pos = if rank >= self.len {
                    buf.len()
                } else {
                    rank - rank_of_window_start
                };
                buf.insert(pos.min(buf.len()), item);
                self.rebalance_window(seg, level, buf);
                self.len += 1;
                return Ok(());
            }
            if level == self.height {
                // Even the root is too dense: grow and retry by rebuilding.
                let mut buf = self.gather_all();
                buf.insert(rank, item);
                let new_slots = Self::target_slots(buf.len());
                self.resize_to(new_slots, buf);
                return Ok(());
            }
            level += 1;
        }
    }

    /// Deletes and returns the `rank`-th element.
    pub fn delete(&mut self, rank: usize) -> Result<T, RankError> {
        if rank >= self.len {
            return Err(RankError {
                rank,
                len: self.len,
            });
        }
        self.counters.add_delete();
        let (seg, _within) = self.segment_for_rank(rank);
        let mut level = 0u32;
        loop {
            let window_slots = (1usize << level) * self.seg_size;
            let count_after = self.window_count(seg, level) - 1;
            let depth = self.height - level;
            let threshold = self.bands.lower(depth, self.height);
            let root_level = level == self.height;
            if count_after as f64 >= threshold * window_slots as f64 && !root_level {
                let window_segs = 1usize << level;
                let first_seg = (seg / window_segs) * window_segs;
                let rank_of_window_start = self.seg_counts.prefix_sum(first_seg) as usize;
                let mut buf = self.gather_window(seg, level);
                let removed = buf.remove(rank - rank_of_window_start);
                self.rebalance_window(seg, level, buf);
                self.len -= 1;
                return Ok(removed);
            }
            if root_level {
                // Shrink (or just rebuild at the same size when small).
                let mut buf = self.gather_all();
                let removed = buf.remove(rank);
                let new_slots = Self::target_slots(buf.len());
                self.resize_to(new_slots, buf);
                return Ok(removed);
            }
            level += 1;
        }
    }

    /// Returns the `rank`-th element, if any.
    pub fn get_rank(&self, rank: usize) -> Option<T> {
        self.get_rank_ref(rank).cloned()
    }

    /// Borrows the `rank`-th element, if any, without copying it. One
    /// Fenwick rank search, then a direct dense index — no slot probing.
    pub fn get_rank_ref(&self, rank: usize) -> Option<&T> {
        if rank >= self.len {
            return None;
        }
        let (seg, within) = self.segment_for_rank(rank);
        let start = seg * self.seg_size;
        self.tracer.read(
            self.region.addr(start as u64),
            self.region.span(self.seg_size as u64),
        );
        self.store.get(seg, within)
    }

    /// Lazily yields the elements with ranks `rank..len` in order: one
    /// Fenwick rank lookup, then a sequential scan of the dense segments,
    /// each charged to the tracer as one read when the iterator enters it.
    pub fn iter_from(&self, rank: usize) -> ScanIter<'_, T> {
        let (seg, within) = if rank >= self.len {
            (self.segments, 0)
        } else {
            self.segment_for_rank(rank)
        };
        self.store
            .iter_from(seg, within, self.tracer.clone(), self.region)
    }

    /// Borrows every element in rank order (a full sequential scan).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.iter_from(0)
    }

    /// The zero-copy `Query(i, j)`: lazily yields the `i`-th through `j`-th
    /// elements inclusive.
    ///
    /// Uniform error contract: `i > j` is an empty range (`Ok`); `j ≥ len`
    /// (with `i ≤ j`) is a [`RankError`].
    pub fn range_iter(&self, i: usize, j: usize) -> Result<impl Iterator<Item = &T>, RankError> {
        if i > j {
            return Ok(self.iter_from(usize::MAX).take(0));
        }
        if j >= self.len {
            return Err(RankError {
                rank: j,
                len: self.len,
            });
        }
        self.counters.add_query();
        Ok(self.iter_from(i).take(j - i + 1))
    }

    /// The `i`-th through `j`-th elements inclusive, cloned into a `Vec`.
    /// Thin wrapper over [`ClassicPma::range_iter`] (same error contract),
    /// pre-sized to `k` since the rank bounds give the exact result count.
    pub fn range_query(&self, i: usize, j: usize) -> Result<Vec<T>, RankError> {
        let iter = self.range_iter(i, j)?;
        let mut out = Vec::with_capacity(if i > j { 0 } else { j - i + 1 });
        out.extend(iter.cloned());
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Group-commit batch updates
    // ------------------------------------------------------------------
    //
    // The batch replay walks every operation through exactly the per-op
    // density checks — choosing the same rebalance windows and resizes —
    // but only *accounts* for each rebalance (updating the per-segment
    // counts to the even-spread shares the window would leave) instead of
    // moving elements. `batch_commit` then gathers each maximal dirty run
    // of segments once, applies the recorded splices, and refills every
    // segment with its final count and the slot bits of its last covering
    // window — reproducing the per-op layout bit for bit.

    /// Number of spread positions of `count` elements over `slots` slots
    /// that fall below slot `x_slots`: `|{j < count : ⌊j·slots/count⌋ <
    /// x_slots}| = ⌈x_slots·count / slots⌉`.
    fn spread_prefix(x_slots: usize, count: usize, slots: usize) -> usize {
        if count == 0 {
            return 0;
        }
        (((x_slots as u64 * count as u64).div_ceil(slots as u64)) as usize).min(count)
    }

    /// Replays a rebalance of the `window_segs`-segment window starting at
    /// `first_seg` down to its per-segment element shares, without moving
    /// elements. Mirrors [`ClassicPma::rebalance_window`]'s accounting.
    fn replay_rebalance(&mut self, first_seg: usize, window_segs: usize, count: usize) {
        let slots = window_segs * self.seg_size;
        debug_assert!(count <= slots);
        self.batch.mark_dirty_window(first_seg, window_segs);
        for s_off in 0..window_segs {
            let s = first_seg + s_off;
            let lo = Self::spread_prefix(s_off * self.seg_size, count, slots);
            let hi = Self::spread_prefix((s_off + 1) * self.seg_size, count, slots);
            let old = self.seg_counts.get(s) as i64;
            self.seg_counts.add(s, (hi - lo) as i64 - old);
            self.seg_pattern[s] = (first_seg as u32, window_segs as u32, count as u32);
        }
        self.counters.add_moves(count as u64);
        self.counters.add_rebuild(slots as u64);
    }

    /// Opens a deferred batch. Pair with [`ClassicPma::batch_commit`].
    pub fn batch_begin(&mut self) {
        self.batch.begin();
    }

    /// Replays one insert of an open batch at `rank` (the rank it applies
    /// at mid-batch), deferring the element movement. Chooses exactly the
    /// window [`ClassicPma::insert`] would rebalance.
    pub fn batch_insert(&mut self, rank: usize, item: T) {
        debug_assert!(self.batch.active, "batch_insert outside a batch");
        debug_assert!(rank <= self.len);
        self.counters.add_insert();
        let (seg, _within) = self.segment_for_rank(rank);
        let mut level = 0u32;
        loop {
            let window_slots = (1usize << level) * self.seg_size;
            let count_after = self.window_count(seg, level) + 1;
            let depth = self.height - level;
            let threshold = self.bands.upper(depth, self.height);
            if count_after as f64 <= threshold * window_slots as f64 && count_after <= window_slots
            {
                let window_segs = 1usize << level;
                let first_seg = (seg / window_segs) * window_segs;
                self.replay_rebalance(first_seg, window_segs, count_after);
                self.batch.record_insert(rank, first_seg, item);
                self.len += 1;
                return;
            }
            if level == self.height {
                // Grow: materialize the pending sequence and rebuild, just
                // like the per-op path.
                let mut buf = self.flush_batch_sequence();
                buf.insert(rank, item);
                let new_slots = Self::target_slots(buf.len());
                self.resize_to(new_slots, buf);
                self.batch.reset_records();
                return;
            }
            level += 1;
        }
    }

    /// Replays one delete of an open batch at `rank`, deferring the element
    /// movement (the removed element is dropped at commit).
    pub fn batch_delete(&mut self, rank: usize) {
        debug_assert!(self.batch.active, "batch_delete outside a batch");
        debug_assert!(rank < self.len);
        self.counters.add_delete();
        let (seg, _within) = self.segment_for_rank(rank);
        let mut level = 0u32;
        loop {
            let window_slots = (1usize << level) * self.seg_size;
            let count_after = self.window_count(seg, level) - 1;
            let depth = self.height - level;
            let threshold = self.bands.lower(depth, self.height);
            let root_level = level == self.height;
            if count_after as f64 >= threshold * window_slots as f64 && !root_level {
                let window_segs = 1usize << level;
                let first_seg = (seg / window_segs) * window_segs;
                self.replay_rebalance(first_seg, window_segs, count_after);
                self.batch.record_delete(rank, first_seg);
                self.len -= 1;
                return;
            }
            if root_level {
                let mut buf = self.flush_batch_sequence();
                drop(buf.remove(rank));
                let new_slots = Self::target_slots(buf.len());
                self.resize_to(new_slots, buf);
                self.batch.reset_records();
                return;
            }
            level += 1;
        }
    }

    /// Closes an open batch: one merge-rebalance per maximal dirty run of
    /// segments.
    pub fn batch_commit(&mut self) {
        if !self.batch.active {
            return;
        }
        if self.batch.is_clean() {
            self.batch.finish();
            return;
        }
        {
            let Self {
                ref mut batch,
                ref seg_counts,
                ..
            } = *self;
            batch.plan_commit(|g| seg_counts.prefix_sum(g));
        }
        let seg_size = self.seg_size;
        let words = seg_size.div_ceil(64);
        for run_idx in 0..self.batch.runs().len() {
            let run = self.batch.run(run_idx);
            let (g0, g1) = (run.start as usize, run.end as usize);
            self.tracer.read(
                self.region.addr((g0 * seg_size) as u64),
                self.region.span(((g1 - g0) * seg_size) as u64),
            );
            let mut buf = std::mem::take(&mut self.batch.run_buf);
            buf.clear();
            self.store.drain_window_into(g0, g1 - g0, &mut buf);
            self.batch.apply_run_splices(run_idx, &mut buf);
            self.counters.add_batch_gather();
            let mut iter = buf.drain(..);
            for s in g0..g1 {
                let (first, wsegs, count) = self.seg_pattern[s];
                let (first, wsegs, count) = (first as usize, wsegs as usize, count as usize);
                debug_assert!(wsegs > 0, "dirty segment without a pattern record");
                let slots = wsegs * seg_size;
                let s_off = s - first;
                let lo = Self::spread_prefix(s_off * seg_size, count, slots);
                let hi = Self::spread_prefix((s_off + 1) * seg_size, count, slots);
                debug_assert_eq!(
                    (hi - lo) as u64,
                    self.seg_counts.get(s),
                    "pattern share disagrees with replayed segment count"
                );
                self.bit_buf.clear();
                self.bit_buf.resize(words, 0);
                for j in lo..hi {
                    let p = spread_position(j, count, slots) - s_off * seg_size;
                    self.bit_buf[p / 64] |= 1u64 << (p % 64);
                }
                self.store
                    .fill_group_with_bits(s, &mut iter, hi - lo, &self.bit_buf);
            }
            debug_assert!(iter.next().is_none(), "batch commit left elements unplaced");
            drop(iter);
            self.tracer.write(
                self.region.addr((g0 * seg_size) as u64),
                self.region.span(((g1 - g0) * seg_size) as u64),
            );
            self.batch.run_buf = buf;
        }
        self.batch.finish();
    }

    /// Materializes the full pending sequence into a scratch buffer, leaving
    /// every segment empty — the batch equivalent of
    /// [`ClassicPma::gather_all`], used before a mid-batch resize.
    fn flush_batch_sequence(&mut self) -> Vec<T> {
        let mut out = self.scratch.take();
        self.tracer.read(self.region.base, self.region.byte_len());
        if self.batch.is_clean() {
            self.store.drain_window_into(0, self.segments, &mut out);
            return out;
        }
        {
            let Self {
                ref mut batch,
                ref seg_counts,
                ..
            } = *self;
            batch.plan_commit(|g| seg_counts.prefix_sum(g));
        }
        let mut run_idx = 0usize;
        let mut g = 0usize;
        while g < self.segments {
            if run_idx < self.batch.runs().len() && self.batch.run(run_idx).start as usize == g {
                let run = self.batch.run(run_idx);
                let mut buf = std::mem::take(&mut self.batch.run_buf);
                buf.clear();
                self.store
                    .drain_window_into(g, (run.end - run.start) as usize, &mut buf);
                self.batch.apply_run_splices(run_idx, &mut buf);
                self.counters.add_batch_gather();
                out.append(&mut buf);
                self.batch.run_buf = buf;
                run_idx += 1;
                g = run.end as usize;
            } else {
                self.store.drain_window_into(g, 1, &mut out);
                g += 1;
            }
        }
        debug_assert_eq!(run_idx, self.batch.runs().len());
        out
    }

    /// How many segments a seek finger walks before falling back to a
    /// rank-space binary search (`O(log² n)` Fenwick probes) — close probes
    /// ride the walk, sparse probes never pay `O(distance)`.
    pub const SEEK_WALK_LIMIT: usize = 32;

    /// [`RankedSequence::lower_bound_seek_by`] for the classic PMA: the
    /// finger walks dense segments left to right, so ascending probe runs
    /// cost one group-length read and one comparison per skipped segment;
    /// far probes (and the first one) binary-search by rank instead.
    pub fn lower_bound_seek_by<F>(&self, finger: &mut SeekFinger, f: F) -> (usize, Option<&T>)
    where
        F: Fn(&T) -> std::cmp::Ordering,
    {
        if self.len == 0 {
            finger.valid = false;
            return (0, None);
        }
        let mut fallback = !finger.valid;
        let (mut seg, mut base) = if finger.valid {
            (finger.group, finger.base_rank)
        } else {
            (0, 0)
        };
        let mut walked = 0usize;
        loop {
            if fallback {
                // Rank-space binary search: O(log n) probes, each one
                // Fenwick rank descent plus a dense read.
                let (mut lo, mut hi) = (0usize, self.len);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    // hi-lint: allow(panic-surface): mid < len: the binary-search bounds maintain lo <= mid < hi <= len
                    let probe = self.get_rank_ref(mid).expect("mid < len");
                    if f(probe) == std::cmp::Ordering::Less {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                if lo == self.len {
                    finger.valid = false;
                    return (self.len, None);
                }
                let (s, within) = self.segment_for_rank(lo);
                seg = s;
                base = lo - within;
                break;
            }
            if seg >= self.segments {
                finger.valid = false;
                debug_assert_eq!(base, self.len);
                return (self.len, None);
            }
            let group = self.store.group(seg);
            match group.last() {
                Some(last) if f(last) != std::cmp::Ordering::Less => break,
                _ => {
                    base += group.len();
                    seg += 1;
                    walked += 1;
                    fallback = walked >= Self::SEEK_WALK_LIMIT;
                }
            }
        }
        self.tracer.read(
            self.region.addr((seg * self.seg_size) as u64),
            self.region.span(self.seg_size as u64),
        );
        let group = self.store.group(seg);
        let pos = group.partition_point(|e| f(e) == std::cmp::Ordering::Less);
        finger.group = seg;
        finger.base_rank = base;
        finger.valid = true;
        (base + pos, Some(&group[pos]))
    }

    /// Replaces the entire contents with `items` (in rank order) via a
    /// single `O(n)` rebuild. The classic PMA draws no coins — its layout is
    /// already a deterministic function of the contents — so `seed` is
    /// accepted only for signature uniformity with the HI structures.
    pub fn bulk_load(&mut self, items: impl IntoIterator<Item = T>, seed: u64) {
        let _ = seed;
        let mut buf = self.scratch.take();
        buf.extend(items);
        let slots = Self::target_slots(buf.len());
        self.resize_to(slots, buf);
    }
}

impl<T: Clone> Default for ClassicPma<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Occupancy for ClassicPma<T> {
    fn slot_count(&self) -> usize {
        self.store.total_slots()
    }

    fn occupancy_words(&self) -> &[u64] {
        self.store.bitmap().words()
    }
}

impl<T: Clone> RankedSequence for ClassicPma<T> {
    type Item = T;

    fn len(&self) -> usize {
        ClassicPma::len(self)
    }

    fn insert_at(&mut self, rank: usize, item: T) -> Result<(), RankError> {
        self.insert(rank, item)
    }

    fn delete_at(&mut self, rank: usize) -> Result<T, RankError> {
        self.delete(rank)
    }

    fn get_ref(&self, rank: usize) -> Option<&T> {
        self.get_rank_ref(rank)
    }

    fn get(&self, rank: usize) -> Option<T> {
        self.get_rank(rank)
    }

    fn lower_bound_seek_by<F>(&self, finger: &mut SeekFinger, f: F) -> (usize, Option<&T>)
    where
        F: Fn(&T) -> std::cmp::Ordering,
    {
        ClassicPma::lower_bound_seek_by(self, finger, f)
    }

    fn batch_begin(&mut self) {
        ClassicPma::batch_begin(self)
    }

    fn batch_insert_at(&mut self, rank: usize, item: T) {
        ClassicPma::batch_insert(self, rank, item)
    }

    fn batch_delete_at(&mut self, rank: usize) {
        ClassicPma::batch_delete(self, rank)
    }

    fn batch_commit(&mut self) {
        ClassicPma::batch_commit(self)
    }

    fn range_iter(&self, i: usize, j: usize) -> Result<impl Iterator<Item = &T>, RankError> {
        ClassicPma::range_iter(self, i, j)
    }

    fn query(&self, i: usize, j: usize) -> Result<Vec<T>, RankError> {
        self.range_query(i, j)
    }

    fn bulk_load(&mut self, items: impl IntoIterator<Item = T>, seed: u64) {
        ClassicPma::bulk_load(self, items, seed)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn filled(n: usize) -> ClassicPma<u64> {
        let mut pma = ClassicPma::new();
        for i in 0..n {
            pma.insert(i, i as u64).unwrap();
        }
        pma
    }

    #[test]
    fn empty() {
        let pma: ClassicPma<u32> = ClassicPma::new();
        assert!(pma.is_empty());
        assert_eq!(pma.get_rank(0), None);
    }

    #[test]
    fn bands_interpolate() {
        let b = DensityBands::standard();
        assert!((b.upper(0, 4) - 0.70).abs() < 1e-12);
        assert!((b.upper(4, 4) - 0.92).abs() < 1e-12);
        assert!(b.upper(2, 4) > 0.70 && b.upper(2, 4) < 0.92);
        assert!((b.lower(0, 4) - 0.30).abs() < 1e-12);
        assert!((b.lower(4, 4) - 0.08).abs() < 1e-12);
        assert!((b.upper(0, 0) - 0.92).abs() < 1e-12);
    }

    #[test]
    fn sequential_appends() {
        let pma = filled(3000);
        assert_eq!(pma.len(), 3000);
        assert_eq!(
            pma.range_query(0, 2999).unwrap(),
            (0..3000u64).collect::<Vec<_>>()
        );
        pma.check_invariants();
    }

    #[test]
    fn front_inserts() {
        let mut pma = ClassicPma::new();
        for i in 0..2000u64 {
            pma.insert(0, i).unwrap();
        }
        let expected: Vec<u64> = (0..2000u64).rev().collect();
        assert_eq!(pma.range_query(0, 1999).unwrap(), expected);
        pma.check_invariants();
    }

    #[test]
    fn random_ops_match_reference_model() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut pma = ClassicPma::new();
        let mut model: Vec<u64> = Vec::new();
        for step in 0..5000u64 {
            if !model.is_empty() && rng.gen_bool(0.35) {
                let rank = rng.gen_range(0..model.len());
                assert_eq!(pma.delete(rank).unwrap(), model.remove(rank), "step {step}");
            } else {
                let rank = rng.gen_range(0..=model.len());
                pma.insert(rank, step).unwrap();
                model.insert(rank, step);
            }
            if step % 1000 == 0 {
                pma.check_invariants();
            }
        }
        if !model.is_empty() {
            assert_eq!(pma.range_query(0, model.len() - 1).unwrap(), model);
        }
        pma.check_invariants();
    }

    #[test]
    fn get_rank_works() {
        let pma = filled(500);
        for rank in [0usize, 1, 250, 499] {
            assert_eq!(pma.get_rank(rank), Some(rank as u64));
        }
        assert_eq!(pma.get_rank(500), None);
    }

    #[test]
    fn space_stays_linear() {
        let pma = filled(20_000);
        let ratio = pma.total_slots() as f64 / pma.len() as f64;
        assert!(ratio <= 4.0, "space ratio {ratio}");
    }

    #[test]
    fn deletes_shrink_the_array() {
        let mut pma = filled(10_000);
        let slots_full = pma.total_slots();
        for _ in 0..9_500 {
            pma.delete(0).unwrap();
        }
        assert!(pma.total_slots() < slots_full);
        assert_eq!(pma.len(), 500);
        pma.check_invariants();
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut pma = filled(5);
        assert!(pma.insert(7, 0).is_err());
        assert!(pma.delete(5).is_err());
        assert!(pma.range_query(3, 9).is_err());
    }

    #[test]
    fn amortized_moves_are_polylogarithmic() {
        let n = 30_000usize;
        let pma = filled(n);
        let per_insert = pma.counters().snapshot().element_moves as f64 / n as f64;
        let log2n = (n as f64).log2();
        assert!(
            per_insert <= 8.0 * log2n * log2n,
            "moves per insert {per_insert}"
        );
    }

    #[test]
    fn layout_leaks_history() {
        // The motivating observation of the paper (§1.2): hammering inserts
        // at the front leaves the front of a classic PMA denser than the
        // back. Build the same *set* via front-loaded and back-loaded
        // histories and observe different occupancy patterns.
        let n = 4000usize;
        // History A: append ascending (inserts always at the back).
        let mut a = ClassicPma::new();
        for i in 0..n {
            a.insert(i, i as u64).unwrap();
        }
        // History B: insert descending values always at the front.
        let mut b = ClassicPma::new();
        for i in (0..n).rev() {
            b.insert(0, i as u64).unwrap();
        }
        // Same logical contents…
        assert_eq!(
            a.range_query(0, n - 1).unwrap(),
            b.range_query(0, n - 1).unwrap()
        );
        // …but the physical layouts differ: the classic PMA is *not*
        // history independent. (If the arrays ended up different sizes the
        // leak is already visible in the size.)
        let leak = a.total_slots() != b.total_slots() || a.occupancy() != b.occupancy();
        assert!(leak, "expected the classic PMA layout to depend on history");
    }

    #[test]
    fn ranked_sequence_trait() {
        let mut pma: ClassicPma<&'static str> = ClassicPma::new();
        RankedSequence::insert_at(&mut pma, 0, "b").unwrap();
        RankedSequence::insert_at(&mut pma, 0, "a").unwrap();
        assert_eq!(pma.to_vec(), vec!["a", "b"]);
        assert_eq!(RankedSequence::delete_at(&mut pma, 1).unwrap(), "b");
    }

    #[test]
    fn occupancy_trait_matches_legacy_representation() {
        use hi_common::traits::Occupancy;
        let pma = filled(700);
        assert_eq!(Occupancy::occupancy(&pma), pma.occupancy());
        assert_eq!(pma.occupied_slots(), 700);
        assert_eq!(pma.slot_count(), pma.total_slots());
    }

    #[test]
    fn batch_replay_is_bit_identical_to_per_op_application() {
        // Group commit on the classic PMA: the replayed density checks must
        // choose the same windows (and resizes) as the per-op path, and the
        // commit must reproduce each segment's slice of its last covering
        // window's spread — so the final bitmap is bit-identical. Exercised
        // across warm-up sizes that cross resize boundaries mid-batch.
        for (n_warm, batch_len) in [(0usize, 60usize), (300, 400), (2_000, 1_100)] {
            let mut state = (n_warm as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = |m: u64| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) % m.max(1)
            };
            let ops: Vec<(bool, u64)> = (0..batch_len)
                .map(|_| (next(3) != 0, next(u64::MAX)))
                .collect();
            let mut per_op = filled(n_warm);
            let mut batched = filled(n_warm);
            for (i, &(is_insert, r)) in ops.iter().enumerate() {
                if is_insert || per_op.is_empty() {
                    let rank = (r % (per_op.len() as u64 + 1)) as usize;
                    per_op.insert(rank, 1_000_000 + i as u64).unwrap();
                } else {
                    let rank = (r % per_op.len() as u64) as usize;
                    per_op.delete(rank).unwrap();
                }
            }
            batched.batch_begin();
            for (i, &(is_insert, r)) in ops.iter().enumerate() {
                if is_insert || batched.is_empty() {
                    let rank = (r % (batched.len() as u64 + 1)) as usize;
                    batched.batch_insert(rank, 1_000_000 + i as u64);
                } else {
                    let rank = (r % batched.len() as u64) as usize;
                    batched.batch_delete(rank);
                }
            }
            batched.batch_commit();
            assert_eq!(per_op.len(), batched.len(), "n_warm={n_warm}");
            assert_eq!(
                per_op.range_query(0, per_op.len().saturating_sub(1)).ok(),
                batched.range_query(0, batched.len().saturating_sub(1)).ok(),
                "n_warm={n_warm}: contents"
            );
            assert_eq!(
                per_op.total_slots(),
                batched.total_slots(),
                "n_warm={n_warm}"
            );
            assert_eq!(
                per_op.occupancy(),
                batched.occupancy(),
                "n_warm={n_warm}: occupancy must be bit-identical"
            );
            batched.check_invariants();
        }
    }

    #[test]
    fn seek_finger_matches_binary_search() {
        let mut pma: ClassicPma<u64> = ClassicPma::new();
        for (i, k) in (0..3_000u64).map(|k| k * 5).enumerate() {
            pma.insert(i, k).unwrap();
        }
        let mut finger = SeekFinger::new();
        for probe in (0..15_500u64).step_by(11) {
            let (rank, elem) = pma.lower_bound_seek_by(&mut finger, |x| x.cmp(&probe));
            let expected = pma.lower_bound_by(|x| x.cmp(&probe));
            assert_eq!(rank, expected, "probe {probe}");
            assert_eq!(elem, pma.get_rank_ref(rank), "probe {probe}");
        }
    }
}
