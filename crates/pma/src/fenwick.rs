//! A Fenwick (binary-indexed) tree over per-segment element counts.
//!
//! The classic PMA needs to translate a global rank into a segment index
//! quickly (`find the first segment whose prefix sum exceeds r`). A Fenwick
//! tree gives `O(log n)` point updates and prefix-search, which keeps the
//! baseline PMA honest when benchmarked against the HI PMA (whose rank tree
//! plays the same role).

/// Fenwick tree of `u64` counts with prefix-sum search.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    /// Creates a tree over `n` zero counts.
    pub fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Builds a tree from initial counts.
    pub fn from_counts(counts: &[u64]) -> Self {
        let mut f = Self::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            f.add(i, c as i64);
        }
        f
    }

    /// Number of leaves (segments).
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Returns `true` when the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` to the count at `index`.
    pub fn add(&mut self, index: usize, delta: i64) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of counts in `[0, index)`.
    pub fn prefix_sum(&self, index: usize) -> u64 {
        let mut i = index.min(self.len());
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Total of all counts.
    pub fn total(&self) -> u64 {
        self.prefix_sum(self.len())
    }

    /// The count at `index`.
    pub fn get(&self, index: usize) -> u64 {
        self.prefix_sum(index + 1) - self.prefix_sum(index)
    }

    /// Finds the segment containing the element of rank `rank` (0-based):
    /// the smallest `i` such that `prefix_sum(i + 1) > rank`. Also returns
    /// the rank of the element within that segment.
    ///
    /// Returns `None` when `rank ≥ total()`.
    pub fn find_rank(&self, rank: u64) -> Option<(usize, u64)> {
        if rank >= self.total() {
            return None;
        }
        let mut pos = 0usize;
        let mut remaining = rank;
        let mut bit = self.tree.len().next_power_of_two() / 2;
        while bit > 0 {
            let next = pos + bit;
            if next < self.tree.len() && self.tree[next] <= remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            bit /= 2;
        }
        Some((pos, remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(0);
        assert!(f.is_empty());
        assert_eq!(f.total(), 0);
        assert_eq!(f.find_rank(0), None);
    }

    #[test]
    fn add_and_prefix_sum() {
        let mut f = Fenwick::new(8);
        f.add(0, 3);
        f.add(3, 5);
        f.add(7, 2);
        assert_eq!(f.prefix_sum(0), 0);
        assert_eq!(f.prefix_sum(1), 3);
        assert_eq!(f.prefix_sum(4), 8);
        assert_eq!(f.prefix_sum(8), 10);
        assert_eq!(f.total(), 10);
        assert_eq!(f.get(3), 5);
        assert_eq!(f.get(1), 0);
    }

    #[test]
    fn from_counts_matches_manual() {
        let counts = vec![2, 0, 7, 1, 4];
        let f = Fenwick::from_counts(&counts);
        for (i, &count) in counts.iter().enumerate() {
            assert_eq!(f.get(i), count);
        }
        assert_eq!(f.total(), 14);
    }

    #[test]
    fn find_rank_locates_segments() {
        let f = Fenwick::from_counts(&[2, 0, 7, 1, 4]);
        assert_eq!(f.find_rank(0), Some((0, 0)));
        assert_eq!(f.find_rank(1), Some((0, 1)));
        assert_eq!(f.find_rank(2), Some((2, 0)));
        assert_eq!(f.find_rank(8), Some((2, 6)));
        assert_eq!(f.find_rank(9), Some((3, 0)));
        assert_eq!(f.find_rank(10), Some((4, 0)));
        assert_eq!(f.find_rank(13), Some((4, 3)));
        assert_eq!(f.find_rank(14), None);
    }

    #[test]
    fn subtraction_via_negative_delta() {
        let mut f = Fenwick::from_counts(&[5, 5, 5]);
        f.add(1, -3);
        assert_eq!(f.get(1), 2);
        assert_eq!(f.total(), 12);
    }

    #[test]
    fn find_rank_on_non_power_of_two_sizes() {
        for n in [1usize, 3, 5, 6, 7, 9, 13] {
            let counts: Vec<u64> = (0..n as u64).map(|i| i % 3 + 1).collect();
            let f = Fenwick::from_counts(&counts);
            let mut rank = 0u64;
            for (seg, &c) in counts.iter().enumerate() {
                for within in 0..c {
                    assert_eq!(f.find_rank(rank), Some((seg, within)), "n={n} rank={rank}");
                    rank += 1;
                }
            }
            assert_eq!(f.find_rank(rank), None);
        }
    }
}
