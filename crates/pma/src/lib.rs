//! Packed-memory arrays (sparse tables).
//!
//! This crate contains the paper's primary contribution — the **weakly
//! history-independent packed-memory array** ([`HiPma`], paper §3–§4) — and
//! the conventional density-threshold PMA it is benchmarked against
//! ([`ClassicPma`]).
//!
//! A packed-memory array maintains a dynamic sequence of elements, in
//! caller-specified (rank) order, inside an array of `Θ(N)` slots with `O(1)`
//! gaps between consecutive elements. It supports:
//!
//! * `Insert(i, x)` / `Delete(i)` — amortized `O(log² N)` element moves, and
//!   amortized `O(log² N / B + log_B N)` I/Os (with high probability for the
//!   HI variant, Theorem 1);
//! * `Query(i, j)` — a range of `k` elements in `O(1 + k/B)` I/Os given the
//!   starting rank.
//!
//! The history-independent variant guarantees that the bit layout of the
//! array reveals nothing about the order of past inserts and deletes beyond
//! the current contents (weak history independence, Definition 4 / Lemma 9).
//!
//! # Quick example
//!
//! ```
//! use pma::HiPma;
//! use hi_common::RankedSequence;
//!
//! let mut pma = HiPma::new(0xC0FFEE);
//! for (rank, value) in ["a", "b", "d"].iter().enumerate() {
//!     pma.insert(rank, value.to_string()).unwrap();
//! }
//! pma.insert(2, "c".to_string()).unwrap(); // insert by rank
//! assert_eq!(pma.to_vec(), vec!["a", "b", "c", "d"]);
//! assert_eq!(pma.range_query(1, 2).unwrap(), vec!["b", "c"]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub(crate) mod batch;
pub mod classic;
pub mod fenwick;
pub mod geometry;
pub mod hi_pma;
pub mod persist;
pub mod spread;
pub mod store;

pub use classic::{ClassicPma, DensityBands};
pub use geometry::Geometry;
pub use hi_pma::{BalanceRecord, HiPma};

// The sharded service layer moves whole engines onto worker threads; both
// PMAs must therefore stay `Send + Sync` (their counters/tracer handles are
// the only shared state, and those are thread-safe by construction). This is
// a compile-time audit: it fails to build if a non-`Send` field sneaks in.
#[cfg(test)]
mod send_sync_audit {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn pma_engines_are_send_and_sync() {
        assert_send_sync::<HiPma<u64>>();
        assert_send_sync::<HiPma<(u64, String)>>();
        assert_send_sync::<ClassicPma<u64>>();
    }
}
