//! # block-store
//!
//! The persistent layer of the anti-persistence reproduction: a real file on
//! a real filesystem, written at block granularity, whose quiescent contents
//! are a pure function of the logical state stored in it.
//!
//! The paper's headline claim (Bender et al., PODS 2016) is history
//! independence *on persistent storage* — it is not enough for the in-RAM
//! layout to be history independent if the bytes that actually hit the disk
//! leak the operation sequence. This crate supplies the storage substrate
//! that makes the claim testable end to end:
//!
//! * [`BlockFile`] — block-granular reads and writes over [`std::fs::File`],
//!   staged through a page-aligned scratch buffer, with a scripted
//!   [`FaultPlan`] that injects the storage fault universe — torn and short
//!   writes, transient and permanent read errors, short reads, disk-full,
//!   seeded bit rot — deterministically at block granularity (the
//!   [`WriteFuse`] of the original crash battery is now one plan kind).
//!   Transient faults are retried a fixed [`IO_RETRY_ATTEMPTS`] times —
//!   count-based, never clock-based, so behavior stays a pure function of
//!   the fault script.
//! * [`BlockStore`] — a checkpointed image of a slot-array structure (header
//!   block, occupancy-bitmap region, fixed-size-record slot region) with a
//!   journaled, atomic commit protocol: a torn flush either rolls back to
//!   the previous image or completes on recovery, never anything in between.
//! * [`Record`] — fixed-size serialization for slot payloads.
//!
//! ## Why the on-disk image is history independent
//!
//! A committed image is generated from exactly three inputs: the occupancy
//! bitmap, the records in slot order, and the header metadata (which
//! includes the layout seed). Vacant slots are written as zeros, the journal
//! is zeroed and truncated after every successful commit, and shrinking
//! images truncate the file — so at rest the file contains the serialized
//! layout and nothing else. When the in-RAM layout is itself canonicalized
//! to `f(contents, seed)` before flushing (see the facade's
//! `PersistentDict::flush`), the entire file becomes that same pure
//! function: an observer of the raw bytes learns the contents and nothing
//! about the history, and deleted records leave no trace
//! (`examples/secure_delete_audit.rs` greps the raw bytes to prove it).
//!
//! The mid-flush window is the one moment the disk holds more than the
//! image: the journal then contains the dirty blocks of the *new* image —
//! still only post-operation state, never the bytes being replaced.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod fault;
mod file;
mod record;
mod store;

pub use fault::{Fault, FaultPlan};
pub use file::{
    AlignedBuf, BlockFile, FileError, FileStats, WriteFuse, IO_RETRY_ATTEMPTS, PAGE_ALIGN,
};
pub use record::Record;
pub use store::{layout_fingerprint, BlockStore, ScrubReport, StoreMeta, StoreOptions, StoreStats};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A process-unique path under the system temp directory, for tests,
/// examples and benches that need a throwaway store file. The caller owns
/// cleanup (`std::fs::remove_file`); the file is not created.
pub fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ap-block-store-{tag}-{}-{seq}.bin",
        std::process::id()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_paths_are_unique() {
        let a = temp_path("t");
        let b = temp_path("t");
        assert_ne!(a, b);
    }
}
