//! The checkpointed on-disk image and its journaled, atomic commit protocol.
//!
//! ## File format (all integers little-endian `u64`)
//!
//! ```text
//! data file:      block 0                header: magic, version, block size,
//!                                        record size, total slots, len, seed,
//!                                        reserved (zero), layout fingerprint,
//!                                        checksum root, checksum
//!                 blocks 1..1+C          checksum region: one FNV-1a word
//!                                        per payload block, in block order
//!                                        (zero padded)
//!                 blocks 1+C..1+C+BM     occupancy bitmap words (zero padded)
//!                 blocks 1+C+BM..D       slot region: slot s at byte
//!                                        s*record_size; occupied slots hold
//!                                        the encoded record, vacant slots
//!                                        are zeros
//! journal file:   block 0                journal header: magic, block size,
//!                 (`<path>.journal`)     reserved (zero), dirty count, target
//!                                        data length, payload checksum,
//!                                        checksum
//!                 blocks 1..1+I          dirty block ids (zero padded)
//!                 blocks 1+I..1+I+count  dirty block images
//! ```
//!
//! Every byte of the image sits under a checksum: the header checks itself
//! (last field), the header's `checksum_root` covers the checksum region,
//! and the region's words cover the bitmap and slot blocks — so any bit of
//! rot anywhere surfaces as a typed [`FileError::Corrupt`] instead of a
//! silent misread. The per-block words are the same FNV-1a hashes the
//! incremental-commit dirty gate computes anyway, so checksumming adds no
//! extra hashing to a flush — only the (tiny) region itself.
//!
//! ## Commit protocol
//!
//! 1. Regenerate every payload (bitmap + slot) block of the new image in a
//!    page-aligned scratch buffer, hashing each; blocks whose hash differs
//!    from the committed image are appended (id + image) to the journal
//!    staging buffers. Then generate the checksum region from those hashes
//!    and the header from the region's running root, staging dirty ones the
//!    same way.
//! 2. Write the journal payload, sync, then write the journal header and
//!    sync again — the single-block header write is the commit point.
//! 3. Write the dirty blocks into the data file in place (resizing it first
//!    if the geometry changed) and sync.
//! 4. Zero the journal header, truncate the journal to zero length, sync.
//!
//! A crash before step 2 completes leaves the data file untouched (the old
//! image survives); a crash after it leaves a valid journal that
//! [`BlockStore::open`] replays idempotently. Either way the quiescent file
//! is exactly one committed image — never a blend, and never a byte of a
//! record that is not in the image.

use crate::file::{AlignedBuf, BlockFile, FileError, FileStats, WriteFuse};
use crate::record::Record;
use crate::FaultPlan;
use io_sim::Tracer;
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: u64 = u64::from_le_bytes(*b"APBSTOR1");
const JMAGIC: u64 = u64::from_le_bytes(*b"APBSJRN1");
const VERSION: u64 = 2;
const HEADER_FIELDS: usize = 11;
const JHEADER_FIELDS: usize = 7;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The layout fingerprint stored in the header: an FNV-1a hash of the
/// occupancy bitmap words plus the slot count. This is the quantity the
/// determinism and crash batteries pin — for a canonicalized image it is a
/// pure function of *(contents, seed)*.
pub fn layout_fingerprint(words: &[u64], total_slots: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        h = fnv1a(h, &w.to_le_bytes());
    }
    fnv1a(h, &total_slots.to_le_bytes())
}

fn put_u64(buf: &mut [u8], field: usize, v: u64) {
    buf[field * 8..field * 8 + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], field: usize) -> u64 {
    // Copy-based decode: the fixed-width stack array makes the length match
    // structural, where a `try_into().expect(…)` would put a panic on the
    // read path of every header field, bitmap word, and journal id.
    let mut word = [0u8; 8];
    word.copy_from_slice(&buf[field * 8..field * 8 + 8]);
    u64::from_le_bytes(word)
}

fn corrupt(block: u64, reason: &'static str) -> FileError {
    FileError::Corrupt { block, reason }
}

/// Tuning of a [`BlockStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Write granularity in bytes — every physical transfer moves exactly
    /// this many bytes. Must be a multiple of 8 and at least 128.
    pub block_size: usize,
    /// Whether to `fsync` between commit phases. Disabling keeps the
    /// *injected*-crash guarantees (the fault plan respects write order)
    /// but not real power-loss durability; tests disable it for speed.
    pub sync: bool,
}

impl StoreOptions {
    /// Durable options with the given block size.
    pub fn new(block_size: usize) -> Self {
        Self {
            block_size,
            sync: true,
        }
    }

    /// Disables `fsync` between commit phases.
    pub fn no_sync(mut self) -> Self {
        self.sync = false;
        self
    }

    fn validate(&self) -> Result<(), FileError> {
        if self.block_size < 128 || !self.block_size.is_multiple_of(8) {
            return Err(FileError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "block size must be a multiple of 8 and at least 128, got {}",
                    self.block_size
                ),
            )));
        }
        Ok(())
    }
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self::new(4096)
    }
}

/// The committed image's metadata, as stored in the header block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreMeta {
    /// Encoded size of one record in bytes.
    pub record_size: u64,
    /// Slots in the backing array (occupied plus vacant).
    pub total_slots: u64,
    /// Occupied slots (records stored).
    pub len: u64,
    /// The layout seed: the committed image is `f(contents, seed)` when the
    /// flushed layout was canonicalized with it.
    pub seed: u64,
    /// Commit counter, starting at 1 for this process's first commit. Never
    /// persisted (the header field is reserved-zero): a flush count on disk
    /// would itself be operation history. Resets to 0 on every open.
    pub generation: u64,
    /// [`layout_fingerprint`] of the committed bitmap.
    pub fingerprint: u64,
    /// FNV-1a hash of the checksum region's bytes — the root of the image's
    /// integrity chain (header checks itself, root checks the region, the
    /// region's words check every payload block).
    pub checksum_root: u64,
}

/// Physical transfer counters of both backing files.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// The data (image) file.
    pub data: FileStats,
    /// The journal sidecar file.
    pub journal: FileStats,
}

impl StoreStats {
    /// Total blocks written across both files.
    pub fn blocks_written(&self) -> u64 {
        self.data.blocks_written + self.journal.blocks_written
    }

    /// Total blocks read across both files.
    pub fn blocks_read(&self) -> u64 {
        self.data.blocks_read + self.journal.blocks_read
    }
}

/// The result of a [`BlockStore::scrub`] sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Blocks the sweep examined (the whole image).
    pub blocks_checked: u64,
    /// Blocks whose bytes failed their checksum (or could not be read),
    /// in ascending block order.
    pub corrupt: Vec<u64>,
}

impl ScrubReport {
    /// `true` when every block verified.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Derived block layout of one image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Geometry {
    block_size: u64,
    record_size: u64,
    total_slots: u64,
    checksum_blocks: u64,
    bitmap_blocks: u64,
    slot_blocks: u64,
}

impl Geometry {
    fn new(block_size: u64, record_size: u64, total_slots: u64) -> Self {
        let bitmap_bytes = total_slots.div_ceil(64) * 8;
        let slot_bytes = total_slots * record_size;
        let bitmap_blocks = bitmap_bytes.div_ceil(block_size);
        let slot_blocks = slot_bytes.div_ceil(block_size);
        Self {
            block_size,
            record_size,
            total_slots,
            checksum_blocks: ((bitmap_blocks + slot_blocks) * 8).div_ceil(block_size),
            bitmap_blocks,
            slot_blocks,
        }
    }

    fn bitmap_words(&self) -> u64 {
        self.total_slots.div_ceil(64)
    }

    /// Blocks covered by per-block checksums: bitmap plus slot region.
    fn payload_blocks(&self) -> u64 {
        self.bitmap_blocks + self.slot_blocks
    }

    /// First payload block id (header and checksum region precede it).
    fn payload_first(&self) -> u64 {
        1 + self.checksum_blocks
    }

    fn data_blocks(&self) -> u64 {
        1 + self.checksum_blocks + self.bitmap_blocks + self.slot_blocks
    }

    fn file_len(&self) -> u64 {
        self.data_blocks() * self.block_size
    }
}

/// Streams the slot region block by block: the k-th set bit of the bitmap
/// receives the k-th record of the iterator, vacant slots stay zero, and
/// records straddling a block boundary are carried into the next block
/// through a fixed stack buffer — no allocation per block.
struct SlotStream<'a, T: Record, I: Iterator<Item = T>> {
    words: &'a [u64],
    total_slots: u64,
    record_size: usize,
    records: I,
    next_slot: u64,
    consumed: u64,
    pos: u64,
    carry: [u8; 64],
    carry_len: usize,
}

impl<'a, T: Record, I: Iterator<Item = T>> SlotStream<'a, T, I> {
    fn new(words: &'a [u64], total_slots: u64, records: I) -> Self {
        Self {
            words,
            total_slots,
            record_size: T::SIZE,
            records,
            next_slot: 0,
            consumed: 0,
            pos: 0,
            carry: [0u8; 64],
            carry_len: 0,
        }
    }

    fn bit(&self, slot: u64) -> bool {
        self.words[(slot / 64) as usize] >> (slot % 64) & 1 != 0
    }

    /// Fills the next block of the slot region into `out` (zeroed by the
    /// caller, length = block size).
    fn fill_block(&mut self, out: &mut [u8]) -> Result<(), FileError> {
        let end = self.pos + out.len() as u64;
        if self.carry_len > 0 {
            out[..self.carry_len].copy_from_slice(&self.carry[..self.carry_len]);
            self.carry_len = 0;
        }
        let rs = self.record_size as u64;
        while self.next_slot < self.total_slots {
            let start = self.next_slot * rs;
            if start >= end {
                break;
            }
            let slot = self.next_slot;
            self.next_slot += 1;
            if !self.bit(slot) {
                continue;
            }
            let rec = self
                .records
                .next()
                .ok_or_else(|| corrupt(0, "record iterator ended before the bitmap's set bits"))?;
            self.consumed += 1;
            let mut tmp = [0u8; 64];
            rec.encode(&mut tmp[..self.record_size]);
            let off = (start - self.pos) as usize;
            let n = self.record_size.min(out.len() - off);
            out[off..off + n].copy_from_slice(&tmp[..n]);
            if n < self.record_size {
                self.carry[..self.record_size - n].copy_from_slice(&tmp[n..self.record_size]);
                self.carry_len = self.record_size - n;
            }
        }
        self.pos = end;
        Ok(())
    }

    fn finish(mut self, expected: u64) -> Result<(), FileError> {
        if self.consumed != expected {
            return Err(corrupt(0, "bitmap popcount and record count disagree"));
        }
        if self.records.next().is_some() {
            return Err(corrupt(0, "record iterator outlived the bitmap's set bits"));
        }
        Ok(())
    }
}

fn fill_bitmap_block(out: &mut [u8], words: &[u64], block_in_region: u64) {
    let first_word = (block_in_region as usize * out.len()) / 8;
    for (i, chunk) in out.chunks_mut(8).enumerate() {
        let w = words.get(first_word + i).copied().unwrap_or(0);
        chunk.copy_from_slice(&w.to_le_bytes());
    }
}

/// Audited encoder for one checksum-region word: word `k` of a region block
/// holds the FNV hash of one payload block's bytes. The hash is a pure
/// function of the committed image — which is itself `f(contents, seed)` —
/// so persisting it adds integrity without adding history.
fn encode_checksum_word(out: &mut [u8], k: usize, word: u64) {
    put_u64(out, k, word);
}

fn encode_header(out: &mut [u8], block_size: u64, meta: &StoreMeta) {
    out.fill(0);
    put_u64(out, 0, MAGIC);
    put_u64(out, 1, VERSION);
    put_u64(out, 2, block_size);
    put_u64(out, 3, meta.record_size);
    put_u64(out, 4, meta.total_slots);
    put_u64(out, 5, meta.len);
    put_u64(out, 6, meta.seed);
    // Field 7 is reserved and always zero: the commit counter stays in RAM
    // only, because a flush count on the platter would itself be operation
    // history — the image must be a function of (contents, seed) alone.
    put_u64(out, 7, 0);
    put_u64(out, 8, meta.fingerprint);
    put_u64(out, 9, meta.checksum_root);
    let sum = fnv1a(FNV_OFFSET, &out[..(HEADER_FIELDS - 1) * 8]);
    put_u64(out, HEADER_FIELDS - 1, sum);
}

fn encode_journal_header(
    out: &mut [u8],
    block_size: u64,
    count: u64,
    target_len: u64,
    payload_sum: u64,
) {
    out.fill(0);
    put_u64(out, 0, JMAGIC);
    put_u64(out, 1, block_size);
    // Field 2 is reserved and always zero. An earlier revision journaled the
    // commit generation here, but recovery never reads it — that was a
    // transient copy of operation history on the platter, exactly what the
    // anti-persistence goal forbids. hi-lint's persisted-history rule pins
    // this encoder's field list so the leak cannot come back.
    put_u64(out, 2, 0);
    put_u64(out, 3, count);
    put_u64(out, 4, target_len);
    put_u64(out, 5, payload_sum);
    let sum = fnv1a(FNV_OFFSET, &out[..(JHEADER_FIELDS - 1) * 8]);
    put_u64(out, JHEADER_FIELDS - 1, sum);
}

fn decode_header(buf: &[u8], expect_block_size: u64) -> Result<StoreMeta, FileError> {
    if get_u64(buf, 0) != MAGIC || get_u64(buf, 1) != VERSION {
        return Err(corrupt(0, "bad store header magic/version"));
    }
    let sum = fnv1a(FNV_OFFSET, &buf[..(HEADER_FIELDS - 1) * 8]);
    if get_u64(buf, HEADER_FIELDS - 1) != sum {
        return Err(corrupt(0, "store header checksum mismatch"));
    }
    if get_u64(buf, 2) != expect_block_size {
        return Err(corrupt(
            0,
            "store header block size disagrees with the open options",
        ));
    }
    if get_u64(buf, 7) != 0 {
        return Err(corrupt(0, "store header reserved field must be zero"));
    }
    // The checksum covers the fields; the rest of the block is structural
    // padding that a canonical image always zeroes. Enforcing that closes
    // the one header region a bit flip could otherwise hide in.
    if buf[HEADER_FIELDS * 8..].iter().any(|&b| b != 0) {
        return Err(corrupt(0, "store header padding not zeroed"));
    }
    Ok(StoreMeta {
        record_size: get_u64(buf, 3),
        total_slots: get_u64(buf, 4),
        len: get_u64(buf, 5),
        seed: get_u64(buf, 6),
        generation: 0,
        fingerprint: get_u64(buf, 8),
        checksum_root: get_u64(buf, 9),
    })
}

/// The journal sidecar's path for a data file: `<path>.journal`.
pub(crate) fn journal_path_for(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".journal");
    PathBuf::from(os)
}

/// A file-backed image of a slot-array structure with atomic, journaled
/// commits. See the module docs for the format and protocol.
#[derive(Debug)]
pub struct BlockStore {
    data: BlockFile,
    journal: BlockFile,
    opts: StoreOptions,
    meta: Option<StoreMeta>,
    geo: Option<Geometry>,
    /// Per-block FNV hash of the committed image (index = block id); empty
    /// until a commit or a [`Self::load`] populates it, in which case the
    /// next commit rewrites every block.
    block_hashes: Vec<u64>,
    scratch_hashes: Vec<u64>,
    ids: Vec<u64>,
    block_buf: AlignedBuf,
    ids_buf: AlignedBuf,
    payload: AlignedBuf,
    poisoned: bool,
}

impl BlockStore {
    /// Opens (creating if absent) the store at `path`, replaying a pending
    /// journal first if a previous process crashed mid-commit. Never
    /// panics on a malformed file: a zero-length file is simply
    /// uninitialized, a truncated header is a typed [`FileError::ShortRead`],
    /// and a mangled one is a typed [`FileError::Corrupt`].
    pub fn open(path: impl AsRef<Path>, opts: StoreOptions) -> Result<Self, FileError> {
        opts.validate()?;
        let path = path.as_ref();
        let data = BlockFile::open(path, opts.block_size)?;
        let journal = BlockFile::open(journal_path_for(path), opts.block_size)?;
        let mut store = Self {
            data,
            journal,
            opts,
            meta: None,
            geo: None,
            block_hashes: Vec::new(),
            scratch_hashes: Vec::new(),
            ids: Vec::new(),
            block_buf: AlignedBuf::new(),
            ids_buf: AlignedBuf::new(),
            payload: AlignedBuf::new(),
            poisoned: false,
        };
        store.recover()?;
        store.read_meta()?;
        Ok(store)
    }

    /// The committed image's metadata, or `None` before the first commit.
    pub fn meta(&self) -> Option<StoreMeta> {
        self.meta
    }

    /// `true` once an image has been committed.
    pub fn is_initialized(&self) -> bool {
        self.meta.is_some()
    }

    /// The data file's path.
    pub fn path(&self) -> &Path {
        self.data.path()
    }

    /// The journal sidecar's path.
    pub fn journal_path(&self) -> &Path {
        self.journal.path()
    }

    /// The store's options.
    pub fn options(&self) -> StoreOptions {
        self.opts
    }

    /// Physical transfer counters of both files.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            data: self.data.stats(),
            journal: self.journal.stats(),
        }
    }

    /// Arms the crash-injection fuse on both files (one shared budget).
    pub fn set_fuse(&mut self, fuse: WriteFuse) {
        self.data.set_fuse(fuse.clone());
        self.journal.set_fuse(fuse);
    }

    /// Arms a fault script on both files (one shared state, so injection
    /// indices count the store's global transfer stream).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.data.set_fault_plan(plan.clone());
        self.journal.set_fault_plan(plan);
    }

    /// Routes both files' physical transfers into a simulated-DAM ledger.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.data.set_tracer(tracer.clone());
        self.journal.set_tracer(tracer);
    }

    /// `true` once an injected crash or I/O error has fired mid-commit; the
    /// store must be reopened (which replays or discards the journal) or
    /// repaired from a replica.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Commits a new image atomically: the slot array described by the
    /// occupancy bitmap `words` (one bit per slot, `total_slots` bits) and
    /// `records` (one per set bit, in slot order), plus the metadata that
    /// makes the image self-describing. Only blocks that differ from the
    /// committed image are written (via the journal). Returns the committed
    /// generation; a contents-and-metadata no-op writes nothing.
    ///
    /// Steady-state commits are allocation-free: all staging buffers are
    /// reused and were sized by the first (full) commit.
    pub fn commit<T: Record>(
        &mut self,
        words: &[u64],
        total_slots: u64,
        len: u64,
        records: impl IntoIterator<Item = T>,
        seed: u64,
    ) -> Result<u64, FileError> {
        if self.poisoned {
            return Err(FileError::Poisoned);
        }
        let result = self.commit_inner(words, total_slots, len, records.into_iter(), seed);
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }

    fn commit_inner<T: Record>(
        &mut self,
        words: &[u64],
        total_slots: u64,
        len: u64,
        records: impl Iterator<Item = T>,
        seed: u64,
    ) -> Result<u64, FileError> {
        let bs = self.opts.block_size;
        let b = bs as u64;
        assert!(T::SIZE > 0 && T::SIZE <= T::MAX_SIZE, "record size invalid");
        assert!(T::SIZE <= bs, "record must fit in one block");
        let geo = Geometry::new(b, T::SIZE as u64, total_slots);
        assert_eq!(
            words.len() as u64,
            geo.bitmap_words(),
            "occupancy words must cover exactly total_slots bits"
        );
        let popcount: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
        if popcount != len {
            return Err(corrupt(0, "bitmap popcount and len disagree"));
        }

        let data_blocks = geo.data_blocks() as usize;
        let full = self.geo != Some(geo) || self.block_hashes.len() != data_blocks;

        self.ids.clear();
        self.ids.reserve(data_blocks);
        self.scratch_hashes.clear();
        self.scratch_hashes.resize(data_blocks, 0);
        self.block_buf.reserve(bs);
        self.payload.reserve(data_blocks * bs);
        self.ids_buf
            .reserve(((data_blocks as u64 * 8).div_ceil(b) * b) as usize);

        // Phase 1a: regenerate the payload (bitmap + slot) blocks, hash
        // each, stage the dirty ones for the journal.
        let first = geo.payload_first();
        let mut payload_len = 0usize;
        let mut stream = SlotStream::new(words, total_slots, records);
        for block in first..data_blocks as u64 {
            let buf = self.block_buf.get_mut(bs);
            buf.fill(0);
            if block < first + geo.bitmap_blocks {
                fill_bitmap_block(buf, words, block - first);
            } else {
                stream.fill_block(buf)?;
            }
            let hash = fnv1a(FNV_OFFSET, buf);
            self.scratch_hashes[block as usize] = hash;
            if full || self.block_hashes[block as usize] != hash {
                self.ids.push(block);
                self.payload.get_mut(payload_len + bs)[payload_len..].copy_from_slice(buf);
                payload_len += bs;
            }
        }
        stream.finish(len)?;

        // Phase 1b: the checksum region persists the very hashes the dirty
        // gate just computed, one word per payload block; the running FNV
        // over the region's bytes becomes the header's checksum root.
        let words_per_block = bs / 8;
        let mut checksum_root = FNV_OFFSET;
        for block in 1..first {
            let buf = self.block_buf.get_mut(bs);
            buf.fill(0);
            let base = (block - 1) as usize * words_per_block;
            for k in 0..words_per_block {
                if ((base + k) as u64) < geo.payload_blocks() {
                    encode_checksum_word(buf, k, self.scratch_hashes[first as usize + base + k]);
                }
            }
            checksum_root = fnv1a(checksum_root, buf);
            let hash = fnv1a(FNV_OFFSET, buf);
            self.scratch_hashes[block as usize] = hash;
            if full || self.block_hashes[block as usize] != hash {
                self.ids.push(block);
                self.payload.get_mut(payload_len + bs)[payload_len..].copy_from_slice(buf);
                payload_len += bs;
            }
        }

        let fingerprint = layout_fingerprint(words, total_slots);
        let prev = self.meta;
        let unchanged = StoreMeta {
            record_size: T::SIZE as u64,
            total_slots,
            len,
            seed,
            generation: prev.map_or(0, |m| m.generation),
            fingerprint,
            checksum_root,
        };
        if self.ids.is_empty() && prev == Some(unchanged) {
            return Ok(unchanged.generation);
        }
        let meta = StoreMeta {
            generation: unchanged.generation + 1,
            ..unchanged
        };
        {
            let buf = self.block_buf.get_mut(bs);
            encode_header(buf, b, &meta);
            let hash = fnv1a(FNV_OFFSET, buf);
            self.scratch_hashes[0] = hash;
            self.ids.push(0);
            self.payload.get_mut(payload_len + bs)[payload_len..].copy_from_slice(buf);
            payload_len += bs;
        }

        // Phase 2: journal payload, sync, journal header, sync (the commit
        // point is the single-block header write).
        let count = self.ids.len() as u64;
        let ids_blocks = (count * 8).div_ceil(b);
        let ids_area_len = (ids_blocks * b) as usize;
        {
            let area = self.ids_buf.get_mut(ids_area_len);
            area.fill(0);
            for (i, id) in self.ids.iter().enumerate() {
                area[i * 8..i * 8 + 8].copy_from_slice(&id.to_le_bytes());
            }
        }
        let payload_sum = fnv1a(
            fnv1a(FNV_OFFSET, self.ids_buf.get(ids_area_len)),
            self.payload.get(payload_len),
        );
        self.journal
            .write_blocks(1, self.ids_buf.get(ids_area_len))?;
        self.journal
            .write_blocks(1 + ids_blocks, self.payload.get(payload_len))?;
        if self.opts.sync {
            self.journal.sync()?;
        }
        encode_journal_header(
            self.block_buf.get_mut(bs),
            b,
            count,
            geo.file_len(),
            payload_sum,
        );
        let jheader = self.block_buf.get(bs);
        self.journal.write_blocks(0, jheader)?;
        if self.opts.sync {
            self.journal.sync()?;
        }

        // Phase 3: apply in place.
        self.data.set_len(geo.file_len())?;
        for (i, &id) in self.ids.iter().enumerate() {
            let chunk = &self.payload.get(payload_len)[i * bs..(i + 1) * bs];
            self.data.write_blocks(id, chunk)?;
        }
        if self.opts.sync {
            self.data.sync()?;
        }

        // Phase 4: retire the journal.
        self.clear_journal()?;

        std::mem::swap(&mut self.block_hashes, &mut self.scratch_hashes);
        // Pre-size the swapped-out vector now, while we are still on the
        // "first commit may allocate" path: the next commit's resize then
        // finds capacity and steady-state flushes stay allocation-free.
        self.scratch_hashes.resize(data_blocks, 0);
        self.geo = Some(geo);
        self.meta = Some(meta);
        Ok(meta.generation)
    }

    /// Reads the committed image back: the bitmap words and the records in
    /// slot (= rank) order. Verifies the whole integrity chain — header
    /// checksum, checksum root, every payload block's checksum — plus the
    /// fingerprint, the popcount, and that every vacant byte of the image
    /// is zero (the anti-persistence invariant). Also primes the
    /// incremental-commit block hashes, so a commit following a load only
    /// writes changed blocks.
    pub fn load<T: Record>(&mut self) -> Result<(StoreMeta, Vec<u64>, Vec<T>), FileError> {
        let meta = self
            .meta
            .ok_or_else(|| corrupt(0, "store holds no committed image"))?;
        if meta.record_size != T::SIZE as u64 {
            return Err(corrupt(
                0,
                "store holds records of a different size than requested",
            ));
        }
        let bs = self.opts.block_size;
        let b = bs as u64;
        let geo = Geometry::new(b, meta.record_size, meta.total_slots);
        let first = geo.payload_first() as usize;
        let mut hashes = vec![0u64; geo.data_blocks() as usize];

        let header = self.block_buf.get_mut(bs);
        self.data.read_blocks(0, header)?;
        hashes[0] = fnv1a(FNV_OFFSET, header);

        let mut region = vec![0u8; (geo.checksum_blocks * b) as usize];
        self.data.read_blocks(1, &mut region)?;
        if fnv1a(FNV_OFFSET, &region) != meta.checksum_root {
            return Err(corrupt(1, "checksum region does not match header root"));
        }
        for (i, chunk) in region.chunks(bs).enumerate() {
            hashes[1 + i] = fnv1a(FNV_OFFSET, chunk);
        }

        let mut bitmap_bytes = vec![0u8; (geo.bitmap_blocks * b) as usize];
        self.data.read_blocks(first as u64, &mut bitmap_bytes)?;
        for (i, chunk) in bitmap_bytes.chunks(bs).enumerate() {
            if fnv1a(FNV_OFFSET, chunk) != get_u64(&region, i) {
                return Err(corrupt(
                    (first + i) as u64,
                    "bitmap block checksum mismatch",
                ));
            }
            hashes[first + i] = fnv1a(FNV_OFFSET, chunk);
        }
        let words: Vec<u64> = (0..geo.bitmap_words() as usize)
            .map(|w| get_u64(&bitmap_bytes, w))
            .collect();
        if bitmap_bytes[geo.bitmap_words() as usize * 8..]
            .iter()
            .any(|&x| x != 0)
        {
            return Err(corrupt(first as u64, "bitmap padding not zeroed"));
        }
        if meta.total_slots % 64 != 0
            && words
                .last()
                .is_some_and(|w| w >> (meta.total_slots % 64) != 0)
        {
            return Err(corrupt(
                first as u64,
                "bitmap bits beyond total_slots not zeroed",
            ));
        }
        let popcount: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
        if popcount != meta.len {
            return Err(corrupt(
                first as u64,
                "bitmap popcount and header len disagree",
            ));
        }
        if layout_fingerprint(&words, meta.total_slots) != meta.fingerprint {
            return Err(corrupt(first as u64, "layout fingerprint mismatch"));
        }

        let slot_first = first + geo.bitmap_blocks as usize;
        let mut slot_bytes = vec![0u8; (geo.slot_blocks * b) as usize];
        self.data.read_blocks(slot_first as u64, &mut slot_bytes)?;
        for (i, chunk) in slot_bytes.chunks(bs).enumerate() {
            if fnv1a(FNV_OFFSET, chunk) != get_u64(&region, geo.bitmap_blocks as usize + i) {
                return Err(corrupt(
                    (slot_first + i) as u64,
                    "slot block checksum mismatch",
                ));
            }
            hashes[slot_first + i] = fnv1a(FNV_OFFSET, chunk);
        }
        let rs = meta.record_size as usize;
        let mut records = Vec::with_capacity(meta.len as usize);
        for slot in 0..meta.total_slots {
            let bytes = &slot_bytes[(slot * meta.record_size) as usize..][..rs];
            if words[(slot / 64) as usize] >> (slot % 64) & 1 != 0 {
                records.push(T::decode(bytes));
            } else if bytes.iter().any(|&x| x != 0) {
                return Err(corrupt(
                    slot_first as u64,
                    "vacant slot holds nonzero bytes",
                ));
            }
        }
        if slot_bytes[(meta.total_slots * meta.record_size) as usize..]
            .iter()
            .any(|&x| x != 0)
        {
            return Err(corrupt(slot_first as u64, "slot-region padding not zeroed"));
        }

        self.block_hashes = hashes;
        self.geo = Some(geo);
        Ok((meta, words, records))
    }

    /// Sweeps the whole committed image, verifying every block against the
    /// integrity chain, and reports all blocks that fail — without decoding
    /// a single record, and without stopping at the first hit. A block that
    /// cannot be read at all also counts as corrupt. An uninitialized store
    /// scrubs clean trivially.
    pub fn scrub(&mut self) -> Result<ScrubReport, FileError> {
        let Some(meta) = self.meta else {
            return Ok(ScrubReport::default());
        };
        let bs = self.opts.block_size;
        let b = bs as u64;
        let geo = Geometry::new(b, meta.record_size, meta.total_slots);
        let first = geo.payload_first();
        let mut report = ScrubReport {
            blocks_checked: geo.data_blocks(),
            corrupt: Vec::new(),
        };

        // Header: must read, decode, and agree with the metadata this
        // handle opened with.
        let header_ok = {
            let buf = self.block_buf.get_mut(bs);
            match self.data.read_blocks(0, buf) {
                Ok(()) => decode_header(buf, b).is_ok_and(|m| {
                    StoreMeta {
                        generation: meta.generation,
                        ..m
                    } == meta
                }),
                Err(_) => false,
            }
        };
        if !header_ok {
            report.corrupt.push(0);
        }

        // Checksum region: its running FNV must match the header's root.
        // A mismatch cannot be isolated below region granularity, so every
        // region block is reported (repair rewrites only what differs).
        let mut region = vec![0u8; (geo.checksum_blocks * b) as usize];
        let region_ok = match self.data.read_blocks(1, &mut region) {
            Ok(()) => fnv1a(FNV_OFFSET, &region) == meta.checksum_root,
            Err(_) => false,
        };
        if !region_ok {
            report.corrupt.extend(1..first);
        }

        // Payload blocks, each against its region word (best effort even
        // when the region itself is suspect).
        for i in 0..geo.payload_blocks() {
            let block = first + i;
            let buf = self.block_buf.get_mut(bs);
            let ok = match self.data.read_blocks(block, buf) {
                Ok(()) => fnv1a(FNV_OFFSET, buf) == get_u64(&region, i as usize),
                Err(_) => false,
            };
            if !ok {
                report.corrupt.push(block);
            }
        }
        Ok(report)
    }

    /// Like [`Self::scrub`], but strict: `Ok(())` only when every block of
    /// the image verifies, otherwise the first corrupt block as a typed
    /// error.
    pub fn verify_all(&mut self) -> Result<(), FileError> {
        let report = self.scrub()?;
        match report.corrupt.first() {
            None => Ok(()),
            Some(&block) => Err(corrupt(block, "scrub found a checksum mismatch")),
        }
    }

    /// Repairs this store from a replica holding the same committed
    /// contents: every block whose bytes differ from `source` is rewritten
    /// from it, and the result is re-verified. Returns the number of blocks
    /// rewritten.
    ///
    /// History independence is what makes this a byte-level repair: any
    /// replica that committed the same *(contents, seed)* — regardless of
    /// the operation history that produced it — holds a byte-identical
    /// image, so a clean peer is always a valid source.
    pub fn repair_from(&mut self, source: &mut BlockStore) -> Result<u64, FileError> {
        if self.opts.block_size != source.opts.block_size {
            return Err(corrupt(0, "repair source has a different block size"));
        }
        source.verify_all()?;
        let smeta = source
            .meta
            .ok_or_else(|| corrupt(0, "repair source holds no committed image"))?;
        let bs = self.opts.block_size;
        let b = bs as u64;
        let geo = Geometry::new(b, smeta.record_size, smeta.total_slots);
        self.data.set_len(geo.file_len())?;
        let mut mine = vec![0u8; bs];
        let mut repaired = 0u64;
        for block in 0..geo.data_blocks() {
            let theirs = self.block_buf.get_mut(bs);
            source.data.read_blocks(block, theirs)?;
            // A block of ours that cannot be read at all is simply treated
            // as differing.
            let same = self
                .data
                .read_blocks(block, &mut mine)
                .is_ok_and(|()| mine == *theirs);
            if !same {
                self.data.write_blocks(block, theirs)?;
                repaired += 1;
            }
        }
        if self.opts.sync {
            self.data.sync()?;
        }
        self.clear_journal()?;
        self.meta = Some(StoreMeta {
            generation: self.meta.map_or(0, |m| m.generation),
            ..smeta
        });
        self.geo = Some(geo);
        // Force the next commit to rewrite from scratch rather than trust
        // hashes from before the repair.
        self.block_hashes.clear();
        self.verify_all()?;
        self.poisoned = false;
        Ok(repaired)
    }

    /// The raw bytes of the data file and the journal file, for audits that
    /// scan persistent storage for traces of deleted records.
    pub fn raw_bytes(&self) -> Result<(Vec<u8>, Vec<u8>), FileError> {
        Ok((
            std::fs::read(self.data.path())?,
            std::fs::read(self.journal.path())?,
        ))
    }

    fn read_meta(&mut self) -> Result<(), FileError> {
        let bs = self.opts.block_size;
        let len = self.data.len()?;
        if len == 0 {
            self.meta = None;
            return Ok(());
        }
        if len < bs as u64 {
            // Truncated mid-header: typed, recoverable by repair, never a
            // panic.
            return Err(FileError::ShortRead {
                block: 0,
                wanted: bs,
            });
        }
        let buf = self.block_buf.get_mut(bs);
        self.data.read_blocks(0, buf)?;
        let meta = decode_header(buf, bs as u64)?;
        let geo = Geometry::new(bs as u64, meta.record_size, meta.total_slots);
        if len != geo.file_len() {
            return Err(corrupt(
                0,
                "data file length disagrees with header geometry",
            ));
        }
        self.meta = Some(meta);
        Ok(())
    }

    /// Replays a valid pending journal (crash after the commit point) or
    /// discards a torn one (crash before it).
    fn recover(&mut self) -> Result<(), FileError> {
        let bs = self.opts.block_size;
        let b = bs as u64;
        let jlen = self.journal.len()?;
        if jlen < b {
            if jlen != 0 {
                self.journal.set_len(0)?;
            }
            return Ok(());
        }
        let (valid_header, count, target_len, payload_sum) = {
            let header = self.block_buf.get_mut(bs);
            self.journal.read_blocks(0, header)?;
            let sum = fnv1a(FNV_OFFSET, &header[..(JHEADER_FIELDS - 1) * 8]);
            let ok = get_u64(header, 0) == JMAGIC
                && get_u64(header, 1) == b
                && get_u64(header, 2) == 0
                && get_u64(header, JHEADER_FIELDS - 1) == sum;
            (
                ok,
                get_u64(header, 3),
                get_u64(header, 4),
                get_u64(header, 5),
            )
        };
        if !valid_header {
            return self.clear_journal();
        }
        let ids_blocks = (count * 8).div_ceil(b);
        if jlen < (1 + ids_blocks + count) * b {
            return self.clear_journal();
        }
        let mut ids_area = vec![0u8; (ids_blocks * b) as usize];
        self.journal.read_blocks(1, &mut ids_area)?;
        let mut payload = vec![0u8; (count * b) as usize];
        self.journal.read_blocks(1 + ids_blocks, &mut payload)?;
        if fnv1a(fnv1a(FNV_OFFSET, &ids_area), &payload) != payload_sum {
            return self.clear_journal();
        }
        self.data.set_len(target_len)?;
        for i in 0..count as usize {
            let id = get_u64(&ids_area, i);
            self.data.write_blocks(id, &payload[i * bs..(i + 1) * bs])?;
        }
        if self.opts.sync {
            self.data.sync()?;
        }
        self.clear_journal()
    }

    fn clear_journal(&mut self) -> Result<(), FileError> {
        let bs = self.opts.block_size;
        if self.journal.len()? >= bs as u64 {
            let buf = self.block_buf.get_mut(bs);
            buf.fill(0);
            let zeros = self.block_buf.get(bs);
            self.journal.write_blocks(0, zeros)?;
        }
        self.journal.set_len(0)?;
        if self.opts.sync {
            self.journal.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp_path;

    const B: usize = 128;

    fn opts() -> StoreOptions {
        StoreOptions::new(B).no_sync()
    }

    /// A bitmap with the given slots set, packed into words.
    fn words_for(total_slots: u64, set: &[u64]) -> Vec<u64> {
        let mut words = vec![0u64; total_slots.div_ceil(64) as usize];
        for &s in set {
            assert!(s < total_slots);
            words[(s / 64) as usize] |= 1 << (s % 64);
        }
        words
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(journal_path_for(path));
    }

    #[test]
    fn fresh_store_is_uninitialized() {
        let path = temp_path("store-fresh");
        let store = BlockStore::open(&path, opts()).unwrap();
        assert!(!store.is_initialized());
        assert!(store.meta().is_none());
        cleanup(&path);
    }

    #[test]
    fn open_tolerates_a_pre_created_zero_length_file() {
        let path = temp_path("store-zerolen");
        std::fs::write(&path, b"").unwrap();
        let store = BlockStore::open(&path, opts()).unwrap();
        assert!(!store.is_initialized());
        cleanup(&path);
    }

    #[test]
    fn open_rejects_a_file_truncated_mid_header() {
        let path = temp_path("store-midheader");
        std::fs::write(&path, vec![0xAAu8; B / 2]).unwrap();
        let err = BlockStore::open(&path, opts()).unwrap_err();
        assert!(matches!(err, FileError::ShortRead { block: 0, .. }));
        cleanup(&path);
    }

    #[test]
    fn open_rejects_a_mismatched_block_size_typed() {
        let path = temp_path("store-badbs");
        {
            let mut store = BlockStore::open(&path, opts()).unwrap();
            let words = words_for(64, &[0]);
            store.commit(&words, 64, 1, [7u64], 0).unwrap();
        }
        let err = BlockStore::open(&path, StoreOptions::new(256).no_sync()).unwrap_err();
        assert!(matches!(err, FileError::Corrupt { block: 0, .. }));
        cleanup(&path);
    }

    #[test]
    fn commit_load_roundtrip() {
        let path = temp_path("store-roundtrip");
        let slots: Vec<u64> = vec![3, 7, 64, 65, 200];
        let words = words_for(256, &slots);
        let records: Vec<u64> = vec![30, 70, 640, 650, 2000];
        {
            let mut store = BlockStore::open(&path, opts()).unwrap();
            let generation = store
                .commit(&words, 256, 5, records.iter().copied(), 0xC0FFEE)
                .unwrap();
            assert_eq!(generation, 1);
        }
        let mut store = BlockStore::open(&path, opts()).unwrap();
        let (meta, back_words, back_records) = store.load::<u64>().unwrap();
        assert_eq!(meta.seed, 0xC0FFEE);
        assert_eq!(meta.len, 5);
        assert_eq!(meta.total_slots, 256);
        assert_eq!(back_words, words);
        assert_eq!(back_records, records);
        assert_eq!(meta.fingerprint, layout_fingerprint(&words, 256));
        cleanup(&path);
    }

    #[test]
    fn records_straddle_block_boundaries() {
        // 16-byte records with a 128-byte block: 8 per block, and an
        // occupancy pattern that exercises carry across every boundary.
        let path = temp_path("store-straddle");
        let total = 100u64;
        let set: Vec<u64> = (0..total).filter(|s| s % 3 != 1).collect();
        let words = words_for(total, &set);
        let records: Vec<(u64, u64)> = set.iter().map(|&s| (s, s * s + 1)).collect();
        let mut store = BlockStore::open(&path, opts()).unwrap();
        store
            .commit(&words, total, set.len() as u64, records.iter().copied(), 9)
            .unwrap();
        let mut store = BlockStore::open(&path, opts()).unwrap();
        let (_, _, back) = store.load::<(u64, u64)>().unwrap();
        assert_eq!(back, records);
        cleanup(&path);
    }

    #[test]
    fn incremental_commit_writes_only_changed_blocks() {
        let path = temp_path("store-incremental");
        let total = 2048u64;
        let set: Vec<u64> = (0..total).step_by(2).collect();
        let words = words_for(total, &set);
        let records: Vec<u64> = set.iter().map(|&s| s + 1).collect();
        let mut store = BlockStore::open(&path, opts()).unwrap();
        store
            .commit(&words, total, set.len() as u64, records.iter().copied(), 1)
            .unwrap();
        let full_writes = store.stats().blocks_written();

        // Change one record's value: one slot block, its checksum-region
        // block, and the header differ (three data writes), journaled as
        // ids + three payload blocks + the journal header, plus the zero
        // block that retires the journal — nine block writes instead of a
        // full image.
        let mut records2 = records.clone();
        records2[10] = 999_999;
        store
            .commit(&words, total, set.len() as u64, records2.iter().copied(), 1)
            .unwrap();
        let delta = store.stats().blocks_written() - full_writes;
        assert!(
            delta <= 9,
            "one-record change should touch a handful of blocks, wrote {delta}"
        );
        let gen = store.meta().unwrap().generation;
        assert_eq!(gen, 2);

        // Identical contents: a no-op, zero writes, same generation.
        store
            .commit(&words, total, set.len() as u64, records2.iter().copied(), 1)
            .unwrap();
        assert_eq!(store.stats().blocks_written() - full_writes, delta);
        assert_eq!(store.meta().unwrap().generation, 2);
        cleanup(&path);
    }

    #[test]
    fn load_primes_incremental_hashes() {
        let path = temp_path("store-load-primes");
        let total = 1024u64;
        let set: Vec<u64> = (0..total).step_by(3).collect();
        let words = words_for(total, &set);
        let records: Vec<u64> = set.iter().map(|&s| s * 7).collect();
        {
            let mut store = BlockStore::open(&path, opts()).unwrap();
            store
                .commit(&words, total, set.len() as u64, records.iter().copied(), 5)
                .unwrap();
        }
        let mut store = BlockStore::open(&path, opts()).unwrap();
        store.load::<u64>().unwrap();
        let before = store.stats().blocks_written();
        store
            .commit(&words, total, set.len() as u64, records.iter().copied(), 5)
            .unwrap();
        assert_eq!(
            store.stats().blocks_written(),
            before,
            "re-committing the loaded image must be a no-op"
        );
        cleanup(&path);
    }

    #[test]
    fn crash_before_commit_point_rolls_back() {
        let path = temp_path("store-rollback");
        let total = 512u64;
        let set1: Vec<u64> = (0..total).step_by(4).collect();
        let words1 = words_for(total, &set1);
        let mut store = BlockStore::open(&path, opts()).unwrap();
        store
            .commit(&words1, total, set1.len() as u64, set1.iter().copied(), 2)
            .unwrap();

        // Kill after one journal block: the header never lands, so the
        // journal is torn and the old image must survive.
        store.set_fuse(WriteFuse::after(1));
        let set2: Vec<u64> = (0..total).step_by(2).collect();
        let words2 = words_for(total, &set2);
        let recs2: Vec<u64> = set2.iter().map(|&s| s + 1).collect();
        let err = store
            .commit(&words2, total, set2.len() as u64, recs2.iter().copied(), 2)
            .unwrap_err();
        assert!(err.to_string().contains("injected crash"));
        assert!(store.is_poisoned());
        drop(store);

        let mut store = BlockStore::open(&path, opts()).unwrap();
        let (_meta, words, recs) = store.load::<u64>().unwrap();
        assert_eq!(words, words1);
        assert_eq!(recs, set1);
        assert_eq!(store.journal.len().unwrap(), 0);
        cleanup(&path);
    }

    #[test]
    fn crash_after_commit_point_replays_forward() {
        let path = temp_path("store-replay");
        let total = 512u64;
        let set1: Vec<u64> = (0..total).step_by(4).collect();
        let words1 = words_for(total, &set1);
        let recs1: Vec<u64> = set1.to_vec();
        let mut store = BlockStore::open(&path, opts()).unwrap();
        store
            .commit(&words1, total, set1.len() as u64, recs1.iter().copied(), 2)
            .unwrap();
        // The second commit dirties every block again (occupancy doubles),
        // so its journal is the same size as the first commit's. Allow the
        // whole journal plus one data block, then kill: the commit point
        // has passed, so recovery must complete the flush.
        let journal_writes_for_full = store.stats().journal.blocks_written;
        store.set_fuse(WriteFuse::after(journal_writes_for_full + 1));
        let set2: Vec<u64> = (0..total).step_by(2).collect();
        let words2 = words_for(total, &set2);
        let recs2: Vec<u64> = set2.iter().map(|&s| s + 1).collect();
        store
            .commit(&words2, total, set2.len() as u64, recs2.iter().copied(), 2)
            .unwrap_err();
        drop(store);

        let mut store = BlockStore::open(&path, opts()).unwrap();
        let (_meta, words, recs) = store.load::<u64>().unwrap();
        assert_eq!(words, words2);
        assert_eq!(recs, recs2);
        cleanup(&path);
    }

    #[test]
    fn committed_image_carries_no_commit_counter() {
        // Committing A, then B, then A again must leave the file
        // byte-identical to the first commit of A: if any counter of past
        // flushes reached the platter, the images would differ.
        let total = 256u64;
        let set_a: Vec<u64> = (0..total).step_by(4).collect();
        let set_b: Vec<u64> = (0..total).step_by(2).collect();
        let commit = |store: &mut BlockStore, set: &[u64]| {
            let words = words_for(total, set);
            store
                .commit(&words, total, set.len() as u64, set.iter().copied(), 9)
                .unwrap();
        };

        let path = temp_path("store-nogen");
        let mut store = BlockStore::open(&path, opts()).unwrap();
        commit(&mut store, &set_a);
        let (first, _) = store.raw_bytes().unwrap();
        commit(&mut store, &set_b);
        commit(&mut store, &set_a);
        let (third, _) = store.raw_bytes().unwrap();
        assert_eq!(first, third, "image must be a pure function of contents");
        cleanup(&path);
    }

    #[test]
    fn geometry_shrink_truncates_the_file() {
        let path = temp_path("store-shrink");
        let mut store = BlockStore::open(&path, opts()).unwrap();
        let total1 = 4096u64;
        let set1: Vec<u64> = (0..total1).collect();
        store
            .commit(
                &words_for(total1, &set1),
                total1,
                total1,
                set1.iter().copied(),
                3,
            )
            .unwrap();
        let len_before = store.data.len().unwrap();
        let total2 = 64u64;
        let set2: Vec<u64> = (0..total2).collect();
        store
            .commit(
                &words_for(total2, &set2),
                total2,
                total2,
                set2.iter().copied(),
                3,
            )
            .unwrap();
        let len_after = store.data.len().unwrap();
        assert!(len_after < len_before);
        let mut store = BlockStore::open(&path, opts()).unwrap();
        let (_, _, recs) = store.load::<u64>().unwrap();
        assert_eq!(recs, set2);
        cleanup(&path);
    }

    #[test]
    fn load_rejects_wrong_record_size_typed() {
        let path = temp_path("store-recsize");
        let mut store = BlockStore::open(&path, opts()).unwrap();
        let words = words_for(64, &[0]);
        store.commit(&words, 64, 1, [7u64], 0).unwrap();
        let err = store.load::<(u64, u64)>().unwrap_err();
        assert!(matches!(err, FileError::Corrupt { block: 0, .. }));
        cleanup(&path);
    }

    #[test]
    fn mismatched_len_is_rejected() {
        let path = temp_path("store-badlen");
        let mut store = BlockStore::open(&path, opts()).unwrap();
        let words = words_for(64, &[0, 1]);
        assert!(store.commit(&words, 64, 1, [7u64].into_iter(), 0).is_err());
        cleanup(&path);
    }

    #[test]
    fn journal_is_empty_at_rest() {
        let path = temp_path("store-jempty");
        let mut store = BlockStore::open(&path, opts()).unwrap();
        let words = words_for(128, &[1, 2, 3]);
        store.commit(&words, 128, 3, [1u64, 2, 3], 0).unwrap();
        assert_eq!(store.journal.len().unwrap(), 0);
        let (_, journal_bytes) = store.raw_bytes().unwrap();
        assert!(journal_bytes.is_empty());
        cleanup(&path);
    }

    #[test]
    fn load_catches_a_flipped_slot_byte() {
        // Before per-block checksums a flipped bit inside an occupied slot
        // was a silent misread; now it is a typed corruption.
        let path = temp_path("store-flip");
        let total = 256u64;
        let set: Vec<u64> = (0..total).step_by(2).collect();
        let words = words_for(total, &set);
        {
            let mut store = BlockStore::open(&path, opts()).unwrap();
            store
                .commit(&words, total, set.len() as u64, set.iter().copied(), 4)
                .unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = BlockStore::open(&path, opts()).unwrap();
        let err = store.load::<u64>().unwrap_err();
        assert!(matches!(err, FileError::Corrupt { .. }), "{err}");
        cleanup(&path);
    }

    #[test]
    fn scrub_reports_exactly_the_corrupt_blocks() {
        let path = temp_path("store-scrub");
        let total = 512u64;
        let set: Vec<u64> = (0..total).step_by(3).collect();
        let words = words_for(total, &set);
        let mut store = BlockStore::open(&path, opts()).unwrap();
        store
            .commit(&words, total, set.len() as u64, set.iter().copied(), 4)
            .unwrap();
        assert!(store.scrub().unwrap().is_clean());
        assert!(store.verify_all().is_ok());

        // Flip one byte in the last block.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = (bytes.len() / B - 1) as u64;
        let n = bytes.len();
        bytes[n - 5] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let report = store.scrub().unwrap();
        assert_eq!(report.corrupt, vec![last]);
        assert_eq!(report.blocks_checked, bytes.len() as u64 / B as u64);
        assert!(matches!(
            store.verify_all(),
            Err(FileError::Corrupt { block, .. }) if block == last
        ));
        cleanup(&path);
    }

    #[test]
    fn repair_from_a_replica_restores_byte_identity() {
        // Two stores reach the same contents through different histories;
        // HI makes their images byte-identical, so either is a valid
        // repair source for the other.
        let total = 512u64;
        let set: Vec<u64> = (0..total).step_by(3).collect();
        let words = words_for(total, &set);
        let path_a = temp_path("store-repair-a");
        let path_b = temp_path("store-repair-b");
        let mut a = BlockStore::open(&path_a, opts()).unwrap();
        a.commit(&words, total, set.len() as u64, set.iter().copied(), 4)
            .unwrap();
        let mut b = BlockStore::open(&path_b, opts()).unwrap();
        let half: Vec<u64> = set.iter().copied().take(set.len() / 2).collect();
        let hwords = words_for(total, &half);
        b.commit(&hwords, total, half.len() as u64, half.iter().copied(), 4)
            .unwrap();
        b.commit(&words, total, set.len() as u64, set.iter().copied(), 4)
            .unwrap();

        // Corrupt three scattered blocks of A, including the header.
        let mut bytes = std::fs::read(&path_a).unwrap();
        let blocks = bytes.len() / B;
        for block in [0, blocks / 2, blocks - 1] {
            bytes[block * B + 17] ^= 0xFF;
        }
        std::fs::write(&path_a, &bytes).unwrap();
        assert_eq!(a.scrub().unwrap().corrupt.len(), 3);

        let repaired = a.repair_from(&mut b).unwrap();
        assert_eq!(repaired, 3, "only the corrupt blocks are rewritten");
        assert!(a.verify_all().is_ok());
        let (raw_a, _) = a.raw_bytes().unwrap();
        let (raw_b, _) = b.raw_bytes().unwrap();
        assert_eq!(raw_a, raw_b, "repair restores byte identity");
        let (_, w, r) = a.load::<u64>().unwrap();
        assert_eq!(w, words);
        assert_eq!(r, set);
        cleanup(&path_a);
        cleanup(&path_b);
    }

    #[test]
    fn repair_refuses_a_dirty_source() {
        let total = 128u64;
        let set: Vec<u64> = (0..total).step_by(2).collect();
        let words = words_for(total, &set);
        let path_a = temp_path("store-repair-dirty-a");
        let path_b = temp_path("store-repair-dirty-b");
        let mut a = BlockStore::open(&path_a, opts()).unwrap();
        a.commit(&words, total, set.len() as u64, set.iter().copied(), 4)
            .unwrap();
        let mut b = BlockStore::open(&path_b, opts()).unwrap();
        b.commit(&words, total, set.len() as u64, set.iter().copied(), 4)
            .unwrap();
        let mut bytes = std::fs::read(&path_b).unwrap();
        bytes[B + 3] ^= 0x10;
        std::fs::write(&path_b, &bytes).unwrap();
        assert!(matches!(
            a.repair_from(&mut b),
            Err(FileError::Corrupt { .. })
        ));
        cleanup(&path_a);
        cleanup(&path_b);
    }
}
