//! Block-granular file I/O: aligned staging buffers, scripted fault
//! injection, bounded deterministic retry, and transfer accounting that can
//! feed the simulated DAM ledger.

use crate::fault::{FaultPlan, ReadEffect, WriteEffect};
use crate::Fault;
use io_sim::Tracer;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Alignment of the reusable scratch buffers: one page, matching what the
/// kernel page cache works in. All block images are staged through buffers
/// with this alignment before they touch the file.
pub const PAGE_ALIGN: usize = 4096;

/// Attempts per block transfer before a transient fault becomes a typed
/// [`FileError::Transient`]. A fixed count — never a clock-based backoff —
/// so retry behavior is a pure function of the fault script and hi-lint's
/// nondeterminism rule has nothing to object to.
pub const IO_RETRY_ATTEMPTS: u32 = 3;

/// A typed error from block-granular file I/O.
///
/// The interesting failure modes — an injected crash, a poisoned handle, a
/// file that ends before the requested blocks, a checksum that does not
/// match, a transient error that outlived its retry budget, a full disk —
/// are variants the recovery and chaos batteries can match on. [`BlockStore`]
/// propagates them unchanged; the facade keeps its `io::Result` surface via
/// the `From` impl below (preserving the message text), so `?` propagation
/// through the existing APIs is unchanged.
///
/// [`BlockStore`]: crate::BlockStore
#[derive(Debug)]
pub enum FileError {
    /// The handle is poisoned: an injected crash fired earlier, and every
    /// subsequent mutation fails fast so a torn flush cannot be resumed.
    Poisoned,
    /// An injected crash fired mid-stream (a [`Fault::TornWrite`] or
    /// [`Fault::ShortWrite`]), leaving the already-written prefix of the
    /// stream on disk.
    Crashed,
    /// A read hit end-of-file before filling the requested blocks.
    ShortRead {
        /// First block of the failed read.
        block: u64,
        /// Bytes the read asked for.
        wanted: usize,
    },
    /// A transient error survived the whole bounded retry budget.
    Transient {
        /// Attempts made before giving up (= [`IO_RETRY_ATTEMPTS`]).
        attempts: u32,
    },
    /// The device is out of space (`ENOSPC`, real or injected).
    NoSpace,
    /// A block's bytes do not match its recorded checksum, or a decoded
    /// structure is internally inconsistent.
    Corrupt {
        /// The offending block id (0 = header).
        block: u64,
        /// What exactly failed to validate.
        reason: &'static str,
    },
    /// An underlying operating-system error.
    Io(io::Error),
}

impl fmt::Display for FileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The "injected crash" phrasing is load-bearing: the recovery and
        // fuse batteries assert on it through the io::Error conversion.
        match self {
            FileError::Poisoned => write!(f, "block file poisoned by injected crash"),
            FileError::Crashed => write!(f, "injected crash: write fuse tripped"),
            FileError::ShortRead { block, wanted } => write!(
                f,
                "short read at block {block}: file ends before the {wanted} requested bytes"
            ),
            FileError::Transient { attempts } => write!(
                f,
                "transient I/O error persisted through {attempts} attempts"
            ),
            FileError::NoSpace => write!(f, "no space left on device"),
            FileError::Corrupt { block, reason } => {
                write!(f, "corrupt block {block}: {reason}")
            }
            FileError::Io(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FileError {
    fn from(e: io::Error) -> Self {
        if e.raw_os_error() == Some(28) {
            // ENOSPC gets its own variant whether real or injected.
            FileError::NoSpace
        } else {
            FileError::Io(e)
        }
    }
}

impl From<FileError> for io::Error {
    fn from(e: FileError) -> Self {
        match e {
            FileError::Io(io) => io,
            short @ FileError::ShortRead { .. } => {
                io::Error::new(io::ErrorKind::UnexpectedEof, short.to_string())
            }
            corrupt @ FileError::Corrupt { .. } => {
                io::Error::new(io::ErrorKind::InvalidData, corrupt.to_string())
            }
            other => io::Error::other(other.to_string()),
        }
    }
}

/// A reusable byte buffer whose payload starts on a [`PAGE_ALIGN`] boundary.
///
/// Grows monotonically and never shrinks, so once a buffer has seen its
/// high-water length, later uses are allocation-free — the property
/// `tests/alloc_regression.rs` pins for steady-state flushes.
#[derive(Debug, Default)]
pub struct AlignedBuf {
    raw: Vec<u8>,
}

impl AlignedBuf {
    /// An empty buffer (no allocation until first use).
    pub fn new() -> Self {
        Self { raw: Vec::new() }
    }

    /// Grows the backing storage so [`Self::get_mut`] calls up to `len`
    /// bytes are allocation-free. No-op once capacity is reached.
    pub fn reserve(&mut self, len: usize) {
        let need = len + PAGE_ALIGN;
        if self.raw.len() < need {
            self.raw.resize(need, 0);
        }
    }

    /// A page-aligned, mutable view of `len` bytes (contents unspecified;
    /// callers overwrite). Grows the buffer if needed.
    pub fn get_mut(&mut self, len: usize) -> &mut [u8] {
        self.reserve(len);
        let off = self.offset();
        &mut self.raw[off..off + len]
    }

    /// The aligned view of the first `len` bytes, immutable.
    pub fn get(&self, len: usize) -> &[u8] {
        let off = self.offset();
        &self.raw[off..off + len]
    }

    fn offset(&self) -> usize {
        let addr = self.raw.as_ptr() as usize;
        (PAGE_ALIGN - addr % PAGE_ALIGN) % PAGE_ALIGN
    }
}

/// The classic crash-at-a-block-boundary knob, now a thin constructor over
/// [`FaultPlan`]: after `n` more block writes, every subsequent write fails
/// with an injected crash. Clones share the budget, so one fuse can arm a
/// store's data and journal files together and the kill point lands
/// wherever the flush protocol happens to be after `n` physical writes.
#[derive(Debug, Clone, Default)]
pub struct WriteFuse {
    plan: FaultPlan,
}

impl WriteFuse {
    /// A fuse that never trips (the default).
    pub fn unlimited() -> Self {
        Self {
            plan: FaultPlan::none(),
        }
    }

    /// A fuse that allows exactly `n` more block writes.
    pub fn after(n: u64) -> Self {
        Self {
            plan: FaultPlan::new([Fault::TornWrite { at: n }]),
        }
    }

    /// Remaining budget (`None` for an unlimited fuse).
    pub fn remaining(&self) -> Option<u64> {
        self.plan.write_budget_remaining()
    }

    /// The underlying fault plan (shares state with this fuse).
    pub fn plan(&self) -> FaultPlan {
        self.plan.clone()
    }
}

/// Physical transfer counters for one [`BlockFile`] — the ground truth the
/// DAM-vs-wall-clock bench compares the simulated model against.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FileStats {
    /// Blocks read from the file.
    pub blocks_read: u64,
    /// Blocks written to the file.
    pub blocks_written: u64,
    /// `fsync` calls issued.
    pub syncs: u64,
}

/// Block-granular access to one file: every read and write moves whole
/// blocks of a fixed size, each block transfer consults a [`FaultPlan`] (so
/// injected failures land deterministically at block granularity), transient
/// errors are retried a fixed number of times ([`IO_RETRY_ATTEMPTS`]), and
/// transfers are counted in a [`FileStats`] ledger and optionally charged to
/// an [`io_sim`] [`Tracer`].
#[derive(Debug)]
pub struct BlockFile {
    file: File,
    path: PathBuf,
    block_size: usize,
    plan: FaultPlan,
    tracer: Tracer,
    stats: FileStats,
    poisoned: bool,
}

impl BlockFile {
    /// Opens (creating if absent, never truncating) `path` for block I/O at
    /// the given granularity.
    pub fn open(path: impl AsRef<Path>, block_size: usize) -> io::Result<Self> {
        assert!(block_size > 0, "block size must be positive");
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        Ok(Self {
            file,
            path,
            block_size,
            plan: FaultPlan::none(),
            tracer: Tracer::disabled(),
            stats: FileStats::default(),
            poisoned: false,
        })
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The block (write-granularity) size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Physical transfer counters so far.
    pub fn stats(&self) -> FileStats {
        self.stats
    }

    /// Arms (or disarms) the crash-injection fuse.
    pub fn set_fuse(&mut self, fuse: WriteFuse) {
        self.plan = fuse.plan();
    }

    /// Arms (or disarms, with [`FaultPlan::none`]) the fault script.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Routes per-block transfer charges into a simulated-DAM ledger.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// `true` once an injected crash has fired; all further writes fail.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Current file length in bytes.
    pub fn len(&self) -> Result<u64, FileError> {
        Ok(self.file.metadata()?.len())
    }

    /// `true` when the file is empty.
    pub fn is_empty(&self) -> Result<bool, FileError> {
        Ok(self.len()? == 0)
    }

    /// Sets the file length (grow zero-fills, shrink truncates).
    pub fn set_len(&mut self, bytes: u64) -> Result<(), FileError> {
        self.check_poisoned()?;
        self.file.set_len(bytes)?;
        Ok(())
    }

    /// Writes `data` (a multiple of the block size) starting at block
    /// `first_block`, one block at a time. Each block consults the fault
    /// plan; an injected crash aborts mid-stream with the already-written
    /// prefix on disk — a crash torn at a block (or half-block) boundary.
    pub fn write_blocks(&mut self, first_block: u64, data: &[u8]) -> Result<(), FileError> {
        self.check_poisoned()?;
        assert_eq!(
            data.len() % self.block_size,
            0,
            "write must be block-aligned"
        );
        for (block, chunk) in (first_block..).zip(data.chunks(self.block_size)) {
            self.write_one(block, chunk)?;
        }
        Ok(())
    }

    fn write_one(&mut self, block: u64, chunk: &[u8]) -> Result<(), FileError> {
        let index = self.plan.begin_write();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.plan.write_effect(index) {
                WriteEffect::Allow => {}
                WriteEffect::Transient => {
                    if attempts >= IO_RETRY_ATTEMPTS {
                        return Err(FileError::Transient { attempts });
                    }
                    continue;
                }
                WriteEffect::Torn => {
                    self.poisoned = true;
                    return Err(FileError::Crashed);
                }
                WriteEffect::Short => {
                    // Half the block lands, then the "power" goes: the torn
                    // bytes stay on disk for recovery to detect.
                    let half = &chunk[..chunk.len() / 2];
                    self.file
                        .seek(SeekFrom::Start(block * self.block_size as u64))?;
                    self.file.write_all(half)?;
                    self.poisoned = true;
                    return Err(FileError::Crashed);
                }
                WriteEffect::NoSpace => return Err(FileError::NoSpace),
            }
            match self.raw_write(block, chunk) {
                Ok(()) => {
                    self.stats.blocks_written += 1;
                    self.tracer.charge(0, 1);
                    return Ok(());
                }
                Err(e)
                    if e.kind() == io::ErrorKind::Interrupted && attempts < IO_RETRY_ATTEMPTS =>
                {
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn raw_write(&mut self, block: u64, chunk: &[u8]) -> io::Result<()> {
        self.file
            .seek(SeekFrom::Start(block * self.block_size as u64))?;
        self.file.write_all(chunk)
    }

    /// Reads `buf.len()` bytes (a multiple of the block size) starting at
    /// block `first_block`. With a fault plan armed the transfer runs block
    /// by block so injected read failures and bit rot land per block.
    pub fn read_blocks(&mut self, first_block: u64, buf: &mut [u8]) -> Result<(), FileError> {
        assert_eq!(buf.len() % self.block_size, 0, "read must be block-aligned");
        if !self.plan.is_armed() {
            // Fast path: one contiguous transfer, identical accounting.
            self.file
                .seek(SeekFrom::Start(first_block * self.block_size as u64))?;
            self.file.read_exact(buf).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    FileError::ShortRead {
                        block: first_block,
                        wanted: buf.len(),
                    }
                } else {
                    FileError::Io(e)
                }
            })?;
            let blocks = (buf.len() / self.block_size) as u64;
            self.stats.blocks_read += blocks;
            self.tracer.charge(blocks, 0);
            return Ok(());
        }
        for (block, chunk) in (first_block..).zip(buf.chunks_mut(self.block_size)) {
            self.read_one(block, chunk)?;
        }
        Ok(())
    }

    fn read_one(&mut self, block: u64, chunk: &mut [u8]) -> Result<(), FileError> {
        let index = self.plan.begin_read();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.plan.read_effect(index, block) {
                ReadEffect::Allow => {}
                ReadEffect::Transient => {
                    if attempts >= IO_RETRY_ATTEMPTS {
                        return Err(FileError::Transient { attempts });
                    }
                    continue;
                }
                ReadEffect::Short => {
                    return Err(FileError::ShortRead {
                        block,
                        wanted: chunk.len(),
                    });
                }
                ReadEffect::Permanent => {
                    return Err(FileError::Io(io::Error::other(format!(
                        "injected permanent read error at block {block}"
                    ))));
                }
            }
            let seek = self
                .file
                .seek(SeekFrom::Start(block * self.block_size as u64));
            let read = seek.and_then(|_| self.file.read_exact(chunk));
            match read {
                Ok(()) => {
                    self.stats.blocks_read += 1;
                    self.tracer.charge(1, 0);
                    self.plan.rot(block, chunk);
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    return Err(FileError::ShortRead {
                        block,
                        wanted: chunk.len(),
                    });
                }
                Err(e)
                    if e.kind() == io::ErrorKind::Interrupted && attempts < IO_RETRY_ATTEMPTS =>
                {
                    continue;
                }
                Err(e) => return Err(FileError::Io(e)),
            }
        }
    }

    /// Flushes file contents and metadata to the device.
    pub fn sync(&mut self) -> Result<(), FileError> {
        self.check_poisoned()?;
        self.file.sync_all()?;
        self.stats.syncs += 1;
        Ok(())
    }

    fn check_poisoned(&self) -> Result<(), FileError> {
        if self.poisoned {
            Err(FileError::Poisoned)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_buf_is_page_aligned_and_reusable() {
        let mut b = AlignedBuf::new();
        let ptr = {
            let s = b.get_mut(1000);
            s.fill(7);
            s.as_ptr() as usize
        };
        assert_eq!(ptr % PAGE_ALIGN, 0);
        // Re-borrowing at or below the high-water mark must not reallocate.
        let ptr2 = b.get_mut(1000).as_ptr() as usize;
        assert_eq!(ptr, ptr2);
        assert_eq!(b.get(1000)[999], 7);
    }

    #[test]
    fn write_read_roundtrip_counts_blocks() {
        let path = crate::temp_path("file-roundtrip");
        let mut f = BlockFile::open(&path, 64).unwrap();
        let data: Vec<u8> = (0..192u16).map(|i| i as u8).collect();
        f.write_blocks(2, &data).unwrap();
        let mut back = vec![0u8; 192];
        f.read_blocks(2, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(f.stats().blocks_written, 3);
        assert_eq!(f.stats().blocks_read, 3);
        assert_eq!(f.len().unwrap(), 5 * 64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fuse_tears_writes_at_block_boundaries() {
        let path = crate::temp_path("file-fuse");
        let mut f = BlockFile::open(&path, 64).unwrap();
        f.set_fuse(WriteFuse::after(2));
        let data = vec![0xAB; 4 * 64];
        let err = f.write_blocks(0, &data).unwrap_err();
        assert!(err.to_string().contains("injected crash"));
        assert!(f.is_poisoned());
        assert_eq!(f.stats().blocks_written, 2);
        // Exactly the two allowed blocks landed.
        assert_eq!(f.len().unwrap(), 2 * 64);
        // Every later write fails fast.
        assert!(f.write_blocks(0, &data[..64]).is_err());
        assert!(f.sync().is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fuse_clones_share_one_budget() {
        let path_a = crate::temp_path("file-shared-a");
        let path_b = crate::temp_path("file-shared-b");
        let mut a = BlockFile::open(&path_a, 64).unwrap();
        let mut b = BlockFile::open(&path_b, 64).unwrap();
        let fuse = WriteFuse::after(3);
        a.set_fuse(fuse.clone());
        b.set_fuse(fuse.clone());
        let block = [1u8; 64];
        a.write_blocks(0, &block).unwrap();
        b.write_blocks(0, &block).unwrap();
        a.write_blocks(1, &block).unwrap();
        // The shared budget is spent: the other handle trips.
        assert!(matches!(b.write_blocks(1, &block), Err(FileError::Crashed)));
        assert_eq!(fuse.remaining(), Some(0));
        std::fs::remove_file(&path_a).unwrap();
        std::fs::remove_file(&path_b).unwrap();
    }

    #[test]
    fn short_write_tears_inside_a_block() {
        let path = crate::temp_path("file-shortwrite");
        let mut f = BlockFile::open(&path, 64).unwrap();
        f.set_fault_plan(FaultPlan::new([Fault::ShortWrite { at: 1 }]));
        let data = vec![0xCD; 2 * 64];
        let err = f.write_blocks(0, &data).unwrap_err();
        assert!(matches!(err, FileError::Crashed));
        assert!(f.is_poisoned());
        // One whole block plus half the second landed.
        assert_eq!(f.len().unwrap(), 64 + 32);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn transient_write_faults_are_retried_within_budget() {
        let path = crate::temp_path("file-transient-ok");
        let mut f = BlockFile::open(&path, 64).unwrap();
        f.set_fault_plan(FaultPlan::new([Fault::WriteTransient {
            at: 0,
            times: IO_RETRY_ATTEMPTS - 1,
        }]));
        f.write_blocks(0, &[7u8; 64]).unwrap();
        assert_eq!(f.stats().blocks_written, 1);
        let mut back = [0u8; 64];
        f.read_blocks(0, &mut back).unwrap();
        assert_eq!(back, [7u8; 64]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn transient_faults_beyond_budget_fail_typed() {
        let path = crate::temp_path("file-transient-fail");
        let mut f = BlockFile::open(&path, 64).unwrap();
        f.set_fault_plan(FaultPlan::new([Fault::WriteTransient {
            at: 0,
            times: IO_RETRY_ATTEMPTS,
        }]));
        let err = f.write_blocks(0, &[7u8; 64]).unwrap_err();
        assert!(matches!(
            err,
            FileError::Transient {
                attempts: IO_RETRY_ATTEMPTS
            }
        ));
        // Not a crash: the handle stays usable.
        assert!(!f.is_poisoned());
        f.write_blocks(0, &[8u8; 64]).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_nospace_is_typed_and_does_not_poison() {
        let path = crate::temp_path("file-nospace");
        let mut f = BlockFile::open(&path, 64).unwrap();
        f.set_fault_plan(FaultPlan::new([Fault::NoSpace { at: 1 }]));
        f.write_blocks(0, &[1u8; 64]).unwrap();
        assert!(matches!(
            f.write_blocks(1, &[2u8; 64]),
            Err(FileError::NoSpace)
        ));
        assert!(!f.is_poisoned());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_read_faults_cover_the_read_universe() {
        let path = crate::temp_path("file-readfaults");
        let mut f = BlockFile::open(&path, 64).unwrap();
        f.write_blocks(0, &[9u8; 4 * 64]).unwrap();
        let mut buf = [0u8; 64];

        // Transient, within budget: succeeds.
        f.set_fault_plan(FaultPlan::new([Fault::ReadTransient { at: 0, times: 2 }]));
        f.read_blocks(0, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 64]);

        // Transient, beyond budget: typed failure.
        f.set_fault_plan(FaultPlan::new([Fault::ReadTransient { at: 0, times: 9 }]));
        assert!(matches!(
            f.read_blocks(1, &mut buf),
            Err(FileError::Transient { .. })
        ));

        // Permanent unreadable sector.
        f.set_fault_plan(FaultPlan::new([Fault::ReadError { block: 2 }]));
        f.read_blocks(1, &mut buf).unwrap();
        let err = f.read_blocks(2, &mut buf).unwrap_err();
        assert!(err.to_string().contains("permanent read error"));

        // Injected short read.
        f.set_fault_plan(FaultPlan::new([Fault::ShortRead { at: 0 }]));
        assert!(matches!(
            f.read_blocks(0, &mut buf),
            Err(FileError::ShortRead { block: 0, .. })
        ));

        // Bit rot: bytes come back changed, deterministically.
        f.set_fault_plan(FaultPlan::new([Fault::BitRot { seed: 5, one_in: 1 }]));
        f.read_blocks(3, &mut buf).unwrap();
        assert_ne!(buf, [9u8; 64]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tracer_sees_physical_transfers() {
        let path = crate::temp_path("file-tracer");
        let mut f = BlockFile::open(&path, 128).unwrap();
        f.set_tracer(Tracer::enabled(io_sim::IoConfig::new(128, 8)));
        f.write_blocks(0, &vec![1u8; 256]).unwrap();
        let mut buf = vec![0u8; 128];
        f.read_blocks(1, &mut buf).unwrap();
        let tracer_stats = {
            // The tracer the file charges is the one we installed.
            let t = Tracer::enabled(io_sim::IoConfig::new(128, 8));
            f.set_tracer(t.clone());
            f.write_blocks(0, &[2u8; 128]).unwrap();
            t.stats()
        };
        assert_eq!(tracer_stats.writes, 1);
        std::fs::remove_file(&path).unwrap();
    }
}
