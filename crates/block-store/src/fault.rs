//! Deterministic fault injection: the full fault universe for [`BlockFile`].
//!
//! The crash batteries of PR 6 killed the write stream at block boundaries
//! with a [`WriteFuse`] — one fault kind, one knob. A [`FaultPlan`]
//! generalizes that into a scripted universe of storage failures, all of
//! them pure functions of the plan's parameters (counters and seeds, never
//! clocks or OS entropy), so every chaos cell is replayable:
//!
//! | fault | models | surfaces as |
//! |---|---|---|
//! | [`Fault::TornWrite`] | power loss at a block boundary | [`FileError::Crashed`], handle poisoned |
//! | [`Fault::ShortWrite`] | power loss **inside** a block | half a block on disk, then [`FileError::Crashed`] |
//! | [`Fault::WriteTransient`] | flaky bus: `EIO` that goes away | retried; [`FileError::Transient`] if it persists |
//! | [`Fault::ReadTransient`] | flaky bus on the read path | retried; [`FileError::Transient`] if it persists |
//! | [`Fault::ReadError`] | an unreadable (pending-reallocation) sector | a permanent injected `EIO` |
//! | [`Fault::ShortRead`] | a file that ends before the requested bytes | [`FileError::ShortRead`] |
//! | [`Fault::NoSpace`] | disk full mid-commit | [`FileError::NoSpace`] |
//! | [`Fault::BitRot`] | media decay discovered at read time | flipped bits; checksums turn them into [`FileError::Corrupt`] |
//!
//! Clones share one state (counters, remaining transient failures), so a
//! single plan armed on a store's data and journal files together indexes
//! the *global* write stream — the injection site lands wherever the commit
//! protocol happens to be, exactly like the old shared fuse budget.
//!
//! [`BlockFile`]: crate::BlockFile
//! [`WriteFuse`]: crate::WriteFuse
//! [`FileError::Crashed`]: crate::FileError::Crashed
//! [`FileError::Transient`]: crate::FileError::Transient
//! [`FileError::ShortRead`]: crate::FileError::ShortRead
//! [`FileError::NoSpace`]: crate::FileError::NoSpace
//! [`FileError::Corrupt`]: crate::FileError::Corrupt

use std::sync::{Arc, Mutex, PoisonError};

/// One scripted storage fault. Indices count *logical* block transfers
/// (retries of the same block re-use the index), separately for writes and
/// reads, shared across every file the plan is armed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Every block write with index `>= at` fails before any byte lands and
    /// poisons the handle: a crash torn at a block boundary.
    TornWrite {
        /// First failing write index.
        at: u64,
    },
    /// The write with index `at` puts *half* the block on disk, then fails
    /// and poisons the handle: a crash torn inside a block.
    ShortWrite {
        /// The one failing write index.
        at: u64,
    },
    /// The write with index `at` fails `times` attempts with a transient
    /// error, then succeeds. With `times` below the retry budget the caller
    /// never notices; at or above it the op fails typed.
    WriteTransient {
        /// The affected write index.
        at: u64,
        /// Failures before the fault clears.
        times: u32,
    },
    /// The read with index `at` fails `times` attempts, then succeeds.
    ReadTransient {
        /// The affected read index.
        at: u64,
        /// Failures before the fault clears.
        times: u32,
    },
    /// Every read touching this absolute block id fails permanently — an
    /// unreadable sector.
    ReadError {
        /// The unreadable block id.
        block: u64,
    },
    /// The read with index `at` reports end-of-file before the requested
    /// bytes.
    ShortRead {
        /// The one failing read index.
        at: u64,
    },
    /// Every block write with index `>= at` fails with disk-full. Unlike a
    /// torn write this does not poison the handle: `ENOSPC` is an
    /// environment condition, not evidence of a torn stream.
    NoSpace {
        /// First failing write index.
        at: u64,
    },
    /// Seeded bit rot: roughly one in `one_in` block reads comes back with
    /// one bit flipped, chosen by hashing `(seed, block id)` — the same
    /// blocks rot on every run with the same seed.
    BitRot {
        /// Seed for the rot pattern.
        seed: u64,
        /// Rot frequency (a block rots when the hash of `(seed, block)` is
        /// `0 mod one_in`); `0` behaves as `1` (every block).
        one_in: u64,
    },
}

/// What the plan decided for one write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteEffect {
    /// Perform the write normally.
    Allow,
    /// Fail this attempt with a transient error (retryable).
    Transient,
    /// Crash at the block boundary: no bytes land, handle poisons.
    Torn,
    /// Crash inside the block: half the bytes land, handle poisons.
    Short,
    /// Fail with disk-full.
    NoSpace,
}

/// What the plan decided for one read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadEffect {
    /// Perform the read normally.
    Allow,
    /// Fail this attempt with a transient error (retryable).
    Transient,
    /// Report end-of-file before the requested bytes.
    Short,
    /// Fail permanently (unreadable sector).
    Permanent,
}

#[derive(Debug)]
struct PlanState {
    faults: Vec<Fault>,
    /// Remaining failures for each fault (meaningful for the transient
    /// kinds; parallel to `faults`).
    left: Vec<u32>,
    writes: u64,
    reads: u64,
}

/// A deterministic, shareable script of storage faults for [`BlockFile`].
///
/// The default plan is inert and costs one branch per transfer. Clones
/// share state; see the module docs for the fault taxonomy.
///
/// [`BlockFile`]: crate::BlockFile
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    shared: Option<Arc<Mutex<PlanState>>>,
}

impl FaultPlan {
    /// The inert plan: no faults, near-zero overhead.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan injecting the given faults. When several faults match one
    /// transfer, the first match in `faults` order wins.
    pub fn new(faults: impl IntoIterator<Item = Fault>) -> Self {
        let faults: Vec<Fault> = faults.into_iter().collect();
        let left = faults
            .iter()
            .map(|f| match f {
                Fault::WriteTransient { times, .. } | Fault::ReadTransient { times, .. } => *times,
                _ => 0,
            })
            .collect();
        Self {
            shared: Some(Arc::new(Mutex::new(PlanState {
                faults,
                left,
                writes: 0,
                reads: 0,
            }))),
        }
    }

    /// `true` when the plan can inject anything (drives the fast path).
    pub fn is_armed(&self) -> bool {
        self.shared.is_some()
    }

    /// Logical block writes begun so far across all shared clones.
    pub fn writes_begun(&self) -> u64 {
        self.state().map_or(0, |s| s.writes)
    }

    /// Logical block reads begun so far across all shared clones.
    pub fn reads_begun(&self) -> u64 {
        self.state().map_or(0, |s| s.reads)
    }

    /// Writes left before the first [`Fault::TornWrite`] fires, mirroring
    /// the old fuse's budget (`None` when the plan has no torn write).
    pub fn write_budget_remaining(&self) -> Option<u64> {
        let state = self.state()?;
        state
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::TornWrite { at } => Some(at.saturating_sub(state.writes)),
                _ => None,
            })
            .min()
    }

    fn state(&self) -> Option<std::sync::MutexGuard<'_, PlanState>> {
        // Plan state is per-attempt bookkeeping (counters), consistent
        // after every mutation, so recovering a poisoned guard is sound.
        self.shared
            .as_ref()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Claims the next logical write index. Retries of the same block must
    /// re-use the claimed index rather than claim a new one.
    pub(crate) fn begin_write(&self) -> u64 {
        self.state().map_or(0, |mut s| {
            let i = s.writes;
            s.writes += 1;
            i
        })
    }

    /// Claims the next logical read index.
    pub(crate) fn begin_read(&self) -> u64 {
        self.state().map_or(0, |mut s| {
            let i = s.reads;
            s.reads += 1;
            i
        })
    }

    /// The effect on one attempt of write `index`.
    pub(crate) fn write_effect(&self, index: u64) -> WriteEffect {
        let Some(mut state) = self.state() else {
            return WriteEffect::Allow;
        };
        for k in 0..state.faults.len() {
            match state.faults[k] {
                Fault::TornWrite { at } if index >= at => return WriteEffect::Torn,
                Fault::ShortWrite { at } if index == at => return WriteEffect::Short,
                Fault::NoSpace { at } if index >= at => return WriteEffect::NoSpace,
                Fault::WriteTransient { at, .. } if index == at && state.left[k] > 0 => {
                    state.left[k] -= 1;
                    return WriteEffect::Transient;
                }
                _ => {}
            }
        }
        WriteEffect::Allow
    }

    /// The effect on one attempt of read `index` touching `block`.
    pub(crate) fn read_effect(&self, index: u64, block: u64) -> ReadEffect {
        let Some(mut state) = self.state() else {
            return ReadEffect::Allow;
        };
        for k in 0..state.faults.len() {
            match state.faults[k] {
                Fault::ReadError { block: b } if block == b => return ReadEffect::Permanent,
                Fault::ShortRead { at } if index == at => return ReadEffect::Short,
                Fault::ReadTransient { at, .. } if index == at && state.left[k] > 0 => {
                    state.left[k] -= 1;
                    return ReadEffect::Transient;
                }
                _ => {}
            }
        }
        ReadEffect::Allow
    }

    /// Applies seeded bit rot to a block image that was just read.
    pub(crate) fn rot(&self, block: u64, buf: &mut [u8]) {
        let Some(state) = self.state() else {
            return;
        };
        for f in &state.faults {
            if let Fault::BitRot { seed, one_in } = *f {
                let h = mix(seed ^ mix(block.wrapping_add(1)));
                if h.is_multiple_of(one_in.max(1)) && !buf.is_empty() {
                    let bit = mix(h) % (buf.len() as u64 * 8);
                    buf[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
            }
        }
    }
}

/// SplitMix64 finalizer: the workspace's stand-in for a seeded hash where a
/// full RNG would be overkill. Pure function of its input — no entropy.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_allows_everything() {
        let p = FaultPlan::none();
        assert!(!p.is_armed());
        assert_eq!(p.write_effect(p.begin_write()), WriteEffect::Allow);
        assert_eq!(p.read_effect(p.begin_read(), 7), ReadEffect::Allow);
        assert_eq!(p.write_budget_remaining(), None);
    }

    #[test]
    fn clones_share_counters_and_budgets() {
        let a = FaultPlan::new([Fault::TornWrite { at: 2 }]);
        let b = a.clone();
        assert_eq!(a.write_effect(a.begin_write()), WriteEffect::Allow);
        assert_eq!(b.write_effect(b.begin_write()), WriteEffect::Allow);
        assert_eq!(a.write_budget_remaining(), Some(0));
        assert_eq!(b.write_effect(b.begin_write()), WriteEffect::Torn);
    }

    #[test]
    fn transient_faults_clear_after_their_quota() {
        let p = FaultPlan::new([Fault::WriteTransient { at: 0, times: 2 }]);
        let i = p.begin_write();
        assert_eq!(p.write_effect(i), WriteEffect::Transient);
        assert_eq!(p.write_effect(i), WriteEffect::Transient);
        assert_eq!(p.write_effect(i), WriteEffect::Allow);
    }

    #[test]
    fn first_matching_fault_wins() {
        let p = FaultPlan::new([Fault::NoSpace { at: 5 }, Fault::TornWrite { at: 5 }]);
        for _ in 0..5 {
            assert_eq!(p.write_effect(p.begin_write()), WriteEffect::Allow);
        }
        assert_eq!(p.write_effect(p.begin_write()), WriteEffect::NoSpace);
    }

    #[test]
    fn bit_rot_is_deterministic_per_block() {
        let p = FaultPlan::new([Fault::BitRot {
            seed: 42,
            one_in: 1,
        }]);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        p.rot(3, &mut a);
        p.rot(3, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.iter().map(|x| x.count_ones()).sum::<u32>(), 1);
        let mut c = vec![0u8; 64];
        p.rot(4, &mut c);
        assert_ne!(a, c, "different blocks rot differently");
    }
}
