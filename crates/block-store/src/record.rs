//! Fixed-size record serialization for slot payloads.

/// A value that serializes to a fixed number of bytes, so a slot array maps
/// onto a file as `slot_index * SIZE` with no per-record framing. Vacant
/// slots are stored as zeros, which is what keeps deleted records
/// unrecoverable from the raw bytes.
///
/// `SIZE` must be positive and at most [`Record::MAX_SIZE`] (records are
/// staged through fixed stack buffers while streaming blocks).
pub trait Record: Sized {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Upper bound on [`Self::SIZE`] accepted by the store.
    const MAX_SIZE: usize = 64;

    /// Writes exactly [`Self::SIZE`] bytes into `out` (`out.len() == SIZE`).
    fn encode(&self, out: &mut [u8]);

    /// Reads a value back from exactly [`Self::SIZE`] bytes.
    fn decode(buf: &[u8]) -> Self;
}

impl Record for u64 {
    const SIZE: usize = 8;

    fn encode(&self, out: &mut [u8]) {
        out.copy_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        // hi-lint: allow(panic-surface): Record::decode contract: callers always slice exactly SIZE bytes
        u64::from_le_bytes(buf.try_into().expect("u64 record is 8 bytes"))
    }
}

impl Record for (u64, u64) {
    const SIZE: usize = 16;

    fn encode(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.0.to_le_bytes());
        out[8..].copy_from_slice(&self.1.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        (u64::decode(&buf[..8]), u64::decode(&buf[8..16]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut buf = [0u8; 8];
        0xDEAD_BEEF_0123_4567u64.encode(&mut buf);
        assert_eq!(u64::decode(&buf), 0xDEAD_BEEF_0123_4567);
    }

    #[test]
    fn pair_roundtrip() {
        let mut buf = [0u8; 16];
        (17u64, u64::MAX).encode(&mut buf);
        assert_eq!(<(u64, u64)>::decode(&buf), (17, u64::MAX));
    }
}
