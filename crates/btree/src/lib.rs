//! An external-memory B+-tree baseline.
//!
//! The paper positions all of its structures against "the B-tree, the primary
//! indexing data structure used in databases": searches in `O(log_B N)` I/Os,
//! updates in `O(log_B N)` I/Os, range queries in `O(log_B N + k/B)` I/Os.
//! This crate provides that yardstick as a conventional (history-*dependent*)
//! B+-tree over simulated disk blocks: every node occupies one block, and
//! every node visited or rewritten by an operation is charged one I/O.
//!
//! The tree is deliberately ordinary — splits on overflow, borrow/merge on
//! underflow — because its role is to give the benchmarks an honest
//! comparison point for Theorems 2 and 3 and to illustrate, in the tests,
//! how an ordinary index leaks history through its node layout.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};

use hi_common::counters::SharedCounters;
use hi_common::traits::{below_end_bound, cloned_bounds, normalize_pairs, Dictionary};
use io_sim::Tracer;

/// Node identifier within the tree's arena.
type NodeId = usize;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Internal {
        /// Separator keys: `keys[i]` is the smallest key reachable through
        /// `children[i + 1]`.
        keys: Vec<K>,
        children: Vec<NodeId>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
    },
}

impl<K, V> Node<K, V> {
    fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    fn len(&self) -> usize {
        match self {
            Node::Internal { children, .. } => children.len(),
            Node::Leaf { keys, .. } => keys.len(),
        }
    }
}

/// An external-memory B+-tree with fanout `B`.
///
/// Every node (internal or leaf) holds at most `B` entries and at least
/// `⌈B/2⌉` (except the root). Each node is charged as one disk block.
#[derive(Debug)]
pub struct BTree<K: Ord + Clone, V: Clone> {
    nodes: Vec<Node<K, V>>,
    root: NodeId,
    fanout: usize,
    len: usize,
    counters: SharedCounters,
    tracer: Tracer,
    // Relaxed atomics, not `Cell`s: the I/O ledger must not stop the whole
    // tree from being `Sync` (shared readers on the sharded service layer's
    // worker threads all charge node touches through `&self`).
    total_ios: AtomicU64,
    last_op_ios: AtomicU64,
}

impl<K: Ord + Clone, V: Clone> Clone for BTree<K, V> {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            root: self.root,
            fanout: self.fanout,
            len: self.len,
            counters: self.counters.clone(),
            tracer: self.tracer.clone(),
            total_ios: AtomicU64::new(self.total_ios.load(Ordering::Relaxed)),
            last_op_ios: AtomicU64::new(self.last_op_ios.load(Ordering::Relaxed)),
        }
    }
}

impl<K: Ord + Clone, V: Clone> BTree<K, V> {
    /// Creates an empty B+-tree with the given fanout (`B ≥ 4`).
    pub fn new(fanout: usize) -> Self {
        Self::with_instrumentation(fanout, SharedCounters::new(), Tracer::disabled())
    }

    /// Creates an empty B+-tree with explicit counters and I/O tracer — the
    /// uniform instrumentation hook used by the dictionary builder. The tree
    /// computes its own DAM cost (one transfer per node touched) and reports
    /// it into the tracer via [`Tracer::charge`], so its I/O shows up in the
    /// same [`io_sim::IoStats`] ledger as the cache-oblivious structures'.
    pub fn with_instrumentation(fanout: usize, counters: SharedCounters, tracer: Tracer) -> Self {
        assert!(fanout >= 4, "fanout must be at least 4");
        Self {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
            }],
            root: 0,
            fanout,
            len: 0,
            counters,
            tracer,
            total_ios: AtomicU64::new(0),
            last_op_ios: AtomicU64::new(0),
        }
    }

    /// The I/O tracer handle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fanout `B`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Block transfers charged to the most recent operation.
    pub fn last_op_ios(&self) -> u64 {
        self.last_op_ios.load(Ordering::Relaxed)
    }

    /// Block transfers charged since construction.
    pub fn total_ios(&self) -> u64 {
        self.total_ios.load(Ordering::Relaxed)
    }

    /// The shared operation counters.
    pub fn counters(&self) -> &SharedCounters {
        &self.counters
    }

    /// Height of the tree (a single leaf has height 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        while let Node::Internal { children, .. } = &self.nodes[node] {
            node = children[0];
            h += 1;
        }
        h
    }

    fn finish_op(&self, ios: u64) {
        self.last_op_ios.store(ios, Ordering::Relaxed);
        self.total_ios.fetch_add(ios, Ordering::Relaxed);
        self.tracer.charge(ios, 0);
    }

    /// Charges one node touch to the running iteration (lazy traversals call
    /// this per node instead of batching a `finish_op`).
    fn charge_node(&self) {
        self.last_op_ios.fetch_add(1, Ordering::Relaxed);
        self.total_ios.fetch_add(1, Ordering::Relaxed);
        self.tracer.charge(1, 0);
    }

    fn min_fill(&self) -> usize {
        self.fanout.div_ceil(2)
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Looks up a key, cloning the value.
    pub fn get(&self, key: &K) -> Option<V> {
        self.get_ref(key).cloned()
    }

    /// Borrows the value stored under `key` without copying it: one root-to-
    /// leaf descent, zero allocations.
    pub fn get_ref(&self, key: &K) -> Option<&V> {
        self.counters.add_query();
        let mut ios = 0u64;
        let mut node = self.root;
        loop {
            ios += 1;
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = children[idx];
                }
                Node::Leaf { keys, values } => {
                    let result = keys.binary_search(key).ok().map(|idx| &values[idx]);
                    self.finish_op(ios);
                    return result;
                }
            }
        }
    }

    /// Lazily yields every pair whose key lies in `range`, in ascending key
    /// order: one descent to the leaf containing the lower bound, then a
    /// leaf-by-leaf walk, with no per-query allocation beyond the traversal
    /// stack. Node touches are charged to the I/O ledger as the iterator
    /// advances.
    pub fn range_iter<R: RangeBounds<K>>(&self, range: R) -> impl Iterator<Item = (&K, &V)> {
        self.counters.add_query();
        self.last_op_ios.store(0, Ordering::Relaxed);
        let (start, end) = cloned_bounds(&range);
        BTreeIter::seek(self, &start).take_while(move |&(k, _)| below_end_bound(k, &end))
    }

    /// Borrows every pair in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.range_iter(..)
    }

    /// Returns every pair with `low ≤ key ≤ high` in ascending order. Thin
    /// wrapper over [`BTree::range_iter`].
    pub fn range(&self, low: &K, high: &K) -> Vec<(K, V)> {
        self.range_iter((Bound::Included(low), Bound::Included(high)))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Replaces the entire contents with `pairs` via a bottom-up build:
    /// sorted pairs are packed into leaves as evenly as possible, then each
    /// internal level is built over the one below — `O(n log n)` for the
    /// sort plus `O(n)` node construction, against one root-to-leaf descent
    /// (with splits) per pair for incremental insertion. The input is
    /// normalised (last write wins); `seed` is accepted only for signature
    /// uniformity — the B-tree draws no coins, which is exactly why it is
    /// *not* history independent.
    pub fn bulk_load(&mut self, pairs: impl IntoIterator<Item = (K, V)>, seed: u64) {
        let _ = seed;
        let pairs = normalize_pairs(pairs.into_iter().collect());
        self.nodes.clear();
        self.len = pairs.len();
        self.counters.add_resize();
        if pairs.is_empty() {
            self.nodes.push(Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
            });
            self.root = 0;
            self.finish_op(1);
            return;
        }
        // Pack the leaf level: as few leaves as possible, sizes as even as
        // possible, so every non-root leaf meets the minimum-fill invariant.
        let chunk_count = pairs.len().div_ceil(self.fanout);
        // `(smallest key in subtree, node)` for the level being built.
        let mut level: Vec<(K, NodeId)> = Vec::with_capacity(chunk_count);
        let mut rest = pairs.as_slice();
        for chunk in 0..chunk_count {
            let size = rest.len().div_ceil(chunk_count - chunk);
            let (head, tail) = rest.split_at(size);
            rest = tail;
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf {
                keys: head.iter().map(|(k, _)| k.clone()).collect(),
                values: head.iter().map(|(_, v)| v.clone()).collect(),
            });
            level.push((head[0].0.clone(), id));
        }
        // Build internal levels until one root remains.
        while level.len() > 1 {
            let group_count = level.len().div_ceil(self.fanout);
            let mut next: Vec<(K, NodeId)> = Vec::with_capacity(group_count);
            let mut rest = level.as_slice();
            for group in 0..group_count {
                let size = rest.len().div_ceil(group_count - group);
                let (head, tail) = rest.split_at(size);
                rest = tail;
                let id = self.nodes.len();
                self.nodes.push(Node::Internal {
                    keys: head[1..].iter().map(|(k, _)| k.clone()).collect(),
                    children: head.iter().map(|&(_, child)| child).collect(),
                });
                next.push((head[0].0.clone(), id));
            }
            level = next;
        }
        self.root = level[0].1;
        // Charge one write per node built.
        self.finish_op(self.nodes.len() as u64);
    }

    /// Smallest key ≥ `key`.
    pub fn successor(&self, key: &K) -> Option<(K, V)> {
        let mut node = self.root;
        let mut candidate: Option<(K, V)> = None;
        loop {
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    // A sibling to the right may hold the successor if this
                    // subtree doesn't; remember the leftmost key of the next
                    // child subtree lazily by simply also descending there if
                    // needed — instead we record nothing and fall back to the
                    // parent separator keys, which are real keys in a B+-tree
                    // only at the leaf level, so we walk down and handle the
                    // "not found here" case below.
                    if idx < keys.len() {
                        // keys[idx] is the smallest key of children[idx + 1].
                        let mut probe = children[idx + 1];
                        loop {
                            match &self.nodes[probe] {
                                Node::Internal { children, .. } => probe = children[0],
                                Node::Leaf { keys, values } => {
                                    if !keys.is_empty() {
                                        candidate = Some((keys[0].clone(), values[0].clone()));
                                    }
                                    break;
                                }
                            }
                        }
                    }
                    node = children[idx];
                }
                Node::Leaf { keys, values } => {
                    let idx = keys.partition_point(|k| k < key);
                    if idx < keys.len() {
                        return Some((keys[idx].clone(), values[idx].clone()));
                    }
                    return candidate;
                }
            }
        }
    }

    /// Largest key ≤ `key`.
    pub fn predecessor(&self, key: &K) -> Option<(K, V)> {
        let mut node = self.root;
        let mut candidate: Option<(K, V)> = None;
        loop {
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    if idx > 0 {
                        // The rightmost key of children[idx - 1]'s subtree is
                        // a candidate.
                        let mut probe = children[idx - 1];
                        loop {
                            match &self.nodes[probe] {
                                Node::Internal { children, .. } => {
                                    // hi-lint: allow(panic-surface): B-tree invariant: internal nodes always hold at least one child
                                    probe = *children.last().expect("internal node has children");
                                }
                                Node::Leaf { keys, values } => {
                                    if let (Some(k), Some(v)) = (keys.last(), values.last()) {
                                        candidate = Some((k.clone(), v.clone()));
                                    }
                                    break;
                                }
                            }
                        }
                    }
                    node = children[idx];
                }
                Node::Leaf { keys, values } => {
                    let idx = keys.partition_point(|k| k <= key);
                    if idx > 0 {
                        return Some((keys[idx - 1].clone(), values[idx - 1].clone()));
                    }
                    return candidate;
                }
            }
        }
    }

    /// Collects the whole tree in ascending key order.
    pub fn to_sorted_vec(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len);
        self.collect_node(self.root, &mut out);
        out
    }

    fn collect_node(&self, node: NodeId, out: &mut Vec<(K, V)>) {
        match &self.nodes[node] {
            Node::Internal { children, .. } => {
                for child in children {
                    self.collect_node(*child, out);
                }
            }
            Node::Leaf { keys, values } => {
                for (k, v) in keys.iter().zip(values) {
                    out.push((k.clone(), v.clone()));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Inserts a key–value pair, returning the previous value if present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.counters.add_insert();
        let mut ios = 0u64;
        let result = self.insert_rec(self.root, key, value, &mut ios);
        let (old, split) = result;
        if let Some((sep, right)) = split {
            // Grow a new root.
            let new_root = self.nodes.len();
            let old_root = self.root;
            self.nodes.push(Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            });
            self.root = new_root;
            ios += 1;
        }
        if old.is_none() {
            self.len += 1;
        }
        self.finish_op(ios);
        old
    }

    /// Recursive insert; returns the replaced value (if any) and, when the
    /// child split, the separator key and new right sibling.
    fn insert_rec(
        &mut self,
        node: NodeId,
        key: K,
        value: V,
        ios: &mut u64,
    ) -> (Option<V>, Option<(K, NodeId)>) {
        *ios += 2; // read + write of this node
        match &mut self.nodes[node] {
            Node::Leaf { keys, values } => match keys.binary_search(&key) {
                Ok(idx) => {
                    let old = std::mem::replace(&mut values[idx], value);
                    (Some(old), None)
                }
                Err(idx) => {
                    keys.insert(idx, key);
                    values.insert(idx, value);
                    if keys.len() > self.fanout {
                        (None, Some(self.split_leaf(node)))
                    } else {
                        (None, None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                let child = children[idx];
                let (old, split) = self.insert_rec(child, key, value, ios);
                if let Some((sep, right)) = split {
                    if let Node::Internal { keys, children } = &mut self.nodes[node] {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if children.len() > self.fanout {
                            return (old, Some(self.split_internal(node)));
                        }
                    }
                }
                (old, None)
            }
        }
    }

    fn split_leaf(&mut self, node: NodeId) -> (K, NodeId) {
        let Node::Leaf { keys, values } = &mut self.nodes[node] else {
            unreachable!("split_leaf on an internal node");
        };
        let mid = keys.len() / 2;
        let right_keys = keys.split_off(mid);
        let right_values = values.split_off(mid);
        let sep = right_keys[0].clone();
        let right = self.nodes.len();
        self.nodes.push(Node::Leaf {
            keys: right_keys,
            values: right_values,
        });
        (sep, right)
    }

    fn split_internal(&mut self, node: NodeId) -> (K, NodeId) {
        let Node::Internal { keys, children } = &mut self.nodes[node] else {
            unreachable!("split_internal on a leaf");
        };
        let mid = children.len() / 2;
        // keys has children.len() - 1 entries; the separator promoted to the
        // parent is keys[mid - 1].
        let right_children = children.split_off(mid);
        let mut right_keys = keys.split_off(mid - 1);
        let sep = right_keys.remove(0);
        let right = self.nodes.len();
        self.nodes.push(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        (sep, right)
    }

    // ------------------------------------------------------------------
    // Batched insert (shared-prefix finger)
    // ------------------------------------------------------------------

    /// Inserts one pair of a batch, reusing `finger` — the last descent's
    /// leaf together with its separator bounds — when the key still falls
    /// inside that leaf and the leaf has room. A finger hit costs one leaf
    /// read + write; a miss pays a full descent (recording the path in the
    /// reusable `path` buffer so splits can propagate iteratively) and
    /// re-seats the finger. Structurally identical to [`BTree::insert`]:
    /// the same leaves are chosen and the same splits fire, in the same
    /// order.
    fn insert_with_finger(
        &mut self,
        finger: &mut Option<(NodeId, Option<K>, Option<K>)>,
        path: &mut Vec<(NodeId, usize)>,
        key: K,
        value: V,
    ) -> Option<V> {
        self.counters.add_insert();
        if let Some((leaf, low, high)) = finger.as_ref() {
            let in_bounds =
                low.as_ref().is_none_or(|l| *l <= key) && high.as_ref().is_none_or(|h| key < *h);
            if in_bounds {
                if let Node::Leaf { keys, values } = &mut self.nodes[*leaf] {
                    match keys.binary_search(&key) {
                        Ok(idx) => {
                            let old = std::mem::replace(&mut values[idx], value);
                            self.finish_op(2);
                            return Some(old);
                        }
                        Err(idx) if keys.len() < self.fanout => {
                            keys.insert(idx, key);
                            values.insert(idx, value);
                            self.len += 1;
                            self.finish_op(2);
                            return None;
                        }
                        Err(_) => {} // full leaf: fall through to the descent
                    }
                }
            }
        }
        *finger = None;
        // Full descent, recording the root-to-leaf path and the leaf's
        // separator bounds.
        path.clear();
        let mut low: Option<K> = None;
        let mut high: Option<K> = None;
        let mut node = self.root;
        let mut ios = 0u64;
        loop {
            ios += 2;
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| *k <= key);
                    if idx > 0 {
                        low = Some(keys[idx - 1].clone());
                    }
                    if idx < keys.len() {
                        high = Some(keys[idx].clone());
                    }
                    path.push((node, idx));
                    node = children[idx];
                }
                Node::Leaf { .. } => break,
            }
        }
        let leaf = node;
        let mut old = None;
        let mut need_split = false;
        if let Node::Leaf { keys, values } = &mut self.nodes[leaf] {
            match keys.binary_search(&key) {
                Ok(idx) => {
                    old = Some(std::mem::replace(&mut values[idx], value));
                }
                Err(idx) => {
                    keys.insert(idx, key);
                    values.insert(idx, value);
                    self.len += 1;
                    need_split = keys.len() > self.fanout;
                }
            }
        }
        let mut split = if need_split {
            Some(self.split_leaf(leaf))
        } else {
            None
        };
        let clean = split.is_none();
        // Propagate splits up the recorded path, exactly as the recursive
        // per-op unwinding would.
        while let Some((sep, right)) = split.take() {
            match path.pop() {
                Some((parent, idx)) => {
                    let mut parent_split = false;
                    if let Node::Internal { keys, children } = &mut self.nodes[parent] {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        parent_split = children.len() > self.fanout;
                    }
                    if parent_split {
                        split = Some(self.split_internal(parent));
                    }
                }
                None => {
                    let new_root = self.nodes.len();
                    let old_root = self.root;
                    self.nodes.push(Node::Internal {
                        keys: vec![sep],
                        children: vec![old_root, right],
                    });
                    self.root = new_root;
                    ios += 1;
                }
            }
        }
        if clean {
            // Bounds (and the leaf itself) survive only a split-free insert.
            *finger = Some((leaf, low, high));
        }
        self.finish_op(ios);
        old
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Removes a key, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.counters.add_delete();
        let mut ios = 0u64;
        let removed = self.remove_rec(self.root, key, &mut ios);
        if removed.is_some() {
            self.len -= 1;
        }
        // Collapse a root that lost all but one child.
        if let Node::Internal { children, .. } = &self.nodes[self.root] {
            if children.len() == 1 {
                self.root = children[0];
                ios += 1;
            }
        }
        self.finish_op(ios);
        removed
    }

    fn remove_rec(&mut self, node: NodeId, key: &K, ios: &mut u64) -> Option<V> {
        *ios += 2;
        match &mut self.nodes[node] {
            Node::Leaf { keys, values } => match keys.binary_search(key) {
                Ok(idx) => {
                    keys.remove(idx);
                    Some(values.remove(idx))
                }
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= key);
                let child = children[idx];
                let removed = self.remove_rec(child, key, ios);
                if removed.is_some() {
                    self.rebalance_child(node, idx, ios);
                }
                removed
            }
        }
    }

    /// Restores the minimum-fill invariant of `children[idx]` of `parent` by
    /// borrowing from or merging with a sibling.
    fn rebalance_child(&mut self, parent: NodeId, idx: usize, ios: &mut u64) {
        let min = self.min_fill();
        let (child, child_len) = {
            let Node::Internal { children, .. } = &self.nodes[parent] else {
                unreachable!("parent must be internal");
            };
            let child = children[idx];
            (child, self.nodes[child].len())
        };
        if child_len >= min || self.root == child {
            return;
        }
        let Node::Internal { children, .. } = &self.nodes[parent] else {
            unreachable!();
        };
        let sibling_count = children.len();
        // Prefer borrowing from / merging with the left sibling.
        if idx > 0 {
            let left = children[idx - 1];
            if self.nodes[left].len() > min {
                self.borrow_from_left(parent, idx, ios);
            } else {
                self.merge_children(parent, idx - 1, ios);
            }
        } else if idx + 1 < sibling_count {
            let right = children[idx + 1];
            if self.nodes[right].len() > min {
                self.borrow_from_right(parent, idx, ios);
            } else {
                self.merge_children(parent, idx, ios);
            }
        }
        let _ = child;
    }

    fn borrow_from_left(&mut self, parent: NodeId, idx: usize, ios: &mut u64) {
        *ios += 2;
        let (left_id, child_id) = {
            let Node::Internal { children, .. } = &self.nodes[parent] else {
                unreachable!();
            };
            (children[idx - 1], children[idx])
        };
        if self.nodes[left_id].is_leaf() {
            let (k, v) = {
                let Node::Leaf { keys, values } = &mut self.nodes[left_id] else {
                    unreachable!();
                };
                (
                    // hi-lint: allow(panic-surface): the donor sibling was checked to have surplus entries
                    keys.pop().expect("donor leaf"),
                    // hi-lint: allow(panic-surface): the donor sibling was checked to have surplus entries
                    values.pop().expect("donor leaf"),
                )
            };
            let new_sep = k.clone();
            {
                let Node::Leaf { keys, values } = &mut self.nodes[child_id] else {
                    unreachable!();
                };
                keys.insert(0, k);
                values.insert(0, v);
            }
            let Node::Internal { keys, .. } = &mut self.nodes[parent] else {
                unreachable!();
            };
            keys[idx - 1] = new_sep;
        } else {
            let (donated_child, donated_key) = {
                let Node::Internal { keys, children } = &mut self.nodes[left_id] else {
                    unreachable!();
                };
                // hi-lint: allow(panic-surface): the donor sibling was checked to have surplus entries
                (children.pop().expect("donor"), keys.pop().expect("donor"))
            };
            let old_sep = {
                let Node::Internal { keys, .. } = &mut self.nodes[parent] else {
                    unreachable!();
                };
                std::mem::replace(&mut keys[idx - 1], donated_key)
            };
            let Node::Internal { keys, children } = &mut self.nodes[child_id] else {
                unreachable!();
            };
            keys.insert(0, old_sep);
            children.insert(0, donated_child);
        }
    }

    fn borrow_from_right(&mut self, parent: NodeId, idx: usize, ios: &mut u64) {
        *ios += 2;
        let (child_id, right_id) = {
            let Node::Internal { children, .. } = &self.nodes[parent] else {
                unreachable!();
            };
            (children[idx], children[idx + 1])
        };
        if self.nodes[right_id].is_leaf() {
            let (k, v) = {
                let Node::Leaf { keys, values } = &mut self.nodes[right_id] else {
                    unreachable!();
                };
                (keys.remove(0), values.remove(0))
            };
            let new_sep = {
                let Node::Leaf { keys, .. } = &self.nodes[right_id] else {
                    unreachable!();
                };
                keys[0].clone()
            };
            {
                let Node::Leaf { keys, values } = &mut self.nodes[child_id] else {
                    unreachable!();
                };
                keys.push(k);
                values.push(v);
            }
            let Node::Internal { keys, .. } = &mut self.nodes[parent] else {
                unreachable!();
            };
            keys[idx] = new_sep;
        } else {
            let (donated_child, donated_key) = {
                let Node::Internal { keys, children } = &mut self.nodes[right_id] else {
                    unreachable!();
                };
                (children.remove(0), keys.remove(0))
            };
            let old_sep = {
                let Node::Internal { keys, .. } = &mut self.nodes[parent] else {
                    unreachable!();
                };
                std::mem::replace(&mut keys[idx], donated_key)
            };
            let Node::Internal { keys, children } = &mut self.nodes[child_id] else {
                unreachable!();
            };
            keys.push(old_sep);
            children.push(donated_child);
        }
    }

    /// Merges `children[idx + 1]` of `parent` into `children[idx]`.
    fn merge_children(&mut self, parent: NodeId, idx: usize, ios: &mut u64) {
        *ios += 2;
        let (left_id, right_id, sep) = {
            let Node::Internal { keys, children } = &mut self.nodes[parent] else {
                unreachable!();
            };
            let right = children.remove(idx + 1);
            let sep = keys.remove(idx);
            (children[idx], right, sep)
        };
        let right_node = std::mem::replace(
            &mut self.nodes[right_id],
            Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
            },
        );
        match (&mut self.nodes[left_id], right_node) {
            (
                Node::Leaf { keys, values },
                Node::Leaf {
                    keys: rk,
                    values: rv,
                },
            ) => {
                keys.extend(rk);
                values.extend(rv);
            }
            (
                Node::Internal { keys, children },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                keys.push(sep);
                keys.extend(rk);
                children.extend(rc);
            }
            _ => unreachable!("siblings at the same height share a node kind"),
        }
    }

    /// Verifies the B+-tree invariants (ordering, fill factors, uniform leaf
    /// depth). Intended for tests.
    pub fn check_invariants(&self) {
        let mut leaf_depths = Vec::new();
        self.check_node(self.root, None, None, 0, &mut leaf_depths, true);
        leaf_depths.dedup();
        assert!(leaf_depths.len() <= 1, "leaves at different depths");
        assert_eq!(self.to_sorted_vec().len(), self.len);
    }

    fn check_node(
        &self,
        node: NodeId,
        low: Option<&K>,
        high: Option<&K>,
        depth: usize,
        leaf_depths: &mut Vec<usize>,
        is_root: bool,
    ) {
        match &self.nodes[node] {
            Node::Leaf { keys, .. } => {
                leaf_depths.push(depth);
                assert!(keys.len() <= self.fanout);
                if !is_root {
                    assert!(keys.len() >= self.min_fill().saturating_sub(1));
                }
                for window in keys.windows(2) {
                    assert!(window[0] < window[1], "unsorted leaf");
                }
                if let (Some(lo), Some(first)) = (low, keys.first()) {
                    assert!(first >= lo);
                }
                if let (Some(hi), Some(last)) = (high, keys.last()) {
                    assert!(last < hi);
                }
            }
            Node::Internal { keys, children } => {
                assert!(children.len() <= self.fanout);
                if !is_root {
                    assert!(children.len() >= self.min_fill().saturating_sub(1));
                } else {
                    assert!(children.len() >= 2);
                }
                assert_eq!(keys.len() + 1, children.len());
                for window in keys.windows(2) {
                    assert!(window[0] < window[1], "unsorted separators");
                }
                for (i, child) in children.iter().enumerate() {
                    let lo = if i == 0 { low } else { Some(&keys[i - 1]) };
                    let hi = if i == keys.len() {
                        high
                    } else {
                        Some(&keys[i])
                    };
                    self.check_node(*child, lo, hi, depth + 1, leaf_depths, false);
                }
            }
        }
    }
}

/// Lazy in-order traversal of a [`BTree`], starting at a seeked lower bound.
///
/// Holds a stack of `(internal node, child index)` pairs for the current
/// root-to-leaf path plus a cursor into the current leaf; advancing past a
/// leaf pops the stack to the next unvisited subtree. Each node entered is
/// charged one transfer to the tree's I/O ledger, mirroring the eager
/// implementation's accounting.
struct BTreeIter<'a, K: Ord + Clone, V: Clone> {
    tree: &'a BTree<K, V>,
    /// `(node, child index currently being visited)` for each internal node
    /// on the path from the root to the current leaf.
    stack: Vec<(NodeId, usize)>,
    /// Current leaf and the index of the next entry to yield.
    leaf: Option<(NodeId, usize)>,
}

impl<'a, K: Ord + Clone, V: Clone> BTreeIter<'a, K, V> {
    /// Positions the iterator at the first entry satisfying `start`.
    fn seek(tree: &'a BTree<K, V>, start: &Bound<K>) -> Self {
        let mut it = Self {
            tree,
            stack: Vec::new(),
            leaf: None,
        };
        let mut node = tree.root;
        loop {
            tree.charge_node();
            match &tree.nodes[node] {
                Node::Internal { keys, children } => {
                    let idx = match start {
                        Bound::Included(k) | Bound::Excluded(k) => keys.partition_point(|x| x <= k),
                        Bound::Unbounded => 0,
                    };
                    it.stack.push((node, idx));
                    node = children[idx];
                }
                Node::Leaf { keys, .. } => {
                    let idx = match start {
                        Bound::Included(k) => keys.partition_point(|x| x < k),
                        Bound::Excluded(k) => keys.partition_point(|x| x <= k),
                        Bound::Unbounded => 0,
                    };
                    it.leaf = Some((node, idx));
                    return it;
                }
            }
        }
    }

    /// Descends to the leftmost leaf of `node`, pushing the path.
    fn descend_first(&mut self, mut node: NodeId) {
        loop {
            self.tree.charge_node();
            match &self.tree.nodes[node] {
                Node::Internal { children, .. } => {
                    self.stack.push((node, 0));
                    node = children[0];
                }
                Node::Leaf { .. } => {
                    self.leaf = Some((node, 0));
                    return;
                }
            }
        }
    }
}

impl<'a, K: Ord + Clone, V: Clone> Iterator for BTreeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            if let Some((leaf_id, idx)) = self.leaf {
                if let Node::Leaf { keys, values } = &self.tree.nodes[leaf_id] {
                    if idx < keys.len() {
                        self.leaf = Some((leaf_id, idx + 1));
                        return Some((&keys[idx], &values[idx]));
                    }
                }
                self.leaf = None;
            }
            // Current leaf exhausted: pop to the next unvisited sibling
            // subtree and descend to its leftmost leaf.
            loop {
                let (node, child_idx) = self.stack.pop()?;
                if let Node::Internal { children, .. } = &self.tree.nodes[node] {
                    if child_idx + 1 < children.len() {
                        self.stack.push((node, child_idx + 1));
                        self.descend_first(children[child_idx + 1]);
                        break;
                    }
                }
            }
        }
    }
}

impl<K: Ord + Clone, V: Clone> Dictionary for BTree<K, V> {
    type Key = K;
    type Value = V;

    fn len(&self) -> usize {
        BTree::len(self)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        BTree::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        BTree::remove(self, key)
    }

    fn get_ref(&self, key: &K) -> Option<&V> {
        BTree::get_ref(self, key)
    }

    fn get(&self, key: &K) -> Option<V> {
        BTree::get(self, key)
    }

    fn range_iter<R: RangeBounds<K>>(&self, range: R) -> impl Iterator<Item = (&K, &V)> {
        BTree::range_iter(self, range)
    }

    fn range(&self, low: &K, high: &K) -> Vec<(K, V)> {
        BTree::range(self, low, high)
    }

    fn successor(&self, key: &K) -> Option<(K, V)> {
        BTree::successor(self, key)
    }

    fn predecessor(&self, key: &K) -> Option<(K, V)> {
        BTree::predecessor(self, key)
    }

    fn to_sorted_vec(&self) -> Vec<(K, V)> {
        BTree::to_sorted_vec(self)
    }

    fn bulk_load(&mut self, pairs: impl IntoIterator<Item = (K, V)>, seed: u64) {
        BTree::bulk_load(self, pairs, seed)
    }

    /// Batched updates with shared-prefix finger insertion: runs of keys
    /// that land in the same leaf skip the root descent entirely. Produces
    /// exactly the tree the per-op loop would (same leaves, same splits,
    /// same arena order); only the I/O accounting shrinks.
    fn apply_batch(&mut self, ops: Vec<hi_common::batch::BatchOp<K, V>>) -> usize {
        let mut removed = 0usize;
        let mut finger: Option<(NodeId, Option<K>, Option<K>)> = None;
        let mut path: Vec<(NodeId, usize)> = Vec::new();
        for op in ops {
            match op {
                hi_common::batch::BatchOp::Put(k, v) => {
                    self.insert_with_finger(&mut finger, &mut path, k, v);
                }
                hi_common::batch::BatchOp::Remove(k) => {
                    // Removals rebalance (borrow/merge), which can reshape
                    // any node on the path: drop the finger.
                    finger = None;
                    if self.remove(&k).is_some() {
                        removed += 1;
                    }
                }
            }
        }
        removed
    }

    /// Sorted-probe lookups with a leaf finger: consecutive keys that fall
    /// in the same leaf cost one node touch instead of a descent. Results
    /// are returned in input order via an index permutation.
    fn get_many(&self, keys_in: &[K]) -> Vec<Option<V>> {
        let mut order: Vec<u32> = (0..keys_in.len() as u32).collect();
        order.sort_by(|&a, &b| keys_in[a as usize].cmp(&keys_in[b as usize]));
        let mut out: Vec<Option<V>> = (0..keys_in.len()).map(|_| None).collect();
        // `(leaf, upper separator)`: probes ascend, so only the upper bound
        // can invalidate the finger.
        let mut finger: Option<(NodeId, Option<K>)> = None;
        for &i in &order {
            let key = &keys_in[i as usize];
            self.counters.add_query();
            let leaf = match &finger {
                Some((leaf, high)) if high.as_ref().is_none_or(|h| key < h) => {
                    self.charge_node();
                    *leaf
                }
                _ => {
                    let mut node = self.root;
                    let mut high: Option<K> = None;
                    let mut ios = 0u64;
                    loop {
                        ios += 1;
                        match &self.nodes[node] {
                            Node::Internal { keys, children } => {
                                let idx = keys.partition_point(|k| k <= key);
                                if idx < keys.len() {
                                    high = Some(keys[idx].clone());
                                }
                                node = children[idx];
                            }
                            Node::Leaf { .. } => break,
                        }
                    }
                    self.finish_op(ios);
                    finger = Some((node, high));
                    node
                }
            };
            if let Node::Leaf { keys, values } = &self.nodes[leaf] {
                out[i as usize] = keys.binary_search(key).ok().map(|idx| values[idx].clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree() {
        let t: BTree<u64, u64> = BTree::new(8);
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert_eq!(t.range(&0, &10), vec![]);
        t.check_invariants();
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn tiny_fanout_rejected() {
        let _t: BTree<u64, u64> = BTree::new(2);
    }

    #[test]
    fn insert_and_get() {
        let mut t = BTree::new(8);
        for k in 0..1999u64 {
            assert_eq!(t.insert(k * 7 % 1999, k), None);
        }
        t.check_invariants();
        for k in 0..1999u64 {
            assert!(t.get(&k).is_some(), "missing key {k}");
        }
    }

    #[test]
    fn insert_replaces() {
        let mut t = BTree::new(8);
        assert_eq!(t.insert(5, 1), None);
        assert_eq!(t.insert(5, 2), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        for fanout in [4usize, 8, 32, 128] {
            let mut t: BTree<u64, u64> = BTree::new(fanout);
            let mut model = BTreeMap::new();
            let mut rng = StdRng::seed_from_u64(fanout as u64);
            for step in 0..6000u64 {
                let key = rng.gen_range(0..1000);
                match rng.gen_range(0..10) {
                    0..=5 => assert_eq!(t.insert(key, step), model.insert(key, step)),
                    6..=8 => assert_eq!(t.remove(&key), model.remove(&key)),
                    _ => assert_eq!(t.get(&key), model.get(&key).copied()),
                }
                if step % 1500 == 0 {
                    t.check_invariants();
                }
            }
            t.check_invariants();
            assert_eq!(
                t.to_sorted_vec(),
                model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
                "fanout {fanout}"
            );
        }
    }

    #[test]
    fn range_matches_model() {
        let mut t = BTree::new(16);
        let mut model = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..3000 {
            let k = rng.gen_range(0..10_000u64);
            t.insert(k, k * 2);
            model.insert(k, k * 2);
        }
        for _ in 0..60 {
            let a = rng.gen_range(0..10_000u64);
            let b = rng.gen_range(a..10_000u64);
            let expected: Vec<(u64, u64)> = model.range(a..=b).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(t.range(&a, &b), expected);
        }
    }

    #[test]
    fn successor_predecessor() {
        let mut t = BTree::new(8);
        for k in (0..1000u64).step_by(10) {
            t.insert(k, k);
        }
        assert_eq!(t.successor(&0), Some((0, 0)));
        assert_eq!(t.successor(&1), Some((10, 10)));
        assert_eq!(t.successor(&991), None);
        assert_eq!(t.predecessor(&995), Some((990, 990)));
        assert_eq!(t.predecessor(&10), Some((10, 10)));
        assert_eq!(t.predecessor(&9), Some((0, 0)));
        // Check around internal-node boundaries too.
        for probe in (5..995u64).step_by(10) {
            assert_eq!(t.successor(&probe), Some((probe + 5, probe + 5)));
            assert_eq!(t.predecessor(&probe), Some((probe - 5, probe - 5)));
        }
    }

    #[test]
    fn height_is_logarithmic_in_fanout() {
        let mut wide: BTree<u64, u64> = BTree::new(128);
        let mut narrow: BTree<u64, u64> = BTree::new(4);
        for k in 0..20_000u64 {
            wide.insert(k, k);
            narrow.insert(k, k);
        }
        assert!(wide.height() <= 3, "wide height {}", wide.height());
        assert!(narrow.height() >= 6, "narrow height {}", narrow.height());
        // log_B N I/Os per search.
        wide.get(&12_345);
        assert!(wide.last_op_ios() <= 3);
    }

    #[test]
    fn delete_everything() {
        let mut t = BTree::new(8);
        let n = 3000u64;
        for k in 0..n {
            t.insert(k, k);
        }
        for k in (0..n).rev() {
            assert_eq!(t.remove(&k), Some(k), "key {k}");
        }
        assert!(t.is_empty());
        t.check_invariants();
        assert_eq!(t.remove(&5), None);
    }

    #[test]
    fn bulk_load_builds_a_valid_tree() {
        for fanout in [4usize, 8, 64] {
            for n in [0usize, 1, 3, 7, 8, 9, 63, 64, 65, 1000, 4096, 5000] {
                let mut t: BTree<u64, u64> = BTree::new(fanout);
                t.insert(999_999, 1); // pre-existing contents must be discarded
                let mut pairs: Vec<(u64, u64)> = (0..n as u64).rev().map(|k| (k, k * 2)).collect();
                pairs.push((0, 7)); // duplicate: last write wins
                t.bulk_load(pairs, 0);
                t.check_invariants();
                assert_eq!(t.len(), n.max(1), "fanout {fanout}, n {n}");
                assert_eq!(t.get(&0), Some(7));
                assert_eq!(t.get(&999_999), None);
                if n > 2 {
                    assert_eq!(t.get(&(n as u64 - 1)), Some((n as u64 - 1) * 2));
                    assert_eq!(t.successor(&1), Some((1, 2)));
                }
                // Still fully operational after the load.
                t.insert(u64::MAX, 1);
                t.remove(&0);
                t.check_invariants();
            }
        }
    }

    #[test]
    fn apply_batch_matches_per_op_structure() {
        use hi_common::batch::BatchOp;
        // Finger insertion must produce exactly the per-op tree: same arena
        // (node ids, split order), same contents — across sequential,
        // random and duplicate-heavy batches, interleaved with removals.
        for fanout in [4usize, 16, 64] {
            let mut rng = StdRng::seed_from_u64(fanout as u64 ^ 0xBA7C4);
            let mut per_op: BTree<u64, u64> = BTree::new(fanout);
            let mut batched: BTree<u64, u64> = BTree::new(fanout);
            for round in 0..6 {
                let ops: Vec<BatchOp<u64, u64>> = (0..800)
                    .map(|i| {
                        let key = match round % 3 {
                            0 => (round * 1_000 + i) as u64, // sequential run
                            1 => rng.gen_range(0..5_000u64), // random
                            _ => rng.gen_range(0..64u64),    // hot duplicates
                        };
                        if rng.gen_bool(0.25) {
                            BatchOp::Remove(key)
                        } else {
                            BatchOp::Put(key, rng.gen())
                        }
                    })
                    .collect();
                let mut expected_removed = 0usize;
                for op in &ops {
                    match op {
                        BatchOp::Put(k, v) => {
                            per_op.insert(*k, *v);
                        }
                        BatchOp::Remove(k) => {
                            if per_op.remove(k).is_some() {
                                expected_removed += 1;
                            }
                        }
                    }
                }
                let removed = Dictionary::apply_batch(&mut batched, ops);
                assert_eq!(removed, expected_removed, "fanout {fanout} round {round}");
                assert_eq!(per_op.len(), batched.len());
                assert_eq!(per_op.to_sorted_vec(), batched.to_sorted_vec());
                batched.check_invariants();
            }
            // get_many agrees with per-key gets, in input order.
            let probes: Vec<u64> = (0..200).map(|_| rng.gen_range(0..6_000u64)).collect();
            let expected: Vec<Option<u64>> = probes.iter().map(|k| batched.get(k)).collect();
            assert_eq!(Dictionary::get_many(&batched, &probes), expected);
        }
    }

    #[test]
    fn io_accounting_tracks_height() {
        let mut t: BTree<u64, u64> = BTree::new(16);
        for k in 0..50_000u64 {
            t.insert(k, k);
        }
        let h = t.height() as u64;
        t.get(&25_000);
        assert_eq!(t.last_op_ios(), h, "search should read one node per level");
        assert!(t.total_ios() > 0);
    }
}

// Compile-time audit for the sharded service layer: the B-tree must be
// movable onto worker threads whenever its keys and values are.
#[cfg(test)]
mod send_sync_audit {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn btree_is_send_and_sync() {
        assert_send_sync::<BTree<u64, u64>>();
        assert_send_sync::<BTree<String, Vec<u8>>>();
    }
}
