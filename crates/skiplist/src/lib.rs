//! Skip lists for external memory (paper §6).
//!
//! Three structures share one engine ([`ExternalSkipList`]), differing only
//! in their [`SkipParams`]:
//!
//! | Constructor | Promotion | Leaf packing | Role in the paper |
//! |---|---|---|---|
//! | [`ExternalSkipList::history_independent`] | `1/B^γ`, `γ = (1+ε)/2` | arrays padded per Invariant 16, packed into leaf nodes | Theorem 3: `O(log_B N)` searches & updates whp, `O(log_B N / ε + k/B)` range queries |
//! | [`ExternalSkipList::folklore_b`] | `1/B` | none | Lemma 15: whp search cost no better than in-memory |
//! | [`ExternalSkipList::in_memory`] | `1/2` | none (1 element per block) | the RAM baseline run on disk |
//!
//! All three are weakly history independent: levels are independent coin
//! flips per element, array contents are sorted, and array sizes are drawn
//! from history-independent distributions.
//!
//! # Quick example
//!
//! ```
//! use skiplist::ExternalSkipList;
//! use hi_common::Dictionary;
//!
//! let mut index: ExternalSkipList<u64, String> =
//!     ExternalSkipList::history_independent(64, 0.5, 42);
//! index.insert(10, "ten".into());
//! index.insert(3, "three".into());
//! assert_eq!(index.get(&10), Some("ten".into()));
//! assert_eq!(index.range(&0, &5), vec![(3, "three".into())]);
//! // Every operation reports its DAM-model cost:
//! assert!(index.last_op_ios() >= 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod external;
pub mod params;

pub use external::ExternalSkipList;
pub use params::{LeafPad, SkipParams};

// Compile-time audit for the sharded service layer: the external skip list
// (nodes + RNG + instrumentation handles) must be movable onto worker
// threads whenever its keys and values are.
#[cfg(test)]
mod send_sync_audit {
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn skip_list_is_send_and_sync() {
        assert_send_sync::<crate::ExternalSkipList<u64, u64>>();
        assert_send_sync::<crate::ExternalSkipList<String, Vec<u8>>>();
    }
}
