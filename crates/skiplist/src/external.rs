//! The external-memory skip-list engine.
//!
//! One engine implements all three §6 structures; they differ only in their
//! [`SkipParams`]:
//!
//! * [`ExternalSkipList::history_independent`] — the paper's structure:
//!   promotion probability `1/B^γ`, leaf arrays padded per Invariant 16 and
//!   packed into leaf nodes delimited by twice-promoted elements.
//! * [`ExternalSkipList::folklore_b`] — the folklore B-skip list (promotion
//!   `1/B`), the Lemma 15 baseline.
//! * [`ExternalSkipList::in_memory`] — a Pugh skip list run in external
//!   memory (promotion 1/2, one element per block).
//!
//! # Cost accounting
//!
//! Every operation records the number of block transfers it would incur in
//! the DAM model with a cold cache: the multi-level search path is charged
//! per level (the records scanned at that level, rounded up to blocks), the
//! leaf level is charged the padded size of the arrays or nodes it touches,
//! and structural rebuilds (array resize, array/node splits and merges) are
//! charged the padded size of every leaf node they rewrite. The benches read
//! the per-operation costs to reproduce Theorem 3 and Lemma 15.

use std::cmp::Ordering;
use std::ops::{Bound, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use hi_common::counters::SharedCounters;
use hi_common::rng::{DetRng, RngSource};
use hi_common::traits::{below_end_bound, cloned_bounds, normalize_pairs, Dictionary};
use io_sim::Tracer;

use crate::params::{LeafPad, SkipParams};

/// One stored element.
#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
    level: u8,
}

/// A leaf array: a maximal run of elements none of which (except possibly the
/// first) is promoted to level 1.
#[derive(Debug, Clone)]
struct LeafArray<K, V> {
    entries: Vec<Entry<K, V>>,
    pad: LeafPad,
}

impl<K, V> LeafArray<K, V> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Aligns the in-memory capacity with the drawn padded size (the space
    /// the array occupies on simulated disk), so inserts into this array
    /// cannot reallocate before the next pad redraw.
    fn reserve_pad(&mut self) {
        let want = self.pad.padded();
        if self.entries.capacity() < want {
            self.entries.reserve_exact(want - self.entries.len());
        }
    }
}

/// A leaf node: a group of consecutive leaf arrays stored contiguously on
/// disk. With leaf-node grouping enabled a node is delimited by
/// twice-promoted elements; without it every array is its own node.
#[derive(Debug, Clone)]
struct LeafNode<K, V> {
    arrays: Vec<LeafArray<K, V>>,
}

impl<K, V> LeafNode<K, V> {
    fn first_key(&self) -> &K {
        &self.arrays[0].entries[0].key
    }

    fn padded_records(&self) -> usize {
        self.arrays.iter().map(|a| a.pad.padded()).sum()
    }

    fn element_count(&self) -> usize {
        self.arrays.iter().map(LeafArray::len).sum()
    }
}

/// Location of a key (or of its insertion point) in the leaf level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Position {
    node: usize,
    array: usize,
    entry: usize,
    found: bool,
}

/// An external-memory skip list over ordered keys.
#[derive(Debug)]
pub struct ExternalSkipList<K: Ord + Clone, V: Clone> {
    nodes: Vec<LeafNode<K, V>>,
    /// `levels[i]` (for `i ≥ 1`) holds the keys promoted to level `i`, in
    /// sorted order. `levels[0]` is unused.
    levels: Vec<Vec<K>>,
    len: usize,
    params: SkipParams,
    rng: DetRng,
    counters: SharedCounters,
    tracer: Tracer,
    // Relaxed atomics, not `Cell`s: the I/O ledger must not stop the list
    // from being `Sync` (shared readers on the sharded service layer's
    // worker threads all charge leaf touches through `&self`).
    total_ios: AtomicU64,
    last_op_ios: AtomicU64,
}

impl<K: Ord + Clone, V: Clone> Clone for ExternalSkipList<K, V> {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            levels: self.levels.clone(),
            len: self.len,
            params: self.params,
            rng: self.rng.clone(),
            counters: self.counters.clone(),
            tracer: self.tracer.clone(),
            total_ios: AtomicU64::new(self.total_ios.load(AtomicOrdering::Relaxed)),
            last_op_ios: AtomicU64::new(self.last_op_ios.load(AtomicOrdering::Relaxed)),
        }
    }
}

impl<K: Ord + Clone, V: Clone> ExternalSkipList<K, V> {
    /// The paper's history-independent external-memory skip list
    /// (Theorem 3) with block size `block_elems` elements and trade-off
    /// parameter `epsilon`.
    pub fn history_independent(block_elems: usize, epsilon: f64, seed: u64) -> Self {
        Self::with_params(SkipParams::history_independent(block_elems, epsilon), seed)
    }

    /// The folklore B-skip list (promotion probability `1/B`), the
    /// Lemma 15 baseline.
    pub fn folklore_b(block_elems: usize, seed: u64) -> Self {
        Self::with_params(SkipParams::folklore_b(block_elems), seed)
    }

    /// An in-memory (promotion 1/2) skip list run in external memory: every
    /// node access costs one I/O.
    pub fn in_memory(seed: u64) -> Self {
        Self::with_params(SkipParams::in_memory(), seed)
    }

    /// Builds an empty skip list with explicit parameters.
    pub fn with_params(params: SkipParams, seed: u64) -> Self {
        Self::with_instrumentation(params, seed, SharedCounters::new(), Tracer::disabled())
    }

    /// Builds an empty skip list with explicit parameters, counters and I/O
    /// tracer — the uniform instrumentation hook used by the dictionary
    /// builder. The list computes its own DAM cost per operation and reports
    /// it into the tracer via [`Tracer::charge`].
    pub fn with_instrumentation(
        params: SkipParams,
        seed: u64,
        counters: SharedCounters,
        tracer: Tracer,
    ) -> Self {
        let mut source = RngSource::from_seed(seed);
        Self {
            nodes: Vec::new(),
            levels: vec![Vec::new()],
            len: 0,
            params,
            rng: source.split("skiplist"),
            counters,
            tracer,
            total_ios: AtomicU64::new(0),
            last_op_ios: AtomicU64::new(0),
        }
    }

    /// The I/O tracer handle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The configuration in use.
    pub fn params(&self) -> SkipParams {
        self.params
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Block transfers charged to the most recent operation.
    pub fn last_op_ios(&self) -> u64 {
        self.last_op_ios.load(AtomicOrdering::Relaxed)
    }

    /// Block transfers charged since construction.
    pub fn total_ios(&self) -> u64 {
        self.total_ios.load(AtomicOrdering::Relaxed)
    }

    /// The shared operation counters.
    pub fn counters(&self) -> &SharedCounters {
        &self.counters
    }

    /// Highest occupied level.
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// Total padded leaf records plus promoted keys — the structure's
    /// simulated disk footprint in records (Lemma 22's `Θ(N)` space).
    pub fn space_records(&self) -> usize {
        let leaf: usize = self.nodes.iter().map(LeafNode::padded_records).sum();
        let upper: usize = self.levels.iter().map(Vec::len).sum();
        leaf + upper
    }

    /// Number of leaf nodes currently on disk.
    pub fn leaf_node_count(&self) -> usize {
        self.nodes.len()
    }

    fn charge(&self, ios: u64) -> u64 {
        self.total_ios.fetch_add(ios, AtomicOrdering::Relaxed);
        self.tracer.charge(ios, 0);
        ios
    }

    fn finish_op(&self, ios: u64) {
        self.last_op_ios.store(ios, AtomicOrdering::Relaxed);
        self.charge(ios);
    }

    /// Adds `ios` to the running operation (lazy traversals charge node by
    /// node instead of batching a [`Self::finish_op`]).
    fn charge_append(&self, ios: u64) {
        self.last_op_ios.fetch_add(ios, AtomicOrdering::Relaxed);
        self.charge(ios);
    }

    // ------------------------------------------------------------------
    // Search-path cost and location
    // ------------------------------------------------------------------

    /// DAM cost of the non-leaf portion of a search for `key`: at every
    /// level the path scans the records between its entry point and the
    /// predecessor of `key` at that level.
    fn upper_search_cost(&self, key: &K) -> u64 {
        let mut ios = 0u64;
        let mut entry_key: Option<&K> = None;
        for level in (1..self.levels.len()).rev() {
            let keys = &self.levels[level];
            if keys.is_empty() {
                continue;
            }
            let start = match entry_key {
                Some(k) => keys.partition_point(|x| x < k),
                None => 0,
            };
            let end = keys.partition_point(|x| x <= key);
            let scanned = end.saturating_sub(start) + 1;
            ios += self.params.scan_cost(scanned).max(1);
            if end > 0 {
                entry_key = Some(&keys[end - 1]);
            }
        }
        ios
    }

    /// Finds the position of `key` (or its insertion point).
    fn locate(&self, key: &K) -> Option<Position> {
        if self.nodes.is_empty() {
            return None;
        }
        // Node whose first key is the greatest ≤ key (or node 0).
        let node_idx = self
            .nodes
            .partition_point(|n| n.first_key() <= key)
            .saturating_sub(1);
        let node = &self.nodes[node_idx];
        let array_idx = node
            .arrays
            .partition_point(|a| a.entries[0].key <= *key)
            .saturating_sub(1);
        let array = &node.arrays[array_idx];
        match array.entries.binary_search_by(|e| e.key.cmp(key)) {
            Ok(entry) => Some(Position {
                node: node_idx,
                array: array_idx,
                entry,
                found: true,
            }),
            Err(entry) => Some(Position {
                node: node_idx,
                array: array_idx,
                entry,
                found: false,
            }),
        }
    }

    /// Re-validates a position hint against the current structure: returns
    /// the location of `key` when the hinted array still *brackets* it
    /// (its first key ≤ `key` < the next array's first key), `None`
    /// otherwise. Array first keys are globally sorted and unique, so a
    /// bracketing array is exactly what [`ExternalSkipList::locate`] would
    /// find — the check is complete, which makes stale hints safe: they
    /// simply miss and fall back to a full search.
    fn locate_verified(&self, key: &K, hint: Position) -> Option<Position> {
        let node = self.nodes.get(hint.node)?;
        let array = node.arrays.get(hint.array)?;
        if array.entries[0].key > *key {
            return None;
        }
        let next_first: Option<&K> = if hint.array + 1 < node.arrays.len() {
            Some(&node.arrays[hint.array + 1].entries[0].key)
        } else if hint.node + 1 < self.nodes.len() {
            Some(self.nodes[hint.node + 1].first_key())
        } else {
            None
        };
        if let Some(nf) = next_first {
            if *key >= *nf {
                return None;
            }
        }
        match array.entries.binary_search_by(|e| e.key.cmp(key)) {
            Ok(entry) => Some(Position {
                node: hint.node,
                array: hint.array,
                entry,
                found: true,
            }),
            Err(entry) => Some(Position {
                node: hint.node,
                array: hint.array,
                entry,
                found: false,
            }),
        }
    }

    /// Cost of reading the leaf array at `pos`.
    fn leaf_read_cost(&self, pos: Position) -> u64 {
        let pad = self.nodes[pos.node].arrays[pos.array].pad.padded();
        self.params.scan_cost(pad).max(1)
    }

    /// Cost of rewriting the whole leaf node `node`.
    fn node_rebuild_cost(&self, node: usize) -> u64 {
        self.params
            .scan_cost(self.nodes[node].padded_records())
            .max(1)
    }

    // ------------------------------------------------------------------
    // Level bookkeeping
    // ------------------------------------------------------------------

    fn levels_insert(&mut self, key: &K, level: u8) {
        for l in 1..=level as usize {
            if self.levels.len() <= l {
                self.levels.push(Vec::new());
            }
            let keys = &mut self.levels[l];
            let idx = keys.partition_point(|x| x < key);
            keys.insert(idx, key.clone());
        }
    }

    fn levels_remove(&mut self, key: &K, level: u8) {
        for l in 1..=level as usize {
            let keys = &mut self.levels[l];
            if let Ok(idx) = keys.binary_search(key) {
                keys.remove(idx);
            }
        }
        while self.levels.len() > 1 && self.levels.last().is_some_and(Vec::is_empty) {
            self.levels.pop();
        }
    }

    // ------------------------------------------------------------------
    // Mutating operations
    // ------------------------------------------------------------------

    /// Inserts a key–value pair, returning the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let pos = self.locate(&key);
        self.insert_located(key, value, pos, false)
    }

    /// Insert body working from a precomputed location. `hinted` marks a
    /// verified-finger hit (batched callers), which skips the multi-level
    /// search cost; everything else — coin draws, splits, padding redraws —
    /// is identical to the per-op path.
    fn insert_located(
        &mut self,
        key: K,
        value: V,
        pos: Option<Position>,
        hinted: bool,
    ) -> Option<V> {
        self.counters.add_insert();
        let mut ios = if hinted {
            0
        } else {
            self.upper_search_cost(&key)
        };
        // Empty structure: create the first node.
        let Some(pos) = pos else {
            let level = self.params.draw_level(&mut self.rng);
            let pad = LeafPad::draw(1, self.params.min_pad, &mut self.rng);
            self.levels_insert(&key, level);
            let mut entries = Vec::with_capacity(pad.padded());
            entries.push(Entry { key, value, level });
            self.nodes.push(LeafNode {
                arrays: vec![LeafArray { entries, pad }],
            });
            self.len = 1;
            ios += self.node_rebuild_cost(0);
            self.finish_op(ios);
            return None;
        };
        ios += self.leaf_read_cost(pos);
        if pos.found {
            let old = std::mem::replace(
                &mut self.nodes[pos.node].arrays[pos.array].entries[pos.entry].value,
                value,
            );
            ios += self.leaf_read_cost(pos); // write the array back
            self.finish_op(ios);
            return Some(old);
        }
        let level = self.params.draw_level(&mut self.rng);
        if level >= 1 {
            // Only promoted keys are copied into the upper-level index; the
            // common (unpromoted) insert moves the key straight into the
            // leaf array without a single clone.
            self.levels_insert(&key, level);
        }
        self.nodes[pos.node].arrays[pos.array]
            .entries
            .insert(pos.entry, Entry { key, value, level });
        self.len += 1;

        let node_split_level: usize = if self.params.group_leaf_nodes { 2 } else { 1 };
        let mut rebuilt_nodes: Vec<usize> = Vec::new();

        if pos.entry == 0 {
            // `locate` only returns an insertion point at entry 0 when the
            // new key precedes every stored key, so this is a new global
            // minimum sitting at the head of array 0 of node 0. The displaced
            // old head may itself be promoted; if so, restore its array (and
            // possibly node) boundary right after the newcomer.
            debug_assert!(pos.node == 0 && pos.array == 0);
            let old_head_level = self.nodes[0].arrays[0].entries[1].level;
            if old_head_level >= 1 {
                let tail: Vec<Entry<K, V>> = self.nodes[0].arrays[0].entries.split_off(1);
                self.nodes[0].arrays[0].pad = LeafPad::draw(1, self.params.min_pad, &mut self.rng);
                self.nodes[0].arrays[0].reserve_pad();
                let tail_pad = LeafPad::draw(tail.len(), self.params.min_pad, &mut self.rng);
                let mut tail_array = LeafArray {
                    entries: tail,
                    pad: tail_pad,
                };
                tail_array.reserve_pad();
                self.nodes[0].arrays.insert(1, tail_array);
                rebuilt_nodes.push(0);
                if old_head_level as usize >= node_split_level {
                    let moved: Vec<LeafArray<K, V>> = self.nodes[0].arrays.split_off(1);
                    self.nodes.insert(1, LeafNode { arrays: moved });
                    rebuilt_nodes.push(1);
                }
            } else {
                let n = self.nodes[0].arrays[0].len();
                let redraw =
                    self.nodes[0].arrays[0]
                        .pad
                        .update(n, self.params.min_pad, &mut self.rng);
                if redraw {
                    self.nodes[0].arrays[0].reserve_pad();
                    rebuilt_nodes.push(0);
                } else {
                    ios += self.leaf_read_cost(pos); // write the array back
                }
            }
        } else if level >= 1 {
            // The new element starts a new leaf array: split at `pos.entry`.
            let tail: Vec<Entry<K, V>> = self.nodes[pos.node].arrays[pos.array]
                .entries
                .split_off(pos.entry);
            let head_len = self.nodes[pos.node].arrays[pos.array].len();
            let head_pad = LeafPad::draw(head_len, self.params.min_pad, &mut self.rng);
            self.nodes[pos.node].arrays[pos.array].pad = head_pad;
            self.nodes[pos.node].arrays[pos.array].reserve_pad();
            let tail_pad = LeafPad::draw(tail.len(), self.params.min_pad, &mut self.rng);
            let mut tail_array = LeafArray {
                entries: tail,
                pad: tail_pad,
            };
            tail_array.reserve_pad();
            self.nodes[pos.node]
                .arrays
                .insert(pos.array + 1, tail_array);
            rebuilt_nodes.push(pos.node);
            if level as usize >= node_split_level {
                // The new array (and everything after it) starts a new node.
                let moved: Vec<LeafArray<K, V>> =
                    self.nodes[pos.node].arrays.split_off(pos.array + 1);
                self.nodes.insert(pos.node + 1, LeafNode { arrays: moved });
                rebuilt_nodes.push(pos.node + 1);
            }
        } else {
            // Unpromoted element: only the array's padding may change.
            let n = self.nodes[pos.node].arrays[pos.array].len();
            let redraw = self.nodes[pos.node].arrays[pos.array].pad.update(
                n,
                self.params.min_pad,
                &mut self.rng,
            );
            if redraw {
                self.nodes[pos.node].arrays[pos.array].reserve_pad();
                rebuilt_nodes.push(pos.node);
            } else {
                ios += self.leaf_read_cost(pos); // write the array back
            }
        }
        rebuilt_nodes.sort_unstable();
        rebuilt_nodes.dedup();
        for node in rebuilt_nodes {
            ios += self.node_rebuild_cost(node);
            self.counters
                .add_rebuild(self.nodes[node].padded_records() as u64);
        }
        self.finish_op(ios);
        None
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let pos = self.locate(key);
        self.remove_located(key, pos, false)
    }

    /// Remove body working from a precomputed location (see
    /// [`ExternalSkipList::insert_located`]).
    fn remove_located(&mut self, key: &K, pos: Option<Position>, hinted: bool) -> Option<V> {
        self.counters.add_delete();
        let mut ios = if hinted {
            0
        } else {
            self.upper_search_cost(key)
        };
        let Some(pos) = pos else {
            self.finish_op(ios);
            return None;
        };
        ios += self.leaf_read_cost(pos);
        if !pos.found {
            self.finish_op(ios);
            return None;
        }
        let entry = self.nodes[pos.node].arrays[pos.array]
            .entries
            .remove(pos.entry);
        self.len -= 1;
        self.levels_remove(key, entry.level);

        let mut rebuilt_nodes: Vec<usize> = Vec::new();
        let was_array_head = pos.entry == 0 && entry.level >= 1;
        let node_boundary_level = if self.params.group_leaf_nodes { 2 } else { 1 };

        if was_array_head && (pos.array > 0 || pos.node > 0) {
            // The deleted element delimited an array: merge its remains into
            // the predecessor array (and, if it also delimited a node, fold
            // the rest of the node into the predecessor node).
            if pos.array > 0 {
                let remains = self.nodes[pos.node].arrays.remove(pos.array).entries;
                let prev = &mut self.nodes[pos.node].arrays[pos.array - 1];
                prev.entries.extend(remains);
                let n = prev.len();
                prev.pad = LeafPad::draw(n, self.params.min_pad, &mut self.rng);
                prev.reserve_pad();
                rebuilt_nodes.push(pos.node);
            } else {
                // First array of a non-first node: its head had level ≥
                // node_boundary_level. Merge into the previous node.
                debug_assert!(entry.level as usize >= node_boundary_level);
                let mut node = self.nodes.remove(pos.node);
                let prev_node = &mut self.nodes[pos.node - 1];
                // The headless first array joins the previous node's last
                // array; the other arrays are appended whole.
                let first = node.arrays.remove(0);
                let last = prev_node
                    .arrays
                    .last_mut()
                    // hi-lint: allow(panic-surface): node arrays are never empty: merges append and splits leave at least one array per node
                    .expect("nodes always hold at least one array");
                last.entries.extend(first.entries);
                let n = last.len();
                last.pad = LeafPad::draw(n, self.params.min_pad, &mut self.rng);
                last.reserve_pad();
                prev_node.arrays.extend(node.arrays);
                rebuilt_nodes.push(pos.node - 1);
            }
        } else {
            // Ordinary element (or the global head): the array shrinks in
            // place; drop it if it became empty.
            if self.nodes[pos.node].arrays[pos.array].entries.is_empty() {
                self.nodes[pos.node].arrays.remove(pos.array);
                if self.nodes[pos.node].arrays.is_empty() {
                    self.nodes.remove(pos.node);
                } else {
                    rebuilt_nodes.push(pos.node);
                }
            } else {
                let n = self.nodes[pos.node].arrays[pos.array].len();
                let redraw = self.nodes[pos.node].arrays[pos.array].pad.update(
                    n,
                    self.params.min_pad,
                    &mut self.rng,
                );
                if redraw {
                    rebuilt_nodes.push(pos.node);
                } else {
                    ios += self.leaf_read_cost(pos); // write back
                }
            }
        }
        rebuilt_nodes.sort_unstable();
        rebuilt_nodes.dedup();
        for node in rebuilt_nodes {
            if node < self.nodes.len() {
                ios += self.node_rebuild_cost(node);
                self.counters
                    .add_rebuild(self.nodes[node].padded_records() as u64);
            }
        }
        self.finish_op(ios);
        Some(entry.value)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Looks up a key, cloning the value.
    pub fn get(&self, key: &K) -> Option<V> {
        self.get_ref(key).cloned()
    }

    /// Borrows the value stored under `key` without copying it: one
    /// multi-level search, zero allocations.
    pub fn get_ref(&self, key: &K) -> Option<&V> {
        self.counters.add_query();
        let mut ios = self.upper_search_cost(key);
        let result = match self.locate(key) {
            Some(pos) => {
                ios += self.leaf_read_cost(pos);
                if pos.found {
                    Some(&self.nodes[pos.node].arrays[pos.array].entries[pos.entry].value)
                } else {
                    None
                }
            }
            None => None,
        };
        self.finish_op(ios);
        result
    }

    /// Lazily yields every pair whose key lies in `range`, in ascending key
    /// order: one multi-level search to the first matching leaf array, then
    /// a node-by-node scan, with no per-query allocation. Each leaf node is
    /// charged its padded size as the iterator enters it (the paper packs a
    /// node's leaf arrays contiguously on disk).
    pub fn range_iter<R: RangeBounds<K>>(&self, range: R) -> impl Iterator<Item = (&K, &V)> {
        self.counters.add_query();
        self.last_op_ios.store(0, AtomicOrdering::Relaxed);
        let (start, end) = cloned_bounds(&range);
        SkipIter::seek(self, &start).take_while(move |&(k, _)| below_end_bound(k, &end))
    }

    /// Borrows every pair in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.range_iter(..)
    }

    /// Returns every pair with `low ≤ key ≤ high`, in ascending order. Thin
    /// wrapper over [`ExternalSkipList::range_iter`].
    pub fn range(&self, low: &K, high: &K) -> Vec<(K, V)> {
        self.range_iter((Bound::Included(low), Bound::Included(high)))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Replaces the entire contents with `pairs`, drawing **fresh coins**
    /// from `seed`: every element's promotion level and every leaf array's
    /// padded size are re-drawn from the seed-derived stream, in key order,
    /// so the resulting structure is a pure function of *(contents, seed)* —
    /// independent of arrival order (the input is normalised, last write
    /// wins) and of everything the list held before. Cost is `O(n log n)`
    /// for the sort plus `O(n)` construction, against one multi-level search
    /// and possible node rebuild per element for incremental insertion.
    pub fn bulk_load(&mut self, pairs: impl IntoIterator<Item = (K, V)>, seed: u64) {
        let pairs = normalize_pairs(pairs.into_iter().collect());
        let mut source = RngSource::from_seed(seed);
        self.rng = source.split("skiplist");
        self.nodes.clear();
        self.levels = vec![Vec::new()];
        self.len = pairs.len();
        let node_boundary = if self.params.group_leaf_nodes { 2 } else { 1 };
        // Pass 1: draw a level per element, in key order.
        let entries: Vec<Entry<K, V>> = pairs
            .into_iter()
            .map(|(key, value)| Entry {
                key,
                value,
                level: self.params.draw_level(&mut self.rng),
            })
            .collect();
        // Pass 2: group into leaf arrays (cut before each promoted element)
        // and leaf nodes (cut before each ≥ node_boundary element), drawing
        // each array's pad as it is sealed — the same draw order an
        // element-by-element build would use for these boundaries.
        let mut current_array: Vec<Entry<K, V>> = Vec::new();
        let mut current_node: Vec<LeafArray<K, V>> = Vec::new();
        for entry in entries {
            let new_array = !current_array.is_empty() && entry.level >= 1;
            let new_node = new_array && entry.level as usize >= node_boundary;
            if new_array {
                let pad = LeafPad::draw(current_array.len(), self.params.min_pad, &mut self.rng);
                current_node.push(LeafArray {
                    entries: std::mem::take(&mut current_array),
                    pad,
                });
            }
            if new_node {
                self.nodes.push(LeafNode {
                    arrays: std::mem::take(&mut current_node),
                });
            }
            self.levels_insert(&entry.key, entry.level);
            current_array.push(entry);
        }
        if !current_array.is_empty() {
            let pad = LeafPad::draw(current_array.len(), self.params.min_pad, &mut self.rng);
            current_node.push(LeafArray {
                entries: current_array,
                pad,
            });
        }
        if !current_node.is_empty() {
            self.nodes.push(LeafNode {
                arrays: current_node,
            });
        }
        // Charge one sequential write of the whole structure.
        let ios: u64 = (0..self.nodes.len())
            .map(|n| self.node_rebuild_cost(n))
            .sum();
        self.counters.add_rebuild(
            self.nodes
                .iter()
                .map(LeafNode::padded_records)
                .sum::<usize>() as u64,
        );
        self.finish_op(ios);
    }

    /// Smallest key ≥ `key`, with its value.
    pub fn successor(&self, key: &K) -> Option<(K, V)> {
        let pos = self.locate(key)?;
        if pos.found {
            let e = &self.nodes[pos.node].arrays[pos.array].entries[pos.entry];
            return Some((e.key.clone(), e.value.clone()));
        }
        // Walk forward from the insertion point.
        let mut node = pos.node;
        let mut array = pos.array;
        let mut entry = pos.entry;
        loop {
            let arrays = &self.nodes[node].arrays;
            if entry < arrays[array].entries.len() {
                let e = &arrays[array].entries[entry];
                if e.key >= *key {
                    return Some((e.key.clone(), e.value.clone()));
                }
                entry += 1;
            } else if array + 1 < arrays.len() {
                array += 1;
                entry = 0;
            } else if node + 1 < self.nodes.len() {
                node += 1;
                array = 0;
                entry = 0;
            } else {
                return None;
            }
        }
    }

    /// Largest key ≤ `key`, with its value.
    pub fn predecessor(&self, key: &K) -> Option<(K, V)> {
        let pos = self.locate(key)?;
        if pos.found {
            let e = &self.nodes[pos.node].arrays[pos.array].entries[pos.entry];
            return Some((e.key.clone(), e.value.clone()));
        }
        // The insertion point's predecessor is the previous entry.
        let (mut node, mut array, entry) = (pos.node, pos.array, pos.entry);
        if entry > 0 {
            let e = &self.nodes[node].arrays[array].entries[entry - 1];
            if e.key <= *key {
                return Some((e.key.clone(), e.value.clone()));
            }
        }
        // Step backwards across array / node boundaries.
        loop {
            if array > 0 {
                array -= 1;
            } else if node > 0 {
                node -= 1;
                array = self.nodes[node].arrays.len() - 1;
            } else {
                return None;
            }
            if let Some(e) = self.nodes[node].arrays[array].entries.last() {
                if e.key <= *key {
                    return Some((e.key.clone(), e.value.clone()));
                }
            }
        }
    }

    /// Applies a batch of keyed operations in arrival order, threading a
    /// verified leaf finger through consecutive operations: when the next
    /// key still falls in the previous operation's leaf array (sequential
    /// runs, Zipf hot sets), the multi-level search is skipped entirely.
    /// Coins (promotion levels, padding redraws) are drawn exactly as the
    /// per-op loop draws them, so the resulting structure is bit-identical.
    /// Returns the number of removes that found their key.
    pub fn apply_batch(&mut self, ops: Vec<hi_common::batch::BatchOp<K, V>>) -> usize {
        let mut removed = 0usize;
        let mut hint: Option<Position> = None;
        for op in ops {
            let key = op.key();
            let (pos, hinted) = match hint.and_then(|h| self.locate_verified(key, h)) {
                Some(p) => (Some(p), true),
                None => (self.locate(key), false),
            };
            hint = pos;
            match op {
                hi_common::batch::BatchOp::Put(k, v) => {
                    self.insert_located(k, v, pos, hinted);
                }
                hi_common::batch::BatchOp::Remove(k) => {
                    if self.remove_located(&k, pos, hinted).is_some() {
                        removed += 1;
                    }
                }
            }
        }
        removed
    }

    /// Sorted-probe lookups with a verified leaf finger, results restored
    /// to input order via an index permutation.
    pub fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        let mut order: Vec<u32> = (0..keys.len() as u32).collect();
        order.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
        let mut out: Vec<Option<V>> = (0..keys.len()).map(|_| None).collect();
        let mut hint: Option<Position> = None;
        for &i in &order {
            let key = &keys[i as usize];
            self.counters.add_query();
            let (pos, hinted) = match hint.and_then(|h| self.locate_verified(key, h)) {
                Some(p) => (Some(p), true),
                None => (self.locate(key), false),
            };
            hint = pos;
            if let Some(pos) = pos {
                let mut ios = if hinted {
                    0
                } else {
                    self.upper_search_cost(key)
                };
                ios += self.leaf_read_cost(pos);
                self.finish_op(ios);
                if pos.found {
                    out[i as usize] = Some(
                        self.nodes[pos.node].arrays[pos.array].entries[pos.entry]
                            .value
                            .clone(),
                    );
                }
            }
        }
        out
    }

    /// Collects the whole dictionary in ascending key order.
    pub fn to_sorted_vec(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len);
        for node in &self.nodes {
            for array in &node.arrays {
                for e in &array.entries {
                    out.push((e.key.clone(), e.value.clone()));
                }
            }
        }
        out
    }

    /// Per-leaf-array element counts (used by the distributional tests).
    pub fn leaf_array_lengths(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .flat_map(|n| n.arrays.iter().map(LeafArray::len))
            .collect()
    }

    /// Verifies the structural invariants: global sortedness, array and node
    /// boundaries aligned with promotion levels, legal padded sizes, and the
    /// `levels` index consistent with the entries. Intended for tests.
    pub fn check_invariants(&self) {
        let mut prev_key: Option<&K> = None;
        let mut global_first = true;
        let mut count = 0usize;
        let node_boundary_level = if self.params.group_leaf_nodes { 2 } else { 1 };
        for node in &self.nodes {
            assert!(!node.arrays.is_empty(), "empty leaf node");
            assert!(node.element_count() > 0, "leaf node with no elements");
            for (ai, array) in node.arrays.iter().enumerate() {
                assert!(!array.entries.is_empty(), "empty leaf array");
                assert!(
                    array.pad.is_legal(array.len(), self.params.min_pad),
                    "illegal pad {} for {} elements",
                    array.pad.padded(),
                    array.len()
                );
                for (ei, e) in array.entries.iter().enumerate() {
                    if let Some(p) = prev_key {
                        assert!(
                            p < &e.key,
                            "keys out of order or duplicated across the structure"
                        );
                    }
                    prev_key = Some(&e.key);
                    count += 1;
                    let is_array_head = ei == 0;
                    let is_node_head = ei == 0 && ai == 0;
                    if !global_first {
                        if is_node_head {
                            assert!(
                                e.level as usize >= node_boundary_level,
                                "node head must be promoted {node_boundary_level}×"
                            );
                        } else if is_array_head {
                            assert!(e.level >= 1, "array head must be promoted");
                        } else {
                            assert!(e.level == 0, "promoted element not at an array head");
                        }
                    }
                    // `levels` agrees with the entry's level.
                    for l in 1..self.levels.len() {
                        let present = self.levels[l].binary_search(&e.key).is_ok();
                        assert_eq!(
                            present,
                            (e.level as usize) >= l,
                            "levels index inconsistent at level {l}"
                        );
                    }
                    global_first = false;
                }
            }
        }
        assert_eq!(count, self.len, "stored element count disagrees with len");
    }
}

/// Lazy in-order traversal of an [`ExternalSkipList`]'s leaf level.
///
/// Walks the `(node, array, entry)` index triple forward; each leaf node is
/// charged its padded size to the list's I/O ledger when entered, mirroring
/// the eager range query's accounting.
struct SkipIter<'a, K: Ord + Clone, V: Clone> {
    list: &'a ExternalSkipList<K, V>,
    node: usize,
    array: usize,
    entry: usize,
}

impl<'a, K: Ord + Clone, V: Clone> SkipIter<'a, K, V> {
    /// Positions the iterator at the first entry satisfying `start`.
    fn seek(list: &'a ExternalSkipList<K, V>, start: &Bound<K>) -> Self {
        let (node, array, entry) = match start {
            Bound::Unbounded => (0, 0, 0),
            Bound::Included(k) | Bound::Excluded(k) => {
                list.charge_append(list.upper_search_cost(k));
                match list.locate(k) {
                    Some(pos) => {
                        let skip_match = pos.found && matches!(start, Bound::Excluded(_));
                        (pos.node, pos.array, pos.entry + usize::from(skip_match))
                    }
                    None => (list.nodes.len(), 0, 0),
                }
            }
        };
        if node < list.nodes.len() {
            list.charge_append(list.node_rebuild_cost(node));
        }
        Self {
            list,
            node,
            array,
            entry,
        }
    }
}

impl<'a, K: Ord + Clone, V: Clone> Iterator for SkipIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            let node = self.list.nodes.get(self.node)?;
            if self.array >= node.arrays.len() {
                self.node += 1;
                self.array = 0;
                self.entry = 0;
                if self.node < self.list.nodes.len() {
                    self.list
                        .charge_append(self.list.node_rebuild_cost(self.node));
                }
                continue;
            }
            let entries = &node.arrays[self.array].entries;
            if self.entry >= entries.len() {
                self.array += 1;
                self.entry = 0;
                continue;
            }
            let e = &entries[self.entry];
            self.entry += 1;
            return Some((&e.key, &e.value));
        }
    }
}

impl<K: Ord + Clone, V: Clone> Dictionary for ExternalSkipList<K, V> {
    type Key = K;
    type Value = V;

    fn len(&self) -> usize {
        ExternalSkipList::len(self)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        ExternalSkipList::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        ExternalSkipList::remove(self, key)
    }

    fn get_ref(&self, key: &K) -> Option<&V> {
        ExternalSkipList::get_ref(self, key)
    }

    fn get(&self, key: &K) -> Option<V> {
        ExternalSkipList::get(self, key)
    }

    fn range_iter<R: RangeBounds<K>>(&self, range: R) -> impl Iterator<Item = (&K, &V)> {
        ExternalSkipList::range_iter(self, range)
    }

    fn range(&self, low: &K, high: &K) -> Vec<(K, V)> {
        ExternalSkipList::range(self, low, high)
    }

    fn successor(&self, key: &K) -> Option<(K, V)> {
        ExternalSkipList::successor(self, key)
    }

    fn predecessor(&self, key: &K) -> Option<(K, V)> {
        ExternalSkipList::predecessor(self, key)
    }

    fn apply_batch(&mut self, ops: Vec<hi_common::batch::BatchOp<K, V>>) -> usize {
        ExternalSkipList::apply_batch(self, ops)
    }

    fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        ExternalSkipList::get_many(self, keys)
    }

    fn to_sorted_vec(&self) -> Vec<(K, V)> {
        ExternalSkipList::to_sorted_vec(self)
    }

    fn bulk_load(&mut self, pairs: impl IntoIterator<Item = (K, V)>, seed: u64) {
        ExternalSkipList::bulk_load(self, pairs, seed)
    }
}

/// Ordering helper kept for documentation symmetry with the paper's Figure 3
/// (unused variants are future-proofing for custom comparators).
#[allow(dead_code)]
fn compare<K: Ord>(a: &K, b: &K) -> Ordering {
    a.cmp(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn hi_list(seed: u64) -> ExternalSkipList<u64, u64> {
        ExternalSkipList::history_independent(16, 0.5, seed)
    }

    #[test]
    fn empty_list() {
        let l = hi_list(0);
        assert!(l.is_empty());
        assert_eq!(l.get(&5), None);
        assert_eq!(l.range(&0, &100), vec![]);
        assert_eq!(l.successor(&3), None);
        assert_eq!(l.predecessor(&3), None);
        l.check_invariants();
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut l = hi_list(1);
        for k in 0..500u64 {
            assert_eq!(l.insert(k * 3, k), None);
        }
        assert_eq!(l.len(), 500);
        for k in 0..500u64 {
            assert_eq!(l.get(&(k * 3)), Some(k));
            assert_eq!(l.get(&(k * 3 + 1)), None);
        }
        l.check_invariants();
    }

    #[test]
    fn insert_replaces_existing() {
        let mut l = hi_list(2);
        assert_eq!(l.insert(7, 1), None);
        assert_eq!(l.insert(7, 2), Some(1));
        assert_eq!(l.len(), 1);
        assert_eq!(l.get(&7), Some(2));
    }

    #[test]
    fn remove_works() {
        let mut l = hi_list(3);
        for k in 0..300u64 {
            l.insert(k, k);
        }
        for k in (0..300u64).step_by(3) {
            assert_eq!(l.remove(&k), Some(k));
        }
        assert_eq!(l.len(), 200);
        for k in 0..300u64 {
            let expected = if k % 3 == 0 { None } else { Some(k) };
            assert_eq!(l.get(&k), expected, "key {k}");
        }
        assert_eq!(l.remove(&0), None);
        l.check_invariants();
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        for (variant, mut list) in [
            (
                "hi",
                ExternalSkipList::<u64, u64>::history_independent(16, 0.5, 11),
            ),
            ("folklore", ExternalSkipList::<u64, u64>::folklore_b(16, 12)),
            ("memory", ExternalSkipList::<u64, u64>::in_memory(13)),
        ] {
            let mut rng = StdRng::seed_from_u64(100);
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            for step in 0..4000u64 {
                let key = rng.gen_range(0..800);
                match rng.gen_range(0..10) {
                    0..=5 => {
                        assert_eq!(
                            list.insert(key, step),
                            model.insert(key, step),
                            "{variant} insert at step {step}"
                        );
                    }
                    6..=8 => {
                        assert_eq!(
                            list.remove(&key),
                            model.remove(&key),
                            "{variant} remove at step {step}"
                        );
                    }
                    _ => {
                        assert_eq!(
                            list.get(&key),
                            model.get(&key).copied(),
                            "{variant} get at step {step}"
                        );
                    }
                }
                if step % 1000 == 0 {
                    list.check_invariants();
                }
            }
            list.check_invariants();
            let got = list.to_sorted_vec();
            let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, expected, "{variant} final contents");
        }
    }

    #[test]
    fn range_queries_match_model() {
        let mut l = hi_list(21);
        let mut model = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..2000 {
            let k = rng.gen_range(0..5000u64);
            l.insert(k, k * 2);
            model.insert(k, k * 2);
        }
        for _ in 0..50 {
            let a = rng.gen_range(0..5000u64);
            let b = rng.gen_range(a..5000u64);
            let got = l.range(&a, &b);
            let expected: Vec<(u64, u64)> = model.range(a..=b).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn successor_and_predecessor() {
        let mut l = hi_list(31);
        for k in (10..100u64).step_by(10) {
            l.insert(k, k);
        }
        assert_eq!(l.successor(&10), Some((10, 10)));
        assert_eq!(l.successor(&11), Some((20, 20)));
        assert_eq!(l.successor(&95), None);
        assert_eq!(l.predecessor(&10), Some((10, 10)));
        assert_eq!(l.predecessor(&19), Some((10, 10)));
        assert_eq!(l.predecessor(&9), None);
        assert_eq!(l.predecessor(&1000), Some((90, 90)));
    }

    #[test]
    fn io_costs_are_recorded() {
        let mut l = hi_list(41);
        for k in 0..1000u64 {
            l.insert(k, k);
        }
        assert!(l.total_ios() > 0);
        let before = l.total_ios();
        l.get(&500);
        assert!(l.last_op_ios() >= 1);
        assert_eq!(l.total_ios(), before + l.last_op_ios());
    }

    #[test]
    fn hi_searches_are_cheaper_than_in_memory() {
        // Theorem 3 vs an in-memory skip list on disk: with B = 64 the HI
        // structure should need far fewer I/Os per search.
        let n = 5000u64;
        let mut hi = ExternalSkipList::<u64, u64>::history_independent(64, 0.5, 51);
        let mut mem = ExternalSkipList::<u64, u64>::in_memory(52);
        for k in 0..n {
            hi.insert(k, k);
            mem.insert(k, k);
        }
        let mut hi_cost = 0u64;
        let mut mem_cost = 0u64;
        for k in (0..n).step_by(97) {
            hi.get(&k);
            hi_cost += hi.last_op_ios();
            mem.get(&k);
            mem_cost += mem.last_op_ios();
        }
        assert!(
            hi_cost * 2 < mem_cost,
            "HI searches ({hi_cost}) should be far cheaper than in-memory-on-disk ({mem_cost})"
        );
    }

    #[test]
    fn space_is_linear() {
        let mut l = hi_list(61);
        let n = 4000u64;
        for k in 0..n {
            l.insert(k, k);
        }
        let records = l.space_records();
        assert!(records >= n as usize);
        assert!(
            records <= 8 * n as usize,
            "space {records} not linear in N = {n}"
        );
    }

    #[test]
    fn leaf_arrays_respect_min_pad() {
        let mut l = hi_list(71);
        for k in 0..2000u64 {
            l.insert(k, k);
        }
        let min_pad = l.params().min_pad;
        for node in &l.nodes {
            for array in &node.arrays {
                assert!(array.pad.padded() >= min_pad);
                assert!(array.pad.padded() >= array.len());
            }
        }
    }

    #[test]
    fn height_is_logarithmic() {
        let mut l = ExternalSkipList::<u64, u64>::history_independent(64, 0.5, 81);
        for k in 0..20_000u64 {
            l.insert(k, k);
        }
        // log base B^γ (=~ 23) of 20 000 is ~3.2; allow generous slack for
        // the whp bound.
        assert!(l.height() <= 10, "height {} too large", l.height());
    }

    #[test]
    fn delete_everything_leaves_empty_structure() {
        let mut l = hi_list(91);
        for k in 0..500u64 {
            l.insert(k, k);
        }
        for k in 0..500u64 {
            assert_eq!(l.remove(&k), Some(k));
        }
        assert!(l.is_empty());
        assert_eq!(l.leaf_node_count(), 0);
        assert_eq!(l.height(), 0);
        l.check_invariants();
        // Structure remains usable.
        l.insert(1, 1);
        assert_eq!(l.get(&1), Some(1));
    }

    #[test]
    fn bulk_load_builds_a_valid_structure() {
        for (name, mut l) in [
            (
                "hi",
                ExternalSkipList::<u64, u64>::history_independent(16, 0.5, 1),
            ),
            ("folk", ExternalSkipList::<u64, u64>::folklore_b(16, 2)),
            ("mem", ExternalSkipList::<u64, u64>::in_memory(3)),
        ] {
            // Unsorted input with a duplicate: last write wins.
            let mut pairs: Vec<(u64, u64)> = (0..800u64).rev().map(|k| (k, k)).collect();
            pairs.push((5, 999));
            l.bulk_load(pairs, 0xB17);
            assert_eq!(l.len(), 800, "{name}");
            assert_eq!(l.get(&5), Some(999), "{name}: duplicate last-write-wins");
            assert_eq!(l.get(&7), Some(7), "{name}");
            l.check_invariants();
        }
    }

    #[test]
    fn bulk_load_is_a_function_of_contents_and_seed() {
        let build = |input_order_reversed: bool, seed: u64| {
            // Start from different pre-existing contents to prove the old
            // state is fully discarded.
            let mut l = ExternalSkipList::<u64, u64>::history_independent(16, 0.5, 77);
            if input_order_reversed {
                for k in 0..50u64 {
                    l.insert(k * 11, k);
                }
            }
            let mut pairs: Vec<(u64, u64)> = (0..600u64).map(|k| (k * 2, k)).collect();
            if input_order_reversed {
                pairs.reverse();
            }
            l.bulk_load(pairs, seed);
            l
        };
        let a = build(false, 42);
        let b = build(true, 42);
        assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
        assert_eq!(
            a.leaf_array_lengths(),
            b.leaf_array_lengths(),
            "same contents + seed must give a bit-identical layout regardless of load order"
        );
        assert_eq!(a.space_records(), b.space_records());
        let c = build(false, 43);
        assert_ne!(
            a.leaf_array_lengths(),
            c.leaf_array_lengths(),
            "a different seed should give a different layout"
        );
    }

    #[test]
    fn range_iter_agrees_with_range() {
        let mut l = hi_list(55);
        for k in 0..500u64 {
            l.insert(k * 3, k);
        }
        let eager = l.range(&100, &900);
        let lazy: Vec<(u64, u64)> = l.range_iter(100..=900).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(eager, lazy);
        assert_eq!(l.iter().count(), 500);
        assert_eq!(l.range_iter(100..900).map(|(k, _)| *k).max(), Some(897));
        assert_eq!(l.get_ref(&3), Some(&1));
        assert_eq!(l.get_ref(&4), None);
    }

    #[test]
    fn dictionary_trait_object_usable() {
        fn exercise<D: Dictionary<Key = u64, Value = u64>>(d: &mut D) {
            d.insert(5, 50);
            d.insert(1, 10);
            d.insert(9, 90);
            assert_eq!(d.get(&5), Some(50));
            assert_eq!(d.to_sorted_vec(), vec![(1, 10), (5, 50), (9, 90)]);
            assert_eq!(d.range(&2, &9), vec![(5, 50), (9, 90)]);
            assert_eq!(d.remove(&5), Some(50));
            assert_eq!(d.len(), 2);
        }
        exercise(&mut ExternalSkipList::<u64, u64>::history_independent(
            16, 0.5, 3,
        ));
        exercise(&mut ExternalSkipList::<u64, u64>::folklore_b(16, 4));
        exercise(&mut ExternalSkipList::<u64, u64>::in_memory(5));
    }

    #[test]
    fn apply_batch_is_bit_identical_to_per_op_application() {
        use hi_common::batch::BatchOp;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // The batch path threads a verified finger through the same
        // insert/remove bodies, so the coin stream (promotion levels, pad
        // redraws) and therefore the whole leaf layout must be identical.
        for (b, e) in [(16usize, 0.5f64), (4, 0.25)] {
            let mut rng = StdRng::seed_from_u64(0x5EED ^ b as u64);
            let mut per_op = ExternalSkipList::<u64, u64>::history_independent(b, e, 77);
            let mut batched = ExternalSkipList::<u64, u64>::history_independent(b, e, 77);
            for round in 0..5 {
                let ops: Vec<BatchOp<u64, u64>> = (0..600)
                    .map(|i| {
                        let key = match round % 3 {
                            0 => (round * 10_000 + i * 2) as u64,
                            1 => rng.gen_range(0..4_000u64),
                            _ => rng.gen_range(0..48u64),
                        };
                        if rng.gen_bool(0.3) {
                            BatchOp::Remove(key)
                        } else {
                            BatchOp::Put(key, rng.gen())
                        }
                    })
                    .collect();
                let mut expected_removed = 0usize;
                for op in &ops {
                    match op {
                        BatchOp::Put(k, v) => {
                            per_op.insert(*k, *v);
                        }
                        BatchOp::Remove(k) => {
                            if per_op.remove(k).is_some() {
                                expected_removed += 1;
                            }
                        }
                    }
                }
                assert_eq!(
                    batched.apply_batch(ops),
                    expected_removed,
                    "B={b} round {round}"
                );
                assert_eq!(per_op.to_sorted_vec(), batched.to_sorted_vec());
                assert_eq!(per_op.height(), batched.height(), "B={b} round {round}");
                assert_eq!(
                    per_op.leaf_array_lengths(),
                    batched.leaf_array_lengths(),
                    "B={b} round {round}: leaf layout diverged"
                );
                assert_eq!(per_op.space_records(), batched.space_records());
                batched.check_invariants();
            }
            let probes: Vec<u64> = (0..300).map(|_| rng.gen_range(0..4_100u64)).collect();
            let expected: Vec<Option<u64>> = probes.iter().map(|k| batched.get(k)).collect();
            assert_eq!(batched.get_many(&probes), expected);
        }
    }
}
