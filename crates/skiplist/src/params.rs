//! Parameters of the external-memory skip lists.
//!
//! The paper's §6 revolves around one knob: the promotion probability.
//!
//! * The **in-memory skip list** (Pugh) promotes with probability 1/2.
//! * The **folklore B-skip list** promotes with probability `1/B`; Lemma 15
//!   shows its high-probability search cost is no better than an in-memory
//!   skip list's.
//! * The paper's **history-independent external skip list** promotes with
//!   probability `1/B^γ` with `γ = (1 + ε)/2 ∈ (1/2, 1 − log log B / log B)`,
//!   and additionally packs contiguous leaf arrays (delimited by
//!   twice-promoted elements) into *leaf nodes*, with gaps governed by
//!   Invariant 16, to keep range queries at `O(log_B N / ε + k/B)` I/Os.
//!
//! [`SkipParams`] captures the promotion probability, the block size, the
//! leaf-packing mode and the padding rule; [`LeafPad`] maintains a leaf
//! array's padded size per Invariant 16.

use rand::Rng;

/// Configuration of an external skip list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkipParams {
    /// `1/p` as an integer: an element is promoted from one level to the next
    /// with probability `1 / promote_inv`.
    pub promote_inv: u64,
    /// Number of element-sized records that fit in one disk block (`B`).
    pub block_elems: usize,
    /// Bytes per element record (key + value + level tag) for I/O accounting.
    pub elem_bytes: usize,
    /// Bytes per disk block.
    pub block_bytes: usize,
    /// `true` for the paper's structure: leaf arrays are grouped into leaf
    /// nodes delimited by twice-promoted elements. `false` for the folklore
    /// B-skip list and the in-memory baseline, where every leaf array stands
    /// alone.
    pub group_leaf_nodes: bool,
    /// Minimum padded size of a leaf array (Invariant 16's `B^γ` floor);
    /// 1 disables padding.
    pub min_pad: usize,
    /// The ε parameter (only recorded for reporting; `promote_inv` already
    /// encodes it).
    pub epsilon: f64,
}

impl SkipParams {
    /// Parameters for the paper's history-independent external-memory skip
    /// list with block size `block_elems` elements and trade-off parameter
    /// `epsilon ∈ (0, 1)` (`γ = (1 + ε)/2`, promotion probability `1/B^γ`).
    pub fn history_independent(block_elems: usize, epsilon: f64) -> Self {
        assert!(block_elems >= 2, "block must hold at least two elements");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        let gamma = (1.0 + epsilon) / 2.0;
        let promote_inv = (block_elems as f64).powf(gamma).round().max(2.0) as u64;
        let elem_bytes = 24;
        Self {
            promote_inv,
            block_elems,
            elem_bytes,
            block_bytes: block_elems * elem_bytes,
            group_leaf_nodes: true,
            min_pad: promote_inv as usize,
            epsilon,
        }
    }

    /// Parameters for the folklore B-skip list (promotion probability `1/B`,
    /// no leaf-node packing). This is the Lemma 15 baseline.
    pub fn folklore_b(block_elems: usize) -> Self {
        assert!(block_elems >= 2, "block must hold at least two elements");
        let elem_bytes = 24;
        Self {
            promote_inv: block_elems as u64,
            block_elems,
            elem_bytes,
            block_bytes: block_elems * elem_bytes,
            group_leaf_nodes: false,
            min_pad: 1,
            epsilon: 1.0,
        }
    }

    /// Parameters for an in-memory (Pugh) skip list run in external memory:
    /// promotion probability 1/2 and one element per "block" (every node
    /// access is an I/O).
    pub fn in_memory() -> Self {
        let elem_bytes = 24;
        Self {
            promote_inv: 2,
            block_elems: 1,
            elem_bytes,
            block_bytes: elem_bytes,
            group_leaf_nodes: false,
            min_pad: 1,
            epsilon: 1.0,
        }
    }

    /// The promotion probability `p`.
    pub fn promotion_probability(&self) -> f64 {
        1.0 / self.promote_inv as f64
    }

    /// Draws a level for a newly inserted element: the number of successful
    /// promotions before the first failure, capped at 40.
    pub fn draw_level<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        let mut level = 0u8;
        while level < 40 && rng.gen_range(0..self.promote_inv) == 0 {
            level += 1;
        }
        level
    }

    /// I/O cost (block transfers) of scanning `records` consecutive records.
    pub fn scan_cost(&self, records: usize) -> u64 {
        if records == 0 {
            0
        } else {
            ((records * self.elem_bytes) as u64).div_ceil(self.block_bytes as u64)
        }
    }
}

/// Padded size of a leaf array under Invariant 16.
///
/// For an array of `n` elements the padded size `n_s` is kept uniform in
/// `[max(n, floor), 2·max(n, floor) − 1]`, where `floor` is `B^γ` for the HI
/// skip list and 1 for the unpadded baselines. The size is re-drawn whenever
/// it falls outside the legal window, and otherwise with probability
/// `Θ(1/n_s)` per update (the paper's resize rule); a re-draw forces a
/// rebuild of the containing leaf node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafPad {
    padded: usize,
}

impl LeafPad {
    /// Draws an initial padded size for an array of `n` elements.
    pub fn draw<R: Rng + ?Sized>(n: usize, floor: usize, rng: &mut R) -> Self {
        let base = n.max(floor).max(1);
        Self {
            padded: rng.gen_range(base..2 * base),
        }
    }

    /// Current padded size.
    pub fn padded(&self) -> usize {
        self.padded
    }

    /// Returns `true` when `padded` is legal for `n` elements.
    pub fn is_legal(&self, n: usize, floor: usize) -> bool {
        let base = n.max(floor).max(1);
        self.padded >= base && self.padded < 2 * base && self.padded >= n
    }

    /// Updates the padded size after the array's element count changed to
    /// `n`. Returns `true` when the size was re-drawn (the caller must then
    /// rebuild the containing leaf node).
    pub fn update<R: Rng + ?Sized>(&mut self, n: usize, floor: usize, rng: &mut R) -> bool {
        let base = n.max(floor).max(1);
        if !self.is_legal(n, floor) || rng.gen_range(0..self.padded.max(1)) == 0 {
            self.padded = rng.gen_range(base..2 * base);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hi_params_promotion_between_sqrt_b_and_b() {
        for &b in &[16usize, 64, 256, 1024] {
            let p = SkipParams::history_independent(b, 0.5);
            assert!(p.promote_inv as f64 >= (b as f64).sqrt() - 1.0);
            assert!(p.promote_inv <= b as u64);
            assert!(p.group_leaf_nodes);
            assert_eq!(p.min_pad, p.promote_inv as usize);
        }
    }

    #[test]
    fn epsilon_controls_gamma() {
        let small = SkipParams::history_independent(256, 0.1);
        let large = SkipParams::history_independent(256, 0.9);
        assert!(small.promote_inv < large.promote_inv);
    }

    #[test]
    fn folklore_promotes_with_one_over_b() {
        let p = SkipParams::folklore_b(128);
        assert_eq!(p.promote_inv, 128);
        assert!(!p.group_leaf_nodes);
    }

    #[test]
    fn in_memory_is_half() {
        let p = SkipParams::in_memory();
        assert_eq!(p.promote_inv, 2);
        assert_eq!(p.block_elems, 1);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_block_rejected() {
        SkipParams::history_independent(1, 0.5);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_rejected() {
        SkipParams::history_independent(64, 1.5);
    }

    #[test]
    fn level_distribution_is_geometric() {
        let params = SkipParams::folklore_b(16);
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 80_000usize;
        let mut promoted = 0usize;
        for _ in 0..trials {
            if params.draw_level(&mut rng) >= 1 {
                promoted += 1;
            }
        }
        let rate = promoted as f64 / trials as f64;
        assert!(
            (rate - 1.0 / 16.0).abs() < 0.01,
            "promotion rate {rate} should be ~1/16"
        );
    }

    #[test]
    fn scan_cost_rounds_up() {
        let p = SkipParams::history_independent(16, 0.5);
        assert_eq!(p.scan_cost(0), 0);
        assert_eq!(p.scan_cost(1), 1);
        assert_eq!(p.scan_cost(16), 1);
        assert_eq!(p.scan_cost(17), 2);
    }

    #[test]
    fn leaf_pad_stays_legal() {
        let mut rng = StdRng::seed_from_u64(1);
        let floor = 8usize;
        let mut pad = LeafPad::draw(3, floor, &mut rng);
        assert!(pad.is_legal(3, floor));
        let mut n = 3usize;
        for step in 0..2000 {
            if step % 3 == 0 && n > 0 {
                n -= 1;
            } else {
                n += 1;
            }
            pad.update(n, floor, &mut rng);
            assert!(pad.is_legal(n, floor), "step {step}: n={n} pad={:?}", pad);
            assert!(pad.padded() >= floor);
        }
    }

    #[test]
    fn leaf_pad_rebuild_probability_is_low_when_stable() {
        let mut rng = StdRng::seed_from_u64(2);
        let floor = 64usize;
        let mut pad = LeafPad::draw(10, floor, &mut rng);
        let mut rebuilds = 0;
        for _ in 0..10_000 {
            if pad.update(10, floor, &mut rng) {
                rebuilds += 1;
            }
        }
        // Expected ~10_000 / padded ≈ 10_000/96 ≈ 104.
        assert!(rebuilds < 400, "too many rebuilds: {rebuilds}");
    }
}
