//! Seeded `persisted-history` violations, linted under the pretend path of
//! the audited store file. Three distinct failure shapes:
//!
//! 1. `encode_header` persists `meta.generation` where the allowlist pins
//!    the reserved zero — the exact leak the real store once had.
//! 2. `encode_journal_header` appends an extra field beyond its allowlist.
//! 3. A rogue `put_u64` outside any audited encoder body.

fn put_u64(out: &mut [u8], field: usize, v: u64) {
    out[field * 8..field * 8 + 8].copy_from_slice(&v.to_le_bytes());
}

fn encode_header(out: &mut [u8], block_size: u64, meta: &StoreMeta, sum: u64) {
    put_u64(out, 0, MAGIC);
    put_u64(out, 1, VERSION);
    put_u64(out, 2, block_size);
    put_u64(out, 3, meta.record_size);
    put_u64(out, 4, meta.total_slots);
    put_u64(out, 5, meta.len);
    put_u64(out, 6, meta.seed);
    put_u64(out, 7, meta.generation);
    put_u64(out, 8, meta.fingerprint);
    put_u64(out, 9, meta.checksum_root);
    put_u64(out, 10, sum);
}

fn encode_checksum_word(out: &mut [u8], k: usize, word: u64) {
    put_u64(out, k, word);
}

fn encode_journal_header(out: &mut [u8], block_size: u64, sum: u64) {
    put_u64(out, 0, JMAGIC);
    put_u64(out, 1, block_size);
    put_u64(out, 2, 0);
    put_u64(out, 3, count);
    put_u64(out, 4, target_len);
    put_u64(out, 5, payload_sum);
    put_u64(out, 6, sum);
    put_u64(out, 7, generation);
}

fn sneak_epoch(out: &mut [u8], epoch: u64) {
    put_u64(out, 6, epoch);
}
