//! Seeded `unsafe-audit` violations: a crate root (pretend path
//! `crates/pma/src/lib.rs`) with no `#![forbid(unsafe_code)]` attribute and
//! an `unsafe` block in library code.

fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
