//! Seeded `panic-surface` violations plus one justified site, linted under
//! the pretend path `crates/pma/src/fixture.rs`. The justified `.unwrap()`
//! must be suppressed by its inline annotation; the other three sites fire.

fn fetch(m: &[u64], i: usize) -> u64 {
    *m.get(i).unwrap()
}

fn parse(s: &str) -> u64 {
    s.parse().expect("caller validated")
}

fn dispatch(kind: u8) -> u64 {
    match kind {
        0 => 0,
        _ => unreachable!("kind is validated at the boundary"),
    }
}

fn justified(m: &[u64]) -> u64 {
    // hi-lint: allow(panic-surface): slice is non-empty by construction
    *m.first().unwrap()
}
