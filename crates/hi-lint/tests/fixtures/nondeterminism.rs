//! Seeded `nondeterminism` violations: every construct here makes layout
//! depend on something other than *(contents, seed)*. The test lints this
//! file under the pretend path `crates/pma/src/fixture.rs` so the rule's
//! engine-crate scoping applies.

use std::collections::HashMap;
use std::time::Instant;

fn order_dependent(keys: &[u64]) -> Vec<u64> {
    let mut m = HashMap::new();
    for &k in keys {
        m.insert(k, k);
    }
    m.into_keys().collect()
}

fn timed_tiebreak(started: Instant) -> bool {
    started.elapsed().as_nanos() % 2 == 0
}

fn address_coin(v: &[u8]) -> usize {
    v.as_ptr() as usize
}

fn thread_coin() -> bool {
    thread::current().id() == MAIN_THREAD
}

#[cfg(test)]
mod tests {
    // Test modules are out of scope: this HashSet must not be flagged.
    use std::collections::HashSet;

    #[test]
    fn in_test_region() {
        let _ = HashSet::<u64>::new();
    }
}
