//! Seeded `entropy` violations, linted under the pretend path
//! `crates/pma/src/fixture.rs`: unseeded RNG construction and an OS entropy
//! source in engine code. Defining a `from_entropy` escape hatch is fine —
//! the rule bites at call sites, not definitions.

fn from_entropy() -> u64 {
    0
}

fn seed_source() -> u64 {
    let mut rng = StdRng::from_entropy();
    rng.next_u64()
}

fn os_coin() -> u64 {
    let mut r = OsRng;
    r.next_u64()
}
