//! Golden-fixture tests: each rule gets a fixture file seeded with
//! violations, and the full rendered report — paths, lines, columns, rule
//! names, messages, suppression counts — is pinned against a checked-in
//! `.expected` file. Any drift in a rule's matching or wording shows up as
//! a readable diff here before it shows up as a confusing CI failure.
//!
//! Fixtures live in `tests/fixtures/` which the workspace walker never
//! visits (it scans only `src/`, `crates/*/src/`, `tests/`, `examples/` at
//! the workspace root), so the seeded violations cannot leak into the real
//! gate.

use hi_lint::{parse_toml, run, workspace_files, RuleId, SourceFile};
use std::path::Path;

fn fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints `fixtures/<name>.rs` under the pretend workspace path `rel_path`
/// and compares the rendered report against `fixtures/<name>.expected`.
fn check_golden(name: &str, rel_path: &str) {
    let dir = fixture_dir();
    let src = std::fs::read_to_string(dir.join(format!("{name}.rs"))).unwrap();
    let expected = std::fs::read_to_string(dir.join(format!("{name}.expected"))).unwrap();
    let report = run(
        &[SourceFile {
            rel_path: rel_path.to_string(),
            src,
        }],
        &[],
        false,
    );
    assert_eq!(
        report.render(),
        expected,
        "fixture `{name}` drifted from its golden output; actual:\n{}",
        report.render()
    );
}

#[test]
fn golden_nondeterminism() {
    check_golden("nondeterminism", "crates/pma/src/fixture.rs");
}

#[test]
fn golden_unsafe_audit() {
    check_golden("unsafe_audit", "crates/pma/src/lib.rs");
}

#[test]
fn golden_persisted_history() {
    check_golden("persisted_history", "crates/block-store/src/store.rs");
}

#[test]
fn golden_panic_surface() {
    check_golden("panic_surface", "crates/pma/src/fixture.rs");
}

#[test]
fn golden_entropy() {
    check_golden("entropy", "crates/pma/src/fixture.rs");
}

/// A `hi-lint.toml` entry that stops matching anything must itself become a
/// diagnostic: the suppression file can only shrink by itself, never rot.
#[test]
fn stale_toml_suppression_fails_the_run() {
    let sup = parse_toml(
        "[[suppress]]\n\
         rule = \"nondeterminism\"\n\
         path = \"crates/pma/src/fixture.rs\"\n\
         contains = \"HashMap\"\n\
         reason = \"membership-only set, never iterated\"\n",
    )
    .unwrap();
    // The file the entry excused was since fixed: nothing fires.
    let clean = SourceFile {
        rel_path: "crates/pma/src/fixture.rs".to_string(),
        src: "use std::collections::BTreeMap;\nfn f() {}\n".to_string(),
    };
    let report = run(&[clean], &sup, false);
    assert_eq!(report.diagnostics.len(), 1, "{}", report.render());
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RuleId::StaleSuppression);
    assert_eq!(d.path, "hi-lint.toml");
    assert!(d.message.contains("matches no diagnostic"), "{}", d.message);
}

/// The same entry against the *unfixed* file suppresses exactly one
/// diagnostic and is not stale — the two outcomes bracket the mechanism.
#[test]
fn live_toml_suppression_is_consumed() {
    let sup = parse_toml(
        "[[suppress]]\n\
         rule = \"nondeterminism\"\n\
         path = \"crates/pma/src/fixture.rs\"\n\
         contains = \"HashMap\"\n\
         reason = \"membership-only set, never iterated\"\n",
    )
    .unwrap();
    let dirty = SourceFile {
        rel_path: "crates/pma/src/fixture.rs".to_string(),
        src: "use std::collections::HashMap;\n".to_string(),
    };
    let report = run(&[dirty], &sup, false);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.suppressed, 1);
}

/// The real gate, run as a test: the whole workspace plus the real
/// `hi-lint.toml` must be clean, with the audit anchors required. This is
/// the same invocation `ci.sh` makes, so a violation fails `cargo test`
/// before it fails CI.
#[test]
fn workspace_is_clean_under_the_real_suppression_file() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_files(&root).unwrap();
    assert!(
        files.len() > 50,
        "walker found suspiciously few files: {}",
        files.len()
    );
    let toml_src = std::fs::read_to_string(root.join("hi-lint.toml")).unwrap();
    let sup = parse_toml(&toml_src).unwrap();
    let report = run(&files, &sup, true);
    assert!(report.is_clean(), "{}", report.render());
}
