//! The `hi-lint` CLI: scan the workspace, apply `hi-lint.toml`, print
//! diagnostics, exit nonzero unless clean. See the library docs for what
//! the rules check.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match workspace_root() {
        Some(root) => root,
        None => {
            eprintln!("hi-lint: cannot locate the workspace root (run from the repo)");
            return ExitCode::FAILURE;
        }
    };

    let toml_path = root.join("hi-lint.toml");
    let suppressions = if toml_path.is_file() {
        let src = match std::fs::read_to_string(&toml_path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("hi-lint: cannot read {}: {e}", toml_path.display());
                return ExitCode::FAILURE;
            }
        };
        match hi_lint::parse_toml(&src) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("hi-lint: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Vec::new()
    };

    let files = match hi_lint::workspace_files(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("hi-lint: walking {} failed: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let report = hi_lint::run(&files, &suppressions, true);
    print!("{}", report.render());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: an explicit argument, the current directory when it
/// looks like the workspace, or the checkout this binary was built from.
fn workspace_root() -> Option<PathBuf> {
    if let Some(arg) = std::env::args().nth(1) {
        return Some(PathBuf::from(arg));
    }
    if let Ok(cwd) = std::env::current_dir() {
        if looks_like_root(&cwd) {
            return Some(cwd);
        }
    }
    let from_manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    looks_like_root(&from_manifest).then_some(from_manifest)
}

fn looks_like_root(p: &Path) -> bool {
    p.join("Cargo.toml").is_file() && p.join("crates").is_dir()
}
