//! The rule engine: five determinism-hygiene rules, each protecting one
//! history-independence invariant at the source level.
//!
//! | Rule | Protects |
//! |---|---|
//! | `nondeterminism` | layout = *f(contents, seed)*: no iteration-order, wall-clock, thread-id, or address dependence in layout-affecting crates |
//! | `unsafe-audit` | the memory-safety baseline the HI proofs assume: every crate root forbids `unsafe_code` |
//! | `persisted-history` | anti-persistence at rest: the on-disk header field lists match an explicit allowlist |
//! | `panic-surface` | recoverability: library panics are either typed errors or carry an inline justification |
//! | `entropy` | reproducibility: no unseeded randomness outside bench/test code |
//!
//! Rules are lexical, not semantic: they match token patterns, so they are
//! conservative (a `HashMap` that is never iterated still needs a justified
//! suppression — the justification *is* the audit trail).

use crate::lexer::{lex, Kind, Lexed, Token};
use crate::suppress::{parse_annotations, Annotation, BadAnnotation};
use std::fmt;

/// Identifies a rule (or meta-rule) in diagnostics and suppressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Nondeterminism sources in layout-affecting code.
    Nondeterminism,
    /// `#![forbid(unsafe_code)]` on crate roots; no `unsafe` tokens.
    UnsafeAudit,
    /// On-disk header fields must match the explicit allowlist.
    PersistedHistory,
    /// `unwrap`/`expect`/`panic!` in library code need justification.
    PanicSurface,
    /// Unseeded RNG construction outside bench/test code.
    Entropy,
    /// Meta: a `hi-lint.toml` entry matched no diagnostic.
    StaleSuppression,
    /// Meta: an inline annotation matched no diagnostic.
    StaleAnnotation,
    /// Meta: a malformed `hi-lint:` comment.
    BadAnnotation,
}

impl RuleId {
    /// The kebab-case rule name used in diagnostics, annotations, and
    /// `hi-lint.toml`.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::Nondeterminism => "nondeterminism",
            RuleId::UnsafeAudit => "unsafe-audit",
            RuleId::PersistedHistory => "persisted-history",
            RuleId::PanicSurface => "panic-surface",
            RuleId::Entropy => "entropy",
            RuleId::StaleSuppression => "stale-suppression",
            RuleId::StaleAnnotation => "stale-annotation",
            RuleId::BadAnnotation => "bad-annotation",
        }
    }

    /// Parses a *suppressible* rule name (the five real rules; meta-rules
    /// cannot be suppressed — a stale suppression must be deleted, not
    /// suppressed in turn).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "nondeterminism" => RuleId::Nondeterminism,
            "unsafe-audit" => RuleId::UnsafeAudit,
            "persisted-history" => RuleId::PersistedHistory,
            "panic-surface" => RuleId::PanicSurface,
            "entropy" => RuleId::Entropy,
            _ => return None,
        })
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: `path:line:col: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileClass {
    /// `crates/<name>/src/…` — the crate's directory name.
    CrateSrc(String),
    /// `src/…` — the root facade crate.
    RootSrc,
    /// `tests/…` — workspace integration tests.
    TestsDir,
    /// `examples/…` — runnable examples.
    ExamplesDir,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> Option<FileClass> {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        let krate = rest.split('/').next()?;
        if rest.split('/').nth(1) == Some("src") {
            return Some(FileClass::CrateSrc(krate.to_string()));
        }
        return None;
    }
    if rel_path.starts_with("src/") {
        return Some(FileClass::RootSrc);
    }
    if rel_path.starts_with("tests/") {
        return Some(FileClass::TestsDir);
    }
    if rel_path.starts_with("examples/") {
        return Some(FileClass::ExamplesDir);
    }
    None
}

/// Crates exempt from the `nondeterminism` and `panic-surface` rules:
/// the bench harness and test support are measurement/fixture code whose
/// output never feeds a persisted layout, and the linter itself is a dev
/// tool. Everything else — engines *and* the workload generators whose
/// output becomes dictionary contents — is in scope.
pub const TOOL_CRATES: &[&str] = &["bench", "test-support", "hi-lint"];

/// Crates exempt from the `entropy` rule (bench harnesses may time with
/// entropy-free clocks but never draw layout coins; test support seeds
/// everything by construction and is exercised only under `cargo test`).
pub const ENTROPY_EXEMPT_CRATES: &[&str] = &["bench", "test-support"];

/// The one file allowed to write persisted header bytes, audited by the
/// `persisted-history` rule.
pub const AUDITED_STORE_PATH: &str = "crates/block-store/src/store.rs";

/// Functions in [`AUDITED_STORE_PATH`] that may call `put_u64`, with the
/// exact ordered field list each may write. A new field — say, persisting
/// the commit generation — changes the third argument sequence and fails
/// the audit until the allowlist (and the DESIGN.md argument for why the
/// field is not operation history) is updated.
pub const PERSISTED_ALLOWLIST: &[(&str, &[&str])] = &[
    (
        "encode_header",
        &[
            "MAGIC",
            "VERSION",
            "block_size",
            "meta.record_size",
            "meta.total_slots",
            "meta.len",
            "meta.seed",
            "0", // reserved: the commit generation must stay RAM-only
            "meta.fingerprint",
            "meta.checksum_root", // FNV over the checksum region: integrity, not history
            "sum",
        ],
    ),
    (
        "encode_checksum_word",
        &[
            // One FNV word per payload block — a pure function of the
            // committed image bytes, which are themselves f(contents, seed).
            "word",
        ],
    ),
    (
        "encode_journal_header",
        &[
            "JMAGIC",
            "block_size",
            "0", // reserved: no generation counter in the journal either
            "count",
            "target_len",
            "payload_sum",
            "sum",
        ],
    ),
];

/// The result of linting one file, before suppression matching.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Raw diagnostics (annotations not yet applied).
    pub diagnostics: Vec<Diagnostic>,
    /// Inline `hi-lint: allow(…)` annotations found in the file.
    pub annotations: Vec<Annotation>,
    /// Malformed `hi-lint:` comments.
    pub bad_annotations: Vec<BadAnnotation>,
}

/// Lints one file's source. `rel_path` drives rule scoping; unclassifiable
/// paths get only the universally applicable checks (none today).
pub fn lint_file(rel_path: &str, src: &str) -> FileLint {
    let lx = lex(src);
    let mut out = FileLint::default();
    let (annotations, bad_annotations) =
        parse_annotations(&lx.comments, |line| lx.next_token_line(line));
    out.annotations = annotations;
    out.bad_annotations = bad_annotations;

    let Some(class) = classify(rel_path) else {
        return out;
    };
    let crate_name = match &class {
        FileClass::CrateSrc(k) => Some(k.as_str()),
        _ => None,
    };
    let is_tool = crate_name.is_some_and(|k| TOOL_CRATES.contains(&k));
    let is_lib_code = matches!(class, FileClass::CrateSrc(_) | FileClass::RootSrc);

    if is_lib_code && !is_tool {
        nondeterminism_rule(rel_path, &lx, &mut out.diagnostics);
        panic_surface_rule(rel_path, &lx, &mut out.diagnostics);
    }
    let entropy_exempt = crate_name.is_some_and(|k| ENTROPY_EXEMPT_CRATES.contains(&k));
    let entropy_in_scope = match class {
        FileClass::CrateSrc(_) | FileClass::RootSrc => !entropy_exempt,
        // Examples are the documented face of the workspace: they must be
        // seeded end to end. Integration tests are test code by definition.
        FileClass::ExamplesDir => true,
        FileClass::TestsDir => false,
    };
    if entropy_in_scope {
        entropy_rule(rel_path, &lx, &mut out.diagnostics);
    }
    unsafe_audit_rule(rel_path, &class, is_tool, &lx, &mut out.diagnostics);
    if rel_path == AUDITED_STORE_PATH {
        persisted_history_rule(rel_path, &lx, &mut out.diagnostics);
    }
    out
}

/// Iterates indices of tokens outside test regions.
fn live_tokens<'a>(lx: &'a Lexed<'a>) -> impl Iterator<Item = (usize, &'a Token<'a>)> {
    lx.tokens
        .iter()
        .enumerate()
        .filter(|(i, _)| !lx.in_test[*i])
}

fn diag(out: &mut Vec<Diagnostic>, rule: RuleId, path: &str, t: &Token<'_>, message: String) {
    out.push(Diagnostic {
        rule,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message,
    });
}

/// Texts of `lx.tokens[i..i+n]`, or `None` near the end of the stream.
fn seq<'a>(lx: &'a Lexed<'a>, i: usize, n: usize) -> Option<Vec<&'a str>> {
    lx.tokens
        .get(i..i + n)
        .map(|w| w.iter().map(|t| t.text).collect())
}

/// Rule 1 — nondeterminism sources. In layout-affecting crates, layout must
/// be a pure function of *(contents, seed)*; these constructs smuggle in
/// hasher randomization, iteration order, wall-clock time, thread identity,
/// or allocation addresses.
fn nondeterminism_rule(path: &str, lx: &Lexed<'_>, out: &mut Vec<Diagnostic>) {
    for (i, t) in live_tokens(lx) {
        if t.kind == Kind::Ident {
            let why = match t.text {
                "HashMap" | "HashSet" => Some(
                    "iteration order depends on the process-random hasher; \
                     use BTreeMap/BTreeSet, an index map, or suppress with a \
                     membership-only justification",
                ),
                "RandomState" | "DefaultHasher" => {
                    Some("process-random hashing; derive hashes from the structure seed instead")
                }
                "hash_map" | "hash_set" => {
                    Some("std::collections hash-module import in layout-affecting code")
                }
                "Instant" | "SystemTime" | "UNIX_EPOCH" => {
                    Some("wall-clock reads make layout decisions time-dependent")
                }
                _ => None,
            };
            if let Some(why) = why {
                diag(
                    out,
                    RuleId::Nondeterminism,
                    path,
                    t,
                    format!("`{}`: {}", t.text, why),
                );
                continue;
            }
            if t.text == "thread" && seq(lx, i + 1, 3).is_some_and(|w| w == [":", ":", "current"]) {
                diag(
                    out,
                    RuleId::Nondeterminism,
                    path,
                    t,
                    "`thread::current()`: thread identity must never influence layout".into(),
                );
                continue;
            }
            if (t.text == "as_ptr" || t.text == "as_mut_ptr")
                && seq(lx, i + 1, 3).is_some_and(|w| w == ["(", ")", "as"])
            {
                diag(
                    out,
                    RuleId::Nondeterminism,
                    path,
                    t,
                    format!(
                        "`{}() as …`: pointer-to-integer cast leaks allocation addresses \
                         into arithmetic",
                        t.text
                    ),
                );
                continue;
            }
        }
        if t.kind == Kind::Punct
            && t.text == "*"
            && lx
                .tokens
                .get(i + 1)
                .is_some_and(|n| n.text == "const" || n.text == "mut")
        {
            diag(
                out,
                RuleId::Nondeterminism,
                path,
                t,
                "raw pointer type in layout-affecting code: addresses are per-run entropy".into(),
            );
        }
    }
}

/// Rule 2 — unsafe audit. Crate roots must carry `#![forbid(unsafe_code)]`
/// (the compiler then polices the lib target); any `unsafe` token in
/// non-tool library sources is flagged directly, which also covers bin
/// targets that an inner lib attribute cannot reach.
fn unsafe_audit_rule(
    path: &str,
    class: &FileClass,
    is_tool: bool,
    lx: &Lexed<'_>,
    out: &mut Vec<Diagnostic>,
) {
    let is_crate_root =
        path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"));
    if is_crate_root {
        let mut found = false;
        for (i, t) in lx.tokens.iter().enumerate() {
            if t.text == "#"
                && seq(lx, i + 1, 7)
                    .is_some_and(|w| w == ["!", "[", "forbid", "(", "unsafe_code", ")", "]"])
            {
                found = true;
                break;
            }
        }
        if !found {
            out.push(Diagnostic {
                rule: RuleId::UnsafeAudit,
                path: path.to_string(),
                line: 1,
                col: 1,
                message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
            });
        }
    }
    let token_scope = matches!(class, FileClass::CrateSrc(_) | FileClass::RootSrc) && !is_tool;
    if token_scope {
        for (_, t) in live_tokens(lx) {
            if t.kind == Kind::Ident && t.text == "unsafe" {
                diag(
                    out,
                    RuleId::UnsafeAudit,
                    path,
                    t,
                    "`unsafe` in library code: the HI proofs assume the safe subset".into(),
                );
            }
        }
    }
}

/// Rule 3 — persisted-history audit. Every `put_u64` into a header image
/// must sit inside one of the audited encoder functions, and each encoder's
/// ordered third-argument list must equal [`PERSISTED_ALLOWLIST`] exactly.
fn persisted_history_rule(path: &str, lx: &Lexed<'_>, out: &mut Vec<Diagnostic>) {
    // Locate each audited function's body as a token range.
    let mut bodies: Vec<(usize, usize, usize)> = Vec::new(); // (allowlist idx, start, end)
    for (which, (name, _)) in PERSISTED_ALLOWLIST.iter().enumerate() {
        let mut found = false;
        for (i, t) in lx.tokens.iter().enumerate() {
            if t.text == "fn" && lx.tokens.get(i + 1).is_some_and(|n| n.text == *name) {
                if let Some(range) = brace_body(lx, i) {
                    bodies.push((which, range.0, range.1));
                    found = true;
                }
                break;
            }
        }
        if !found {
            out.push(Diagnostic {
                rule: RuleId::PersistedHistory,
                path: path.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "audited encoder `fn {name}` not found — the persisted-history \
                     allowlist has nothing to anchor on"
                ),
            });
        }
    }

    // Check each audited body's put_u64 calls against its allowlist.
    for &(which, start, end) in &bodies {
        let (name, allow) = PERSISTED_ALLOWLIST[which];
        let mut k = 0usize;
        let mut i = start;
        while i < end {
            let t = &lx.tokens[i];
            if t.text == "put_u64" && lx.tokens.get(i + 1).is_some_and(|n| n.text == "(") {
                let (args, after) = call_args(lx, i + 1);
                let value = args.get(2).cloned().unwrap_or_default();
                match allow.get(k) {
                    Some(&expected) if expected == value => {}
                    Some(&expected) => diag(
                        out,
                        RuleId::PersistedHistory,
                        path,
                        t,
                        format!(
                            "`{name}` field {k} persists `{value}` but the allowlist \
                             says `{expected}` — on-disk state may encode operation history"
                        ),
                    ),
                    None => diag(
                        out,
                        RuleId::PersistedHistory,
                        path,
                        t,
                        format!(
                            "`{name}` persists extra field {k} (`{value}`) beyond the \
                             {}-entry allowlist",
                            allow.len()
                        ),
                    ),
                }
                k += 1;
                i = after;
                continue;
            }
            i += 1;
        }
        if k < allow.len() {
            out.push(Diagnostic {
                rule: RuleId::PersistedHistory,
                path: path.to_string(),
                line: lx.tokens[start].line,
                col: lx.tokens[start].col,
                message: format!(
                    "`{name}` writes {k} fields but the allowlist expects {} — \
                     decode offsets and the allowlist have drifted apart",
                    allow.len()
                ),
            });
        }
    }

    // Any put_u64 call outside the audited bodies (the definition itself and
    // test modules excepted) writes persisted bytes nobody audited.
    for (i, t) in live_tokens(lx) {
        if t.text != "put_u64" {
            continue;
        }
        if i > 0 && lx.tokens[i - 1].text == "fn" {
            continue; // the definition
        }
        if lx.tokens.get(i + 1).map(|n| n.text) != Some("(") {
            continue; // a mention, not a call
        }
        if bodies.iter().any(|&(_, s, e)| i >= s && i < e) {
            continue;
        }
        diag(
            out,
            RuleId::PersistedHistory,
            path,
            t,
            "`put_u64` outside the audited encoder functions: all persisted header \
             writes must go through an allowlisted encoder"
                .into(),
        );
    }
}

/// The token range (exclusive of braces) of the body following item token
/// `i` — the first `{…}` group after it.
fn brace_body(lx: &Lexed<'_>, i: usize) -> Option<(usize, usize)> {
    let open = (i..lx.tokens.len()).find(|&j| lx.tokens[j].text == "{")?;
    let mut depth = 0i32;
    for j in open..lx.tokens.len() {
        match lx.tokens[j].text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, j));
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses a call's arguments starting at the `(` token index: returns the
/// comma-separated argument texts (tokens concatenated) at paren depth 1 and
/// the index one past the closing `)`.
fn call_args(lx: &Lexed<'_>, open: usize) -> (Vec<String>, usize) {
    let mut args = Vec::new();
    let mut current = String::new();
    let mut depth = 0i32;
    let mut j = open;
    while j < lx.tokens.len() {
        let text = lx.tokens[j].text;
        match text {
            "(" | "[" | "{" => {
                depth += 1;
                if depth > 1 {
                    current.push_str(text);
                }
            }
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    if !current.is_empty() {
                        args.push(std::mem::take(&mut current));
                    }
                    return (args, j + 1);
                }
                current.push_str(text);
            }
            "," if depth == 1 => {
                args.push(std::mem::take(&mut current));
            }
            _ => current.push_str(text),
        }
        j += 1;
    }
    (args, j)
}

/// Rule 4 — panic surface. In library code, `.unwrap()`, `.expect(…)` and
/// the panicking macros either get converted to typed errors or carry an
/// inline justification explaining why the path is unreachable. (`assert!`
/// family is deliberately allowed: asserts are stated invariants, and the
/// determinism batteries rely on them firing loudly.)
fn panic_surface_rule(path: &str, lx: &Lexed<'_>, out: &mut Vec<Diagnostic>) {
    for (i, t) in live_tokens(lx) {
        if t.kind != Kind::Ident {
            continue;
        }
        let next = lx.tokens.get(i + 1).map(|n| n.text);
        let prev = i.checked_sub(1).map(|p| lx.tokens[p].text);
        match t.text {
            "unwrap" | "expect" if next == Some("(") && prev == Some(".") => {
                diag(
                    out,
                    RuleId::PanicSurface,
                    path,
                    t,
                    format!(
                        "`.{}(…)` in library code: return a typed error or justify \
                         with `// hi-lint: allow(panic-surface): <why unreachable>`",
                        t.text
                    ),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next == Some("!") => {
                diag(
                    out,
                    RuleId::PanicSurface,
                    path,
                    t,
                    format!(
                        "`{}!` in library code: return a typed error or justify \
                         with `// hi-lint: allow(panic-surface): <why unreachable>`",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Rule 5 — entropy sources. Layout coins come from the structure seed;
/// constructing an RNG from process entropy anywhere outside bench/test
/// code silently breaks every reproducibility guarantee.
fn entropy_rule(path: &str, lx: &Lexed<'_>, out: &mut Vec<Diagnostic>) {
    for (i, t) in live_tokens(lx) {
        if t.kind != Kind::Ident {
            continue;
        }
        // `fn from_entropy(…)` — defining the escape hatch draws nothing;
        // the rule bites at every call site instead.
        if i > 0 && lx.tokens[i - 1].text == "fn" {
            continue;
        }
        let why = match t.text {
            "from_entropy" | "thread_rng" => "unseeded RNG construction",
            "OsRng" => "operating-system entropy source",
            "getrandom" => "raw entropy syscall",
            _ => continue,
        };
        diag(
            out,
            RuleId::Entropy,
            path,
            t,
            format!(
                "`{}`: {} — derive all randomness from an explicit seed",
                t.text, why
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msgs(rel: &str, src: &str) -> Vec<String> {
        lint_file(rel, src)
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect()
    }

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/pma/src/hi_pma.rs"),
            Some(FileClass::CrateSrc("pma".into()))
        );
        assert_eq!(classify("src/dict.rs"), Some(FileClass::RootSrc));
        assert_eq!(classify("tests/determinism.rs"), Some(FileClass::TestsDir));
        assert_eq!(
            classify("examples/quickstart.rs"),
            Some(FileClass::ExamplesDir)
        );
        assert_eq!(classify("crates/pma/tests/x.rs"), None);
    }

    #[test]
    fn nondeterminism_fires_in_engine_crates_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(msgs("crates/pma/src/x.rs", src).len(), 1);
        assert_eq!(msgs("crates/bench/src/x.rs", src).len(), 0);
        assert_eq!(msgs("tests/x.rs", src).len(), 0);
    }

    #[test]
    fn nondeterminism_skips_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n use std::collections::HashSet;\n}\n";
        assert_eq!(msgs("crates/pma/src/x.rs", src).len(), 0);
    }

    #[test]
    fn thread_current_and_ptr_casts_fire() {
        let src = "fn f() { let t = thread::current(); let p = v.as_ptr() as usize; }\n";
        let m = msgs("crates/shard/src/x.rs", src);
        assert_eq!(m.len(), 2, "{m:?}");
    }

    #[test]
    fn raw_pointer_types_fire() {
        let src = "fn f(p: *const u8, q: *mut u8) {}\n";
        assert_eq!(msgs("crates/pma/src/x.rs", src).len(), 2);
    }

    #[test]
    fn multiplication_is_not_a_raw_pointer() {
        let src = "fn f(a: usize) -> usize { a * CONST_FACTOR }\n";
        assert_eq!(msgs("crates/pma/src/x.rs", src).len(), 0);
    }

    #[test]
    fn panic_surface_needs_method_call_shape() {
        // A local function named `unwrap` or a path call is not `.unwrap()`.
        let src = "fn f() { unwrap(); x.unwrap_or(3); x.unwrap_or_else(g); }\n";
        assert_eq!(msgs("crates/pma/src/x.rs", src).len(), 0);
        let src2 = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); }\n";
        assert_eq!(msgs("crates/pma/src/x.rs", src2).len(), 3);
    }

    #[test]
    fn entropy_applies_to_examples_but_not_tests() {
        let src = "fn main() { let r = StdRng::from_entropy(); }\n";
        assert_eq!(msgs("examples/demo.rs", src).len(), 1);
        assert_eq!(msgs("tests/demo.rs", src).len(), 0);
        assert_eq!(msgs("crates/bench/src/bin/demo.rs", src).len(), 0);
    }

    #[test]
    fn unsafe_audit_checks_roots_and_tokens() {
        let m = msgs("crates/pma/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(m.len(), 1);
        assert!(m[0].contains("forbid(unsafe_code)"), "{m:?}");
        let ok = msgs(
            "crates/pma/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let tok = msgs("crates/pma/src/x.rs", "fn f() { unsafe { g(); } }\n");
        assert_eq!(tok.len(), 1);
    }

    #[test]
    fn persisted_history_accepts_the_allowlist() {
        let src = r#"
fn encode_header(out: &mut [u8], block_size: u64, meta: &StoreMeta) {
    put_u64(out, 0, MAGIC);
    put_u64(out, 1, VERSION);
    put_u64(out, 2, block_size);
    put_u64(out, 3, meta.record_size);
    put_u64(out, 4, meta.total_slots);
    put_u64(out, 5, meta.len);
    put_u64(out, 6, meta.seed);
    put_u64(out, 7, 0);
    put_u64(out, 8, meta.fingerprint);
    put_u64(out, 9, meta.checksum_root);
    put_u64(out, HEADER_FIELDS - 1, sum);
}
fn encode_checksum_word(out: &mut [u8], k: usize, word: u64) {
    put_u64(out, k, word);
}
fn encode_journal_header(out: &mut [u8]) {
    put_u64(out, 0, JMAGIC);
    put_u64(out, 1, block_size);
    put_u64(out, 2, 0);
    put_u64(out, 3, count);
    put_u64(out, 4, target_len);
    put_u64(out, 5, payload_sum);
    put_u64(out, JHEADER_FIELDS - 1, sum);
}
"#;
        let m = msgs(AUDITED_STORE_PATH, src);
        assert!(m.is_empty(), "{m:?}");
    }

    #[test]
    fn persisted_history_catches_a_generation_leak() {
        let src = r#"
fn encode_header(out: &mut [u8], block_size: u64, meta: &StoreMeta) {
    put_u64(out, 0, MAGIC);
    put_u64(out, 1, VERSION);
    put_u64(out, 2, block_size);
    put_u64(out, 3, meta.record_size);
    put_u64(out, 4, meta.total_slots);
    put_u64(out, 5, meta.len);
    put_u64(out, 6, meta.seed);
    put_u64(out, 7, meta.generation);
    put_u64(out, 8, meta.fingerprint);
    put_u64(out, 9, meta.checksum_root);
    put_u64(out, HEADER_FIELDS - 1, sum);
}
fn encode_checksum_word(out: &mut [u8], k: usize, word: u64) {
    put_u64(out, k, word);
}
fn encode_journal_header(out: &mut [u8]) {
    put_u64(out, 0, JMAGIC);
    put_u64(out, 1, block_size);
    put_u64(out, 2, 0);
    put_u64(out, 3, count);
    put_u64(out, 4, target_len);
    put_u64(out, 5, payload_sum);
    put_u64(out, JHEADER_FIELDS - 1, sum);
}
"#;
        let m = msgs(AUDITED_STORE_PATH, src);
        assert_eq!(m.len(), 1, "{m:?}");
        assert!(m[0].contains("meta.generation"), "{m:?}");
    }

    #[test]
    fn persisted_history_catches_rogue_writes_and_missing_anchors() {
        let rogue = "fn sneak(out: &mut [u8]) { put_u64(out, 0, counter); }\n";
        let m = msgs(AUDITED_STORE_PATH, rogue);
        // Three missing anchors plus the rogue write.
        assert_eq!(m.len(), 4, "{m:?}");
    }
}
