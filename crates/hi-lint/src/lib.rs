//! # hi-lint — workspace determinism-hygiene analyzer
//!
//! The paper's anti-persistence guarantee says a structure's bit
//! representation is a pure function of *(contents, seed)*. The runtime
//! batteries (χ² layout distributions, determinism fingerprints, crash
//! kill-points) can only catch a violation a test happens to exercise; this
//! crate machine-checks the *sources* of violation on every CI run, so a
//! stray `HashMap` iteration feeding a rebalance, an `Instant::now()`
//! tie-break, or a persisted flush counter is a lint error before it is a
//! statistics problem.
//!
//! The analyzer is hand-rolled and dependency-free: a lightweight Rust
//! lexer ([`lexer`]) that understands strings, raw strings, char literals,
//! nested comments, and `#[cfg(test)]`-module brace tracking; a rule engine
//! ([`rules`]) emitting `file:line:col` diagnostics for five rules; and a
//! suppression layer ([`suppress`]) — inline
//! `// hi-lint: allow(<rule>): <justification>` annotations plus a
//! `hi-lint.toml` file — with stale-suppression detection, so the escape
//! hatch can only shrink by itself, never rot.
//!
//! Run as a workspace bin (`cargo run --release --bin hi-lint`) it scans
//! `src/`, `crates/*/src/`, `tests/`, and `examples/` and exits nonzero on
//! any unsuppressed diagnostic or stale suppression. `ci.sh` runs it as a
//! hard gate before clippy. See `DESIGN.md` §"Determinism hygiene & static
//! analysis" for each rule's invariant and the suppression policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod walk;

pub use engine::{run, Report, SourceFile};
pub use rules::{classify, lint_file, Diagnostic, FileClass, RuleId};
pub use suppress::{parse_toml, Suppression};
pub use walk::workspace_files;
