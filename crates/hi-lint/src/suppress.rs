//! Suppressions: the `hi-lint.toml` file and inline `// hi-lint: allow(…)`
//! annotations, both with stale-entry detection.
//!
//! Policy (documented in `DESIGN.md` §"Determinism hygiene"):
//!
//! * Every suppression carries a human justification. An empty reason is a
//!   lint error, not a shrug.
//! * Every suppression must match at least one diagnostic in the current
//!   run. A stale entry — left behind after the code it excused was fixed —
//!   fails CI, so the suppression surface can only shrink by itself, never
//!   silently rot.

use crate::rules::RuleId;
use std::fmt;

/// One `[[suppress]]` entry from `hi-lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule being suppressed.
    pub rule: RuleId,
    /// Workspace-relative path the suppression applies to.
    pub path: String,
    /// Optional exact line constraint.
    pub line: Option<u32>,
    /// Optional substring constraint against the flagged source line.
    pub contains: Option<String>,
    /// Human justification (required, non-empty).
    pub reason: String,
    /// Line in `hi-lint.toml` where the entry starts (for stale reports).
    pub toml_line: u32,
}

impl Suppression {
    /// Whether this entry suppresses a diagnostic at `path:line` whose
    /// flagged source line is `src_line`.
    pub fn matches(&self, rule: RuleId, path: &str, line: u32, src_line: &str) -> bool {
        self.rule == rule
            && self.path == path
            && self.line.is_none_or(|l| l == line)
            && self
                .contains
                .as_deref()
                .is_none_or(|needle| src_line.contains(needle))
    }
}

/// An inline `// hi-lint: allow(<rule>): <justification>` annotation.
///
/// A trailing annotation excuses its own line; a standalone annotation
/// excuses the next line that holds code. The justification is mandatory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// The rule being allowed.
    pub rule: RuleId,
    /// The code line the annotation applies to.
    pub target_line: u32,
    /// The line the comment itself sits on.
    pub comment_line: u32,
    /// Human justification (non-empty by construction).
    pub reason: String,
}

/// A malformed `hi-lint:` comment — reported as a diagnostic rather than
/// silently ignored, because a typo'd annotation that quietly fails to
/// suppress would surface as a confusing unrelated error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadAnnotation {
    /// Line of the malformed comment.
    pub line: u32,
    /// What is wrong with it.
    pub what: String,
}

/// Parses the inline annotations of one file from its comment stream.
///
/// `next_token_line` maps a comment's line to the following code line (for
/// standalone comments); trailing comments bind to their own line.
pub fn parse_annotations(
    comments: &[crate::lexer::Comment<'_>],
    mut next_token_line: impl FnMut(u32) -> Option<u32>,
) -> (Vec<Annotation>, Vec<BadAnnotation>) {
    let mut anns = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("hi-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad.push(BadAnnotation {
                line: c.line,
                what: "expected `hi-lint: allow(<rule>): <justification>`".into(),
            });
            continue;
        };
        let Some((rule_name, after)) = rest.split_once(')') else {
            bad.push(BadAnnotation {
                line: c.line,
                what: "unclosed `allow(`".into(),
            });
            continue;
        };
        let Some(rule) = RuleId::from_name(rule_name.trim()) else {
            bad.push(BadAnnotation {
                line: c.line,
                what: format!("unknown rule `{}`", rule_name.trim()),
            });
            continue;
        };
        let reason = after.trim_start_matches(':').trim();
        if reason.is_empty() {
            bad.push(BadAnnotation {
                line: c.line,
                what: "missing justification after `allow(…):`".into(),
            });
            continue;
        }
        let target_line = if c.trailing {
            c.line
        } else {
            match next_token_line(c.line) {
                Some(l) => l,
                None => {
                    bad.push(BadAnnotation {
                        line: c.line,
                        what: "annotation is not followed by any code".into(),
                    });
                    continue;
                }
            }
        };
        anns.push(Annotation {
            rule,
            target_line,
            comment_line: c.line,
            reason: reason.to_string(),
        });
    }
    (anns, bad)
}

/// A `hi-lint.toml` parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line of the offending entry.
    pub line: u32,
    /// Description of the problem.
    pub what: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hi-lint.toml:{}: {}", self.line, self.what)
    }
}

/// Parses the suppression file: a sequence of `[[suppress]]` tables with
/// `rule`, `path`, `reason` (strings, required) and `line` (integer) /
/// `contains` (string) optional constraints.
///
/// This is a deliberate hand-rolled subset of TOML — string and integer
/// values, `#` comments, one table shape — because the workspace vendors no
/// TOML crate and the gate must not depend on unvetted parsing code.
pub fn parse_toml(src: &str) -> Result<Vec<Suppression>, TomlError> {
    struct Partial {
        rule: Option<RuleId>,
        path: Option<String>,
        line: Option<u32>,
        contains: Option<String>,
        reason: Option<String>,
        toml_line: u32,
    }
    let mut out = Vec::new();
    let mut open: Option<Partial> = None;

    let finish = |p: Partial| -> Result<Suppression, TomlError> {
        let missing = |what: &str| TomlError {
            line: p.toml_line,
            what: format!("[[suppress]] entry is missing `{what}`"),
        };
        let rule = p.rule.ok_or_else(|| missing("rule"))?;
        let path = p.path.ok_or_else(|| missing("path"))?;
        let reason = p.reason.ok_or_else(|| missing("reason"))?;
        if reason.trim().is_empty() {
            return Err(TomlError {
                line: p.toml_line,
                what: "`reason` must not be empty".into(),
            });
        }
        Ok(Suppression {
            rule,
            path,
            line: p.line,
            contains: p.contains,
            reason,
            toml_line: p.toml_line,
        })
    };

    for (i, raw) in src.lines().enumerate() {
        let lineno = i as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[suppress]]" {
            if let Some(p) = open.take() {
                out.push(finish(p)?);
            }
            open = Some(Partial {
                rule: None,
                path: None,
                line: None,
                contains: None,
                reason: None,
                toml_line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(TomlError {
                line: lineno,
                what: format!("expected `key = value` or `[[suppress]]`, got `{line}`"),
            });
        };
        let Some(p) = open.as_mut() else {
            return Err(TomlError {
                line: lineno,
                what: "key outside any [[suppress]] table".into(),
            });
        };
        let key = key.trim();
        let value = value.trim();
        let string = |v: &str| -> Result<String, TomlError> {
            let inner = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| TomlError {
                    line: lineno,
                    what: format!("`{key}` must be a double-quoted string"),
                })?;
            Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
        };
        match key {
            "rule" => {
                let name = string(value)?;
                p.rule = Some(RuleId::from_name(&name).ok_or_else(|| TomlError {
                    line: lineno,
                    what: format!("unknown rule `{name}`"),
                })?);
            }
            "path" => p.path = Some(string(value)?),
            "contains" => p.contains = Some(string(value)?),
            "reason" => p.reason = Some(string(value)?),
            "line" => {
                p.line = Some(value.parse().map_err(|_| TomlError {
                    line: lineno,
                    what: format!("`line` must be an integer, got `{value}`"),
                })?);
            }
            other => {
                return Err(TomlError {
                    line: lineno,
                    what: format!("unknown key `{other}`"),
                });
            }
        }
    }
    if let Some(p) = open.take() {
        out.push(finish(p)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn toml_roundtrip() {
        let src = r#"
# comment
[[suppress]]
rule = "nondeterminism"
path = "crates/io-sim/src/lru.rs"
contains = "HashMap"
reason = "membership only"

[[suppress]]
rule = "panic-surface"
path = "src/dict.rs"
line = 12
reason = "unreachable: builder validated"
"#;
        let s = parse_toml(src).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].rule, RuleId::Nondeterminism);
        assert_eq!(s[0].contains.as_deref(), Some("HashMap"));
        assert_eq!(s[1].line, Some(12));
        assert!(s[0].matches(
            RuleId::Nondeterminism,
            "crates/io-sim/src/lru.rs",
            40,
            "    map: HashMap<u64, usize>,"
        ));
        assert!(!s[0].matches(
            RuleId::Nondeterminism,
            "crates/io-sim/src/lru.rs",
            40,
            "    slab: Vec<Node>,"
        ));
    }

    #[test]
    fn toml_rejects_missing_reason() {
        let src = "[[suppress]]\nrule = \"entropy\"\npath = \"x.rs\"\n";
        assert!(parse_toml(src).is_err());
    }

    #[test]
    fn toml_rejects_unknown_rule_and_key() {
        assert!(
            parse_toml("[[suppress]]\nrule = \"bogus\"\npath = \"x\"\nreason = \"y\"\n").is_err()
        );
        assert!(
            parse_toml("[[suppress]]\nrule = \"entropy\"\nfoo = \"x\"\nreason = \"y\"\n").is_err()
        );
    }

    #[test]
    fn annotations_bind_trailing_and_standalone() {
        let src = "\
let a = x.unwrap(); // hi-lint: allow(panic-surface): length checked above
// hi-lint: allow(entropy): demo seed displayed to the user
let b = seed();
";
        let l = lex(src);
        let (anns, bad) = parse_annotations(&l.comments, |line| l.next_token_line(line));
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].rule, RuleId::PanicSurface);
        assert_eq!(anns[0].target_line, 1);
        assert_eq!(anns[1].rule, RuleId::Entropy);
        assert_eq!(anns[1].target_line, 3);
    }

    #[test]
    fn malformed_annotations_are_reported() {
        let src = "\
// hi-lint: allow(panic-surface)
let a = 1;
// hi-lint: allow(bogus-rule): x
let b = 2;
// hi-lint: disallow(entropy): x
let c = 3;
";
        let l = lex(src);
        let (anns, bad) = parse_annotations(&l.comments, |line| l.next_token_line(line));
        assert!(anns.is_empty());
        assert_eq!(bad.len(), 3);
    }
}
