//! A lightweight Rust lexer: just enough structure to write reliable
//! source-level rules without a full parser.
//!
//! The lexer produces a token stream (identifiers, literals, punctuation)
//! with `line:col` positions, a separate comment stream (rules never match
//! inside comments, but suppression annotations live there), and a
//! per-token "inside test code" flag computed by brace-tracking items
//! attributed `#[cfg(test)]` or `#[test]`.
//!
//! Handled literal forms, because a rule that matches a banned identifier
//! inside a string would be useless: cooked strings with escapes, raw
//! strings `r#"…"#` at any hash depth, byte/C-string prefixes (`b"`, `br#"`,
//! `c"`, `cr#"`), char and byte-char literals, lifetimes, and nested block
//! comments.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `fn`, …).
    Ident,
    /// Lifetime (`'a`, `'_`) — distinguished so `'a` never looks like a
    /// char literal and vice versa.
    Lifetime,
    /// Numeric literal (suffixes included; `1.5` lexes as `1` `.` `5`,
    /// which is fine for pattern rules).
    Num,
    /// String literal of any flavor (cooked, raw, byte, C).
    Str,
    /// Char or byte-char literal.
    Char,
    /// A single punctuation character.
    Punct,
}

/// One lexeme with its source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The lexeme kind.
    pub kind: Kind,
    /// The lexeme text, sliced out of the source.
    pub text: &'a str,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// One comment (`//…` to end of line, or a `/*…*/` block, nesting included),
/// kept out of the token stream but retained for annotation parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comment<'a> {
    /// Full comment text including the delimiters.
    pub text: &'a str,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based column the comment starts at.
    pub col: u32,
    /// Whether any token precedes the comment on its starting line (a
    /// trailing comment annotates its own line; a standalone comment
    /// annotates the next code line).
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token<'a>>,
    /// All comments in source order.
    pub comments: Vec<Comment<'a>>,
    /// `in_test[i]` is `true` when `tokens[i]` sits inside a `#[cfg(test)]`
    /// or `#[test]` item body.
    pub in_test: Vec<bool>,
}

impl<'a> Lexed<'a> {
    /// The first token line strictly after `line`, if any — where a
    /// standalone comment annotation attaches.
    pub fn next_token_line(&self, line: u32) -> Option<u32> {
        // Tokens are in source order, so a linear scan from the first token
        // past `line` is fine at these file sizes.
        self.tokens.iter().map(|t| t.line).find(|&l| l > line)
    }
}

struct Cursor<'a> {
    src: &'a str,
    /// Byte offset into `src`.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `prefix` + `"` (or `prefix` + `#…#"`) starts a string literal
/// (`r`, `b`, `c`, `br`, `cr`, `rb` is not valid Rust but harmless to
/// accept).
fn is_string_prefix(prefix: &str) -> bool {
    matches!(prefix, "r" | "b" | "c" | "br" | "cr" | "rb")
}

/// Lexes `src` into tokens, comments, and per-token test-region flags.
///
/// The lexer is permissive: malformed input (an unterminated string, say)
/// never panics, it just consumes to end of file. Rules operate on whatever
/// tokens come out; `rustc` is the authority on well-formedness.
pub fn lex(src: &str) -> Lexed<'_> {
    let mut cur = Cursor {
        src,
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    let mut line_has_token = false;
    let mut last_line = 1u32;

    while let Some(c) = cur.peek() {
        if cur.line != last_line {
            line_has_token = false;
            last_line = cur.line;
        }
        let (line, col, start) = (cur.line, cur.col, cur.pos);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek2() == Some('/') {
            while let Some(ch) = cur.peek() {
                if ch == '\n' {
                    break;
                }
                cur.bump();
            }
            out.comments.push(Comment {
                text: &src[start..cur.pos],
                line,
                col,
                trailing: line_has_token,
            });
            continue;
        }
        if c == '/' && cur.peek2() == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            while depth > 0 {
                match (cur.peek(), cur.peek2()) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            out.comments.push(Comment {
                text: &src[start..cur.pos],
                line,
                col,
                trailing: line_has_token,
            });
            continue;
        }
        line_has_token = true;
        // Identifiers, keywords, and string-literal prefixes.
        if is_ident_start(c) {
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            let ident = &src[start..cur.pos];
            if is_string_prefix(ident) {
                match cur.peek() {
                    Some('"') => {
                        let raw = ident.contains('r');
                        lex_string(&mut cur, raw, 0);
                        out.tokens.push(Token {
                            kind: Kind::Str,
                            text: &src[start..cur.pos],
                            line,
                            col,
                        });
                        continue;
                    }
                    Some('#') if ident.contains('r') => {
                        let mut hashes = 0usize;
                        while cur.peek_at(hashes) == Some('#') {
                            hashes += 1;
                        }
                        if cur.peek_at(hashes) == Some('"') {
                            for _ in 0..hashes {
                                cur.bump();
                            }
                            lex_string(&mut cur, true, hashes);
                            out.tokens.push(Token {
                                kind: Kind::Str,
                                text: &src[start..cur.pos],
                                line,
                                col,
                            });
                            continue;
                        }
                    }
                    Some('\'') if ident == "b" => {
                        cur.bump();
                        lex_char_body(&mut cur);
                        out.tokens.push(Token {
                            kind: Kind::Char,
                            text: &src[start..cur.pos],
                            line,
                            col,
                        });
                        continue;
                    }
                    _ => {}
                }
            }
            out.tokens.push(Token {
                kind: Kind::Ident,
                text: ident,
                line,
                col,
            });
            continue;
        }
        // Numbers (integer spellings; `.` stays punctuation).
        if c.is_ascii_digit() {
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: Kind::Num,
                text: &src[start..cur.pos],
                line,
                col,
            });
            continue;
        }
        // Cooked strings.
        if c == '"' {
            lex_string(&mut cur, false, 0);
            out.tokens.push(Token {
                kind: Kind::Str,
                text: &src[start..cur.pos],
                line,
                col,
            });
            continue;
        }
        // Lifetimes vs char literals.
        if c == '\'' {
            cur.bump();
            match (cur.peek(), cur.peek2()) {
                // '\…' is always a char literal.
                (Some('\\'), _) => {
                    lex_char_body(&mut cur);
                    out.tokens.push(Token {
                        kind: Kind::Char,
                        text: &src[start..cur.pos],
                        line,
                        col,
                    });
                }
                // 'x' (any single char followed by a closing quote).
                (Some(_), Some('\'')) => {
                    cur.bump();
                    cur.bump();
                    out.tokens.push(Token {
                        kind: Kind::Char,
                        text: &src[start..cur.pos],
                        line,
                        col,
                    });
                }
                // 'ident — a lifetime.
                (Some(x), _) if is_ident_start(x) => {
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: Kind::Lifetime,
                        text: &src[start..cur.pos],
                        line,
                        col,
                    });
                }
                // Anything else ('0', say): consume to the closing quote.
                _ => {
                    lex_char_body(&mut cur);
                    out.tokens.push(Token {
                        kind: Kind::Char,
                        text: &src[start..cur.pos],
                        line,
                        col,
                    });
                }
            }
            continue;
        }
        // Single punctuation character.
        cur.bump();
        out.tokens.push(Token {
            kind: Kind::Punct,
            text: &src[start..cur.pos],
            line,
            col,
        });
    }

    out.in_test = test_regions(&out.tokens);
    out
}

/// Consumes a string body. For cooked strings handles `\\` and `\"`; for raw
/// strings scans for `"` followed by `hashes` `#` characters. The opening
/// quote has not been consumed yet.
fn lex_string(cur: &mut Cursor<'_>, raw: bool, hashes: usize) {
    cur.bump(); // opening quote
    while let Some(ch) = cur.peek() {
        if !raw && ch == '\\' {
            cur.bump();
            cur.bump();
            continue;
        }
        if ch == '"' {
            let mut ok = true;
            for i in 0..hashes {
                if cur.peek_at(1 + i) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                cur.bump();
                for _ in 0..hashes {
                    cur.bump();
                }
                return;
            }
        }
        cur.bump();
    }
}

/// Consumes the rest of a char literal after the opening `'` (escapes
/// included), stopping after the closing `'` or at end of line.
fn lex_char_body(cur: &mut Cursor<'_>) {
    while let Some(ch) = cur.peek() {
        if ch == '\\' {
            cur.bump();
            cur.bump();
            continue;
        }
        if ch == '\n' {
            return; // malformed; don't swallow the file
        }
        cur.bump();
        if ch == '\'' {
            return;
        }
    }
}

/// Computes, for each token, whether it sits inside a test item: an item
/// attributed `#[test]` or `#[cfg(test)]` (also `#[cfg(all(test, …))]` and
/// friends — any `cfg` attribute mentioning `test` outside a `not(…)`).
///
/// Mechanism: a test attribute arms a "pending" flag; the next `{` at the
/// same brace depth opens the item body and the region lasts until its
/// matching `}`. A `;` before any `{` disarms (e.g. `#[cfg(test)] use …;`).
fn test_regions(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut depth: i32 = 0;
    // Brace depths at which an active test region started.
    let mut regions: Vec<i32> = Vec::new();
    let mut pending = false;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == Kind::Punct && t.text == "#" {
            // Attribute: `#[…]` or `#![…]`.
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.text == "!") {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.text == "[") {
                let attr_start = j + 1;
                let mut bdepth = 1;
                j += 1;
                while j < tokens.len() && bdepth > 0 {
                    match tokens[j].text {
                        "[" => bdepth += 1,
                        "]" => bdepth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let attr = &tokens[attr_start..j.saturating_sub(1)];
                if is_test_attr(attr) {
                    pending = true;
                }
                for f in flags.iter_mut().take(j).skip(i) {
                    *f = !regions.is_empty();
                }
                i = j;
                continue;
            }
        }
        match t.text {
            "{" => {
                if pending {
                    regions.push(depth);
                    pending = false;
                }
                depth += 1;
            }
            "}" => {
                depth -= 1;
                if regions.last() == Some(&depth) {
                    regions.pop();
                    // The closing brace itself still belongs to the region.
                    flags[i] = true;
                    i += 1;
                    continue;
                }
            }
            // `#[cfg(test)] use …;` — a body-less item ends the pending
            // attribute without ever opening a region.
            ";" => pending = false,
            _ => {}
        }
        flags[i] = !regions.is_empty() || pending;
        i += 1;
    }
    flags
}

/// Whether the tokens of one attribute mark a test item: `test`, or a `cfg`
/// mentioning `test` not directly wrapped in `not(…)`.
fn is_test_attr(attr: &[Token<'_>]) -> bool {
    for (k, t) in attr.iter().enumerate() {
        if t.kind == Kind::Ident && t.text == "test" {
            let negated = k >= 2 && attr[k - 2].text == "not" && attr[k - 1].text == "(";
            if !negated {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let x = "HashMap::new()";"#), vec!["let", "x"]);
        assert_eq!(
            idents(r##"let x = r#"unwrap() "quoted""#;"##),
            vec!["let", "x"]
        );
        assert_eq!(idents(r#"let x = b"unwrap";"#), vec!["let", "x"]);
    }

    #[test]
    fn comments_hide_their_contents_but_are_kept() {
        let l = lex("// HashMap here\nlet /* unwrap() /* nested */ */ x = 1;");
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "HashMap" && t.text != "unwrap"));
        assert_eq!(l.comments.len(), 2);
        assert!(!l.comments[0].trailing);
        assert!(l.comments[1].trailing);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let z = b'a'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars = l.tokens.iter().filter(|t| t.kind == Kind::Char).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  bb");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_module_is_flagged() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn helper() { x.unwrap(); }\n}\nfn live2() {}";
        let l = lex(src);
        for (t, &in_test) in l.tokens.iter().zip(&l.in_test) {
            if t.text == "unwrap" || t.text == "helper" {
                assert!(in_test, "{} should be in a test region", t.text);
            }
            if t.text == "live" || t.text == "live2" {
                assert!(!in_test, "{} should not be in a test region", t.text);
            }
        }
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        let l = lex(src);
        assert!(l.in_test.iter().all(|&f| !f));
    }

    #[test]
    fn test_fn_attribute_is_flagged() {
        let src = "#[test]\nfn check() { assert!(true); }\nfn live() {}";
        let l = lex(src);
        for (t, &in_test) in l.tokens.iter().zip(&l.in_test) {
            if t.text == "assert" {
                assert!(in_test);
            }
            if t.text == "live" {
                assert!(!in_test);
            }
        }
    }

    #[test]
    fn cfg_test_use_without_body_does_not_arm_forever() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { f(); }";
        let l = lex(src);
        for (t, &in_test) in l.tokens.iter().zip(&l.in_test) {
            if t.text == "live" || t.text == "f" {
                assert!(!in_test);
            }
        }
    }

    #[test]
    fn nested_braces_close_the_right_region() {
        let src = "#[cfg(test)]\nmod t { fn a() { if x { y(); } } }\nfn live() {}";
        let l = lex(src);
        let live = l.tokens.iter().position(|t| t.text == "live").unwrap();
        assert!(!l.in_test[live]);
    }
}
