//! Ties the pieces together: lint every file, apply inline annotations and
//! `hi-lint.toml` suppressions, detect stale entries, and render a report.

use crate::rules::{lint_file, Diagnostic, RuleId, AUDITED_STORE_PATH};
use crate::suppress::Suppression;

/// One source file handed to the engine (path is workspace-relative with
/// forward slashes).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub rel_path: String,
    /// File contents.
    pub src: String,
}

/// The outcome of a full run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed diagnostics plus stale-suppression findings, sorted by
    /// path, line, column, rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned.
    pub files: usize,
    /// Diagnostics silenced by a matching annotation or suppression.
    pub suppressed: usize,
}

impl Report {
    /// `true` when the workspace is clean: nothing unsuppressed, nothing
    /// stale.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the report as the CLI prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "hi-lint: {} files scanned, {} diagnostics ({} suppressed)\n",
            self.files,
            self.diagnostics.len(),
            self.suppressed
        ));
        out
    }
}

/// Runs the linter over `files` with the given suppression table.
///
/// `require_audit_anchors` makes the absence of [`AUDITED_STORE_PATH`]
/// itself a diagnostic — the workspace gate sets it so that deleting the
/// audited file cannot silently disable the persisted-history rule;
/// fixture-driven tests leave it off.
pub fn run(
    files: &[SourceFile],
    suppressions: &[Suppression],
    require_audit_anchors: bool,
) -> Report {
    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    let mut used_suppression = vec![false; suppressions.len()];

    for file in files {
        let lint = lint_file(&file.rel_path, &file.src);
        let lines: Vec<&str> = file.src.lines().collect();
        let line_text = |line: u32| lines.get(line as usize - 1).copied().unwrap_or("");
        let mut used_annotation = vec![false; lint.annotations.len()];

        for d in lint.diagnostics {
            // Inline annotations first: they are the preferred, closest-to-
            // the-code suppression and their justification reads in context.
            let ann = lint
                .annotations
                .iter()
                .position(|a| a.rule == d.rule && a.target_line == d.line);
            if let Some(k) = ann {
                used_annotation[k] = true;
                report.suppressed += 1;
                continue;
            }
            let sup = suppressions
                .iter()
                .position(|s| s.matches(d.rule, &d.path, d.line, line_text(d.line)));
            if let Some(k) = sup {
                used_suppression[k] = true;
                report.suppressed += 1;
                continue;
            }
            report.diagnostics.push(d);
        }

        for (k, a) in lint.annotations.iter().enumerate() {
            if !used_annotation[k] {
                report.diagnostics.push(Diagnostic {
                    rule: RuleId::StaleAnnotation,
                    path: file.rel_path.clone(),
                    line: a.comment_line,
                    col: 1,
                    message: format!(
                        "`allow({})` matches no diagnostic on line {} — the code it \
                         excused was fixed; delete the annotation",
                        a.rule, a.target_line
                    ),
                });
            }
        }
        for b in lint.bad_annotations {
            report.diagnostics.push(Diagnostic {
                rule: RuleId::BadAnnotation,
                path: file.rel_path.clone(),
                line: b.line,
                col: 1,
                message: b.what,
            });
        }
    }

    if require_audit_anchors && !files.iter().any(|f| f.rel_path == AUDITED_STORE_PATH) {
        report.diagnostics.push(Diagnostic {
            rule: RuleId::PersistedHistory,
            path: AUDITED_STORE_PATH.to_string(),
            line: 1,
            col: 1,
            message: "audited file not found in the workspace — the persisted-history \
                      rule has nothing to check"
                .into(),
        });
    }

    for (k, s) in suppressions.iter().enumerate() {
        if !used_suppression[k] {
            report.diagnostics.push(Diagnostic {
                rule: RuleId::StaleSuppression,
                path: "hi-lint.toml".to_string(),
                line: s.toml_line,
                col: 1,
                message: format!(
                    "suppression of `{}` at `{}` matches no diagnostic — the code it \
                     excused was fixed; delete the entry",
                    s.rule, s.path
                ),
            });
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suppress::parse_toml;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            src: src.to_string(),
        }
    }

    #[test]
    fn annotation_suppresses_and_is_consumed() {
        let f = file(
            "crates/pma/src/x.rs",
            "fn f() {\n    // hi-lint: allow(panic-surface): index bounded by caller\n    x.unwrap();\n}\n",
        );
        let r = run(&[f], &[], false);
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn stale_annotation_fails() {
        let f = file(
            "crates/pma/src/x.rs",
            "// hi-lint: allow(panic-surface): nothing here panics\nfn f() {}\n",
        );
        let r = run(&[f], &[], false);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, RuleId::StaleAnnotation);
    }

    #[test]
    fn toml_suppression_matches_and_stale_entry_fails() {
        let toml = parse_toml(
            "[[suppress]]\nrule = \"nondeterminism\"\npath = \"crates/pma/src/x.rs\"\ncontains = \"HashMap\"\nreason = \"membership only\"\n\n[[suppress]]\nrule = \"entropy\"\npath = \"crates/pma/src/gone.rs\"\nreason = \"was fixed\"\n",
        )
        .unwrap();
        let f = file("crates/pma/src/x.rs", "use std::collections::HashMap;\n");
        let r = run(&[f], &toml, false);
        assert_eq!(r.suppressed, 1);
        assert_eq!(r.diagnostics.len(), 1, "{}", r.render());
        assert_eq!(r.diagnostics[0].rule, RuleId::StaleSuppression);
        assert_eq!(r.diagnostics[0].path, "hi-lint.toml");
    }

    #[test]
    fn missing_audited_file_is_reported_when_required() {
        let f = file("crates/pma/src/x.rs", "fn f() {}\n");
        let r = run(std::slice::from_ref(&f), &[], true);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, RuleId::PersistedHistory);
        let r2 = run(&[f], &[], false);
        assert!(r2.is_clean());
    }

    #[test]
    fn report_is_sorted_and_rendered() {
        let f1 = file("crates/pma/src/b.rs", "fn f() { x.unwrap(); }\n");
        let f2 = file("crates/pma/src/a.rs", "use std::collections::HashSet;\n");
        let r = run(&[f1, f2], &[], false);
        assert_eq!(r.diagnostics.len(), 2);
        assert!(r.diagnostics[0].path.ends_with("a.rs"));
        assert!(r.render().contains("2 diagnostics (0 suppressed)"));
    }
}
