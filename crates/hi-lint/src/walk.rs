//! Deterministic workspace traversal.
//!
//! Scans exactly the surfaces the issue gate names — `src/`,
//! `crates/*/src/`, `tests/`, `examples/` — in sorted order, so diagnostics
//! come out in a stable order on every machine. `vendor/` (external shims)
//! and `target/` are never visited, and neither are fixture directories:
//! fixtures contain *seeded violations* and live outside any `src/`.

use crate::engine::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// Collects every `.rs` file under the scanned surfaces of `root`, paths
/// workspace-relative with forward slashes, sorted.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect(root, &root.join(top), &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_entries(&crates_dir)? {
            collect(root, &krate.join("src"), &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Directory entries of `dir`, sorted by file name for run-to-run stable
/// output (readdir order is filesystem-dependent).
fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for path in sorted_entries(dir)? {
        if path.is_dir() {
            collect(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                rel_path: rel,
                src: std::fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_this_workspace() {
        // The crate sits at crates/hi-lint, so the workspace root is ../..
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root).unwrap();
        let paths: Vec<&str> = files.iter().map(|f| f.rel_path.as_str()).collect();
        assert!(paths.contains(&"src/lib.rs"), "{paths:?}");
        assert!(paths.contains(&"crates/pma/src/hi_pma.rs"));
        assert!(paths.contains(&"tests/determinism.rs"));
        assert!(paths.contains(&"examples/quickstart.rs"));
        assert!(paths.iter().all(|p| !p.starts_with("vendor/")));
        assert!(paths.iter().all(|p| !p.contains("fixtures")));
        // Sorted and duplicate-free.
        let mut sorted = paths.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(paths, sorted);
    }
}
