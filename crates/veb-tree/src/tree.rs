//! A complete binary tree stored in vEB order with traced access.
//!
//! [`VebTree`] is the storage container behind the PMA's rank tree and the
//! cache-oblivious B-tree's value tree. Nodes are addressed by BFS index;
//! reads and writes are optionally reported to an [`io_sim::Tracer`] using
//! the node's vEB position, so root-to-leaf traversals are charged the
//! cache-oblivious `O(log_B N)` I/Os.

use crate::layout::VebLayout;
use crate::navigation::node_count;
use io_sim::{Region, Tracer};

/// A fixed-topology complete binary tree with one `T` per node, stored in
/// van Emde Boas order.
#[derive(Debug, Clone)]
pub struct VebTree<T> {
    layout: VebLayout,
    data: Vec<T>,
    region: Region,
    tracer: Tracer,
}

impl<T: Clone + Default> VebTree<T> {
    /// Creates a tree with `levels` levels, every node holding `T::default()`.
    ///
    /// `region_base` is the byte address at which the vEB array notionally
    /// starts in the simulated address space and `elem_size` the on-disk size
    /// of one node; they only matter when `tracer` is enabled.
    pub fn new(levels: u32, region_base: u64, elem_size: u64, tracer: Tracer) -> Self {
        let layout = VebLayout::new(levels);
        let n = node_count(levels);
        Self {
            data: vec![T::default(); n],
            region: Region::new(region_base, elem_size, n as u64),
            layout,
            tracer,
        }
    }

    /// Number of levels.
    pub fn levels(&self) -> u32 {
        self.layout.levels()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tree has no nodes (never happens for a
    /// constructed tree).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The simulated-disk region backing this tree.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Reads the value at BFS index `bfs`.
    #[inline]
    pub fn get(&self, bfs: usize) -> &T {
        let pos = self.layout.position(bfs);
        self.tracer
            .read(self.region.addr(pos as u64), self.region.elem_size);
        &self.data[pos]
    }

    /// Writes the value at BFS index `bfs`.
    #[inline]
    pub fn set(&mut self, bfs: usize, value: T) {
        let pos = self.layout.position(bfs);
        self.tracer
            .write(self.region.addr(pos as u64), self.region.elem_size);
        self.data[pos] = value;
    }

    /// Reads without charging I/O (used by internal consistency checks and
    /// tests; real operations must use [`VebTree::get`]).
    #[inline]
    pub fn peek(&self, bfs: usize) -> &T {
        &self.data[self.layout.position(bfs)]
    }

    /// Overwrites every node with `T::default()` and charges a sequential
    /// write of the whole region (used when the owning structure rebuilds).
    pub fn clear(&mut self) {
        for v in &mut self.data {
            *v = T::default();
        }
        self.tracer.write(self.region.base, self.region.byte_len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::navigation::{children, leaf_index};
    use io_sim::IoConfig;

    #[test]
    fn get_set_roundtrip() {
        let mut t: VebTree<u64> = VebTree::new(4, 0, 8, Tracer::disabled());
        assert_eq!(t.len(), 15);
        for i in 0..15 {
            t.set(i, (i * 10) as u64);
        }
        for i in 0..15 {
            assert_eq!(*t.get(i), (i * 10) as u64);
            assert_eq!(*t.peek(i), (i * 10) as u64);
        }
    }

    #[test]
    fn defaults_are_zero() {
        let t: VebTree<u64> = VebTree::new(3, 0, 8, Tracer::disabled());
        assert!((0..t.len()).all(|i| *t.peek(i) == 0));
    }

    #[test]
    fn clear_resets() {
        let mut t: VebTree<u32> = VebTree::new(3, 0, 4, Tracer::disabled());
        t.set(5, 99);
        t.clear();
        assert_eq!(*t.peek(5), 0);
    }

    #[test]
    fn traced_descent_is_cheap() {
        // A root-to-leaf descent in a 16-level tree (8-byte nodes, 4 KiB
        // blocks) should cost only a few block reads thanks to the vEB
        // layout.
        let tracer = Tracer::enabled(IoConfig::new(4096, 4096));
        let levels = 16u32;
        let t: VebTree<u64> = VebTree::new(levels, 0, 8, tracer.clone());
        tracer.reset_cold();
        let mut node = 0usize;
        while 2 * node + 2 < t.len() {
            let _ = t.get(node);
            node = children(node).1;
        }
        let _ = t.get(node);
        let reads = tracer.stats().reads;
        assert!(reads <= 6, "descent cost {reads} blocks, expected <= 6");
    }

    #[test]
    fn traced_descent_beats_bfs_equivalent() {
        // The same descent against a BFS-ordered array would touch ~one block
        // per level once past the first few levels (~12 blocks of 512 nodes
        // for 16 levels). Confirm the vEB tree stays well under that.
        let tracer = Tracer::enabled(IoConfig::new(4096, 4096));
        let levels = 16u32;
        let t: VebTree<u64> = VebTree::new(levels, 0, 8, tracer.clone());
        tracer.reset_cold();
        // Descend to the leftmost leaf.
        let mut node = 0usize;
        for _ in 0..levels - 1 {
            let _ = t.get(node);
            node = children(node).0;
        }
        let _ = t.get(node);
        assert_eq!(node, leaf_index(levels, 0));
        assert!(tracer.stats().reads < 8);
    }

    #[test]
    fn region_is_exposed() {
        let t: VebTree<u64> = VebTree::new(3, 4096, 8, Tracer::disabled());
        assert_eq!(t.region().base, 4096);
        assert_eq!(t.region().slots, 7);
    }
}
