//! The van Emde Boas layout permutation.
//!
//! A complete binary tree with `L` levels is laid out recursively: cut the
//! tree at half its height; the top subtree (⌈L/2⌉ levels) is laid out first,
//! followed by each of the bottom subtrees (⌊L/2⌋ levels each) from left to
//! right, each laid out recursively. Any root-to-leaf path then crosses only
//! `O(log_B N)` blocks for *every* block size `B`, which is what makes the
//! rank tree and value tree cache-oblivious (paper §3.5).
//!
//! [`VebLayout`] precomputes the permutation from BFS index (root 0, children
//! `2i+1`/`2i+2`) to position in the vEB-ordered array. The permutation is a
//! pure function of the number of levels — rebuilding it is only needed when
//! the PMA resizes.

use crate::navigation::{children, node_count};

/// Precomputed BFS-index → vEB-position permutation for a complete binary
/// tree with a fixed number of levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VebLayout {
    levels: u32,
    /// `map[bfs_index] = position` in the vEB-ordered array.
    map: Vec<u32>,
}

impl VebLayout {
    /// Builds the layout for a complete binary tree with `levels` levels
    /// (`levels ≥ 1`; the tree has `2^levels − 1` nodes).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is 0 or the node count would overflow `u32`
    /// positions (more than 2³¹ nodes), far beyond anything the PMA needs.
    pub fn new(levels: u32) -> Self {
        assert!(levels >= 1, "a tree needs at least one level");
        assert!(levels < 32, "tree too large for u32 positions");
        let n = node_count(levels);
        let mut map = vec![u32::MAX; n];
        let mut next = 0u32;
        Self::assign(0, levels, &mut map, &mut next);
        debug_assert_eq!(next as usize, n);
        debug_assert!(map.iter().all(|&p| p != u32::MAX));
        Self { levels, map }
    }

    /// Number of levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` for the (impossible) empty layout; kept for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// vEB position of the node with BFS index `bfs`.
    #[inline]
    pub fn position(&self, bfs: usize) -> usize {
        self.map[bfs] as usize
    }

    /// Recursive layout: the subtree rooted at BFS index `root` spanning
    /// `levels` levels is assigned the next positions in vEB order.
    fn assign(root: usize, levels: u32, map: &mut [u32], next: &mut u32) {
        if levels == 1 {
            map[root] = *next;
            *next += 1;
            return;
        }
        let top_levels = levels.div_ceil(2);
        let bottom_levels = levels - top_levels;
        // Lay out the top subtree.
        Self::assign_clipped(root, top_levels, map, next);
        // The bottom subtrees hang off the children of the top subtree's
        // leaves. Those leaves are the descendants of `root` at relative
        // depth `top_levels − 1`, left to right.
        let leaf_count = 1usize << (top_levels - 1);
        let first_leaf = Self::descendant(root, top_levels - 1, 0);
        for k in 0..leaf_count {
            let leaf = first_leaf + k;
            let (l, r) = children(leaf);
            Self::assign(l, bottom_levels, map, next);
            Self::assign(r, bottom_levels, map, next);
        }
    }

    /// Lays out a subtree that is *clipped* to `levels` levels (its deeper
    /// descendants belong to bottom subtrees and are laid out separately).
    fn assign_clipped(root: usize, levels: u32, map: &mut [u32], next: &mut u32) {
        if levels == 1 {
            map[root] = *next;
            *next += 1;
            return;
        }
        let top_levels = levels.div_ceil(2);
        let bottom_levels = levels - top_levels;
        Self::assign_clipped(root, top_levels, map, next);
        let leaf_count = 1usize << (top_levels - 1);
        let first_leaf = Self::descendant(root, top_levels - 1, 0);
        for k in 0..leaf_count {
            let leaf = first_leaf + k;
            let (l, r) = children(leaf);
            Self::assign_clipped(l, bottom_levels, map, next);
            Self::assign_clipped(r, bottom_levels, map, next);
        }
    }

    /// BFS index of the `k`-th descendant of `root` at relative depth `d`.
    #[inline]
    fn descendant(root: usize, d: u32, k: usize) -> usize {
        // Node at relative depth d under `root`: (root+1) * 2^d − 1 + k.
        (root + 1) * (1usize << d) - 1 + k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::navigation::{depth_of, node_count};
    use std::collections::HashSet;

    #[test]
    fn single_level() {
        let l = VebLayout::new(1);
        assert_eq!(l.len(), 1);
        assert_eq!(l.position(0), 0);
    }

    #[test]
    fn two_levels_root_first() {
        let l = VebLayout::new(2);
        assert_eq!(l.len(), 3);
        assert_eq!(l.position(0), 0);
        // Children immediately follow in left-to-right order.
        assert_eq!(l.position(1), 1);
        assert_eq!(l.position(2), 2);
    }

    #[test]
    fn classic_four_level_layout() {
        // With 4 levels (15 nodes) the top half is 2 levels (nodes 0,1,2) and
        // each node at depth 1 spawns two 2-level bottom trees.
        let l = VebLayout::new(4);
        assert_eq!(l.position(0), 0);
        assert_eq!(l.position(1), 1);
        assert_eq!(l.position(2), 2);
        // First bottom subtree: rooted at node 3, children 7, 8.
        assert_eq!(l.position(3), 3);
        assert_eq!(l.position(7), 4);
        assert_eq!(l.position(8), 5);
        // Second bottom subtree: rooted at node 4, children 9, 10.
        assert_eq!(l.position(4), 6);
        assert_eq!(l.position(9), 7);
        assert_eq!(l.position(10), 8);
        // Third: node 5 with children 11, 12.
        assert_eq!(l.position(5), 9);
    }

    #[test]
    fn positions_are_a_permutation() {
        for levels in 1..=14u32 {
            let l = VebLayout::new(levels);
            let n = node_count(levels);
            let set: HashSet<usize> = (0..n).map(|i| l.position(i)).collect();
            assert_eq!(set.len(), n, "levels = {levels}");
            assert!(set.iter().all(|&p| p < n));
        }
    }

    #[test]
    fn root_is_always_first() {
        for levels in 1..=16u32 {
            assert_eq!(VebLayout::new(levels).position(0), 0);
        }
    }

    #[test]
    fn root_to_leaf_paths_have_veb_locality() {
        // In a vEB layout with 16 levels (65 535 nodes), a root-to-leaf path
        // stored as 8-byte nodes in 4 KiB blocks must cross far fewer blocks
        // than the same path in BFS order. This is the cache-oblivious
        // property the rank tree relies on.
        let levels = 16u32;
        let l = VebLayout::new(levels);
        let elem = 8u64;
        let block = 4096u64;
        let mut worst_veb = 0usize;
        let mut worst_bfs = 0usize;
        for leaf_k in (0..(1usize << (levels - 1))).step_by(997) {
            let mut node = crate::navigation::leaf_index(levels, leaf_k);
            let mut veb_blocks = HashSet::new();
            let mut bfs_blocks = HashSet::new();
            loop {
                veb_blocks.insert(l.position(node) as u64 * elem / block);
                bfs_blocks.insert(node as u64 * elem / block);
                if node == 0 {
                    break;
                }
                node = crate::navigation::parent(node);
            }
            worst_veb = worst_veb.max(veb_blocks.len());
            worst_bfs = worst_bfs.max(bfs_blocks.len());
        }
        assert!(
            worst_veb < worst_bfs,
            "vEB path blocks {worst_veb} should beat BFS {worst_bfs}"
        );
        // log_B N with B = 512 nodes/block and N = 2^16 nodes is ~1.8, so a
        // handful of blocks suffices; BFS needs ~depth blocks.
        assert!(worst_veb <= 6, "vEB path crosses {worst_veb} blocks");
    }

    #[test]
    fn depths_untouched_by_layout() {
        // Sanity: the layout permutes positions but the BFS arithmetic keeps
        // working (depth 0 root, etc.).
        let levels = 5;
        let _ = VebLayout::new(levels);
        assert_eq!(depth_of(0), 0);
        assert_eq!(depth_of(15), 4);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        VebLayout::new(0);
    }
}
