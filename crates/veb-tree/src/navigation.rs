//! Index arithmetic for complete binary trees addressed by BFS index.
//!
//! The PMA's tree of ranges (paper §3.3) is a complete binary tree; ranges
//! are identified by their BFS index: the root (the whole array) is node 0
//! and node `i` has children `2i + 1` and `2i + 2`. These helpers are shared
//! by the vEB trees and the PMA itself.

/// BFS index of the left and right children of node `i`.
#[inline]
pub fn children(i: usize) -> (usize, usize) {
    (2 * i + 1, 2 * i + 2)
}

/// BFS index of the parent of node `i`.
///
/// # Panics
///
/// Panics in debug builds when called on the root.
#[inline]
pub fn parent(i: usize) -> usize {
    debug_assert!(i > 0, "the root has no parent");
    (i - 1) / 2
}

/// Depth of node `i` (the root has depth 0).
#[inline]
pub fn depth_of(i: usize) -> u32 {
    usize::BITS - 1 - (i + 1).leading_zeros()
}

/// BFS index of the first (leftmost) node at `depth`.
#[inline]
pub fn first_of_level(depth: u32) -> usize {
    (1usize << depth) - 1
}

/// Returns `true` when nodes at `depth` are the leaves of a tree with
/// `levels` levels.
#[inline]
pub fn is_leaf_level(depth: u32, levels: u32) -> bool {
    depth + 1 == levels
}

/// Number of nodes in a complete binary tree with `levels` levels.
#[inline]
pub fn node_count(levels: u32) -> usize {
    (1usize << levels) - 1
}

/// Number of leaves in a complete binary tree with `levels` levels.
#[inline]
pub fn leaf_count(levels: u32) -> usize {
    1usize << (levels - 1)
}

/// The BFS index of the `k`-th leaf (left to right) in a tree with `levels`
/// levels.
#[inline]
pub fn leaf_index(levels: u32, k: usize) -> usize {
    first_of_level(levels - 1) + k
}

/// Offset of node `i` within its level (0 for the leftmost node).
#[inline]
pub fn offset_in_level(i: usize) -> usize {
    i - first_of_level(depth_of(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_and_parent_roundtrip() {
        for i in 0..1000usize {
            let (l, r) = children(i);
            assert_eq!(parent(l), i);
            assert_eq!(parent(r), i);
        }
    }

    #[test]
    fn depths() {
        assert_eq!(depth_of(0), 0);
        assert_eq!(depth_of(1), 1);
        assert_eq!(depth_of(2), 1);
        assert_eq!(depth_of(3), 2);
        assert_eq!(depth_of(6), 2);
        assert_eq!(depth_of(7), 3);
        assert_eq!(depth_of(14), 3);
    }

    #[test]
    fn level_boundaries() {
        assert_eq!(first_of_level(0), 0);
        assert_eq!(first_of_level(1), 1);
        assert_eq!(first_of_level(2), 3);
        assert_eq!(first_of_level(3), 7);
    }

    #[test]
    fn counting() {
        assert_eq!(node_count(1), 1);
        assert_eq!(node_count(3), 7);
        assert_eq!(leaf_count(1), 1);
        assert_eq!(leaf_count(4), 8);
        assert_eq!(leaf_index(3, 0), 3);
        assert_eq!(leaf_index(3, 3), 6);
    }

    #[test]
    fn offsets() {
        assert_eq!(offset_in_level(0), 0);
        assert_eq!(offset_in_level(1), 0);
        assert_eq!(offset_in_level(2), 1);
        assert_eq!(offset_in_level(5), 2);
    }

    #[test]
    fn leaf_level_detection() {
        assert!(is_leaf_level(2, 3));
        assert!(!is_leaf_level(1, 3));
        assert!(is_leaf_level(0, 1));
    }
}
