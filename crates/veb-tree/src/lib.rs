//! Static complete binary trees in the van Emde Boas (vEB) memory layout.
//!
//! The paper stores two auxiliary complete binary trees alongside the PMA
//! (§3.5 and §5): the **rank tree**, holding the number of elements `ℓ_R` in
//! every range `R`, and (for the cache-oblivious B-tree) the **value tree**,
//! holding the key of every balance element. Both are *static-topology*
//! complete binary trees laid out in the van Emde Boas order, which is
//! "deterministic, static, cache-oblivious — and hence history-independent"
//! and supports root-to-leaf traversals in `O(log N)` operations and
//! `O(log_B N)` I/Os without knowing `B`.
//!
//! * [`layout::VebLayout`] computes the BFS-index → vEB-position permutation.
//! * [`tree::VebTree`] stores one value per node in vEB order, optionally
//!   reporting its memory accesses to an [`io_sim::Tracer`] so benches can
//!   count the `O(log_B N)` descent cost.
//! * [`navigation`] contains the index arithmetic for complete binary trees
//!   addressed by BFS index (root 0, children `2i+1`, `2i+2`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod layout;
pub mod navigation;
pub mod tree;

pub use layout::VebLayout;
pub use navigation::{children, depth_of, first_of_level, is_leaf_level, parent};
pub use tree::VebTree;
