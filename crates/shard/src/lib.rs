//! Sharded concurrent dictionary service.
//!
//! The paper proves that a *single* dictionary's memory representation can
//! be a pure function of its contents and secret coins. A deployment that
//! serves heavy traffic does not run a single dictionary — it hash-partitions
//! the key space across `S` independent shards and works on them from many
//! threads. This crate shows (and the workspace's test battery verifies)
//! that the guarantee survives that scale-out: a [`ShardedDict`]'s complete
//! observable state — which shard each key lives on, plus every shard's
//! layout — remains a pure function of `(contents, seed, S)`.
//!
//! Three properties make that work, and each is load-bearing:
//!
//! 1. **Seeded routing** ([`router::ShardRouter`]): shard assignment derives
//!    from `(key, seed, S)` only — never from load, arrival order, or any
//!    other history-dependent signal.
//! 2. **Independent per-shard coins**: every shard's engine is seeded by a
//!    pure function of the root seed and the shard index
//!    ([`router::ShardRouter::shard_seed`]), so no randomness is shared and
//!    no cross-shard draw order exists for thread scheduling to perturb.
//! 3. **Order-preserving batching**: the batched operations
//!    ([`ShardedDict::multi_put`], [`ShardedDict::multi_get`],
//!    [`ShardedDict::multi_remove`]) group a batch by shard *preserving the
//!    batch's relative order within each shard*. A shard therefore observes
//!    exactly the subsequence of operations routed to it, regardless of how
//!    the caller split the stream into batches or how many worker threads
//!    executed them — so the final layout is bit-identical across every
//!    split and schedule (`tests/shard_history_independence.rs` and the
//!    determinism battery pin this).
//!
//! Batches execute on scoped worker threads (one per shard holding work,
//! [`std::thread::scope`]); small batches stay inline under a configurable
//! threshold. Global range scans k-way-merge the shards' lazy iterators
//! without allocating ([`merge::KWayMerge`]). Per-shard instrumentation
//! rolls up through the [`Instrumented`] trait.
//!
//! ## Graceful degradation
//!
//! A service front-end must survive one shard going bad without dropping the
//! other `S − 1`. Two failure sources exist at this layer: a worker panic
//! (an engine bug or a poisoned invariant surfacing mid-batch) and a
//! shard-local storage error reported by the owner of that shard's
//! persistence (the facade's `PersistentDict`). Either one **quarantines**
//! the shard: it is taken out of every read and write path, the service
//! keeps answering from the healthy shards, and the failure is available as
//! a typed [`ShardError::Degraded`] through the fallible surface
//! ([`ShardedDict::try_get`], [`ShardedDict::try_insert`],
//! [`ShardedDict::try_remove`], [`ShardedDict::health`]). The infallible
//! [`Dictionary`] surface degrades by omission — a quarantined shard's keys
//! read as absent and writes routed to it are dropped — which is the
//! documented trade for keeping the trait's signatures. A quarantined shard
//! rejoins after its contents are rebuilt ([`Dictionary::bulk_load`] /
//! [`ShardedDict::bulk_load_parallel`] re-admit every shard they rebuild
//! successfully) or after an explicit [`ShardedDict::restore_shard`] by a
//! caller that repaired the underlying storage.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod merge;
pub mod router;

use std::cmp::Ordering;
use std::fmt;
use std::hash::Hash;
use std::ops::RangeBounds;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::thread;

use hi_common::batch::BatchOp;
use hi_common::counters::OpCounters;
use hi_common::sync::{locked, panic_message};
use hi_common::traits::{cloned_bounds, Dictionary, KeyValue};
use io_sim::IoStats;

pub use merge::KWayMerge;
pub use router::{derive_seed, SeededHasher, ShardRouter, MAX_SHARDS};

/// A typed failure from the sharded service's fallible surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The shard the operation routed to is quarantined: a worker panicked
    /// on it or its storage failed, and it has not been restored since.
    /// The healthy shards are unaffected.
    Degraded {
        /// Index of the quarantined shard.
        shard: usize,
        /// Why it was quarantined (panic message or storage error text).
        reason: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Degraded { shard, reason } => {
                write!(f, "shard {shard} is quarantined: {reason}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Result of a fallible navigation probe ([`ShardedDict::try_successor`] /
/// [`ShardedDict::try_predecessor`]): the merged entry when it is provably
/// complete, or the first quarantined shard's error when that shard could
/// own the true answer.
pub type NavResult<K, V> = Result<Option<KeyValue<K, V>>, ShardError>;

/// Interior-mutable per-shard quarantine ledger. Lives behind a [`Mutex`]
/// because read-only entry points (`multi_get` takes `&self`) must be able
/// to quarantine a shard whose worker panicked; the lock guards a plain
/// `Vec<Option<String>>` that is consistent after every single mutation, so
/// the workspace's poisoned-lock recovery policy ([`locked`]) applies.
#[derive(Debug)]
struct Quarantine {
    down: Mutex<Vec<Option<String>>>,
}

impl Quarantine {
    fn new(shards: usize) -> Self {
        Self {
            down: Mutex::new(vec![None; shards]),
        }
    }

    fn reason(&self, shard: usize) -> Option<String> {
        locked(&self.down)[shard].clone()
    }

    fn is_down(&self, shard: usize) -> bool {
        locked(&self.down)[shard].is_some()
    }

    /// Records the first failure; later failures on an already-down shard
    /// keep the original reason (the root cause, not the cascade).
    fn put_down(&self, shard: usize, reason: String) {
        let mut down = locked(&self.down);
        down[shard].get_or_insert(reason);
    }

    fn restore(&self, shard: usize) {
        locked(&self.down)[shard] = None;
    }

    fn snapshot(&self) -> Vec<Option<String>> {
        locked(&self.down).clone()
    }
}

impl Clone for Quarantine {
    fn clone(&self) -> Self {
        Self {
            down: Mutex::new(self.snapshot()),
        }
    }
}

/// Batches smaller than this run inline instead of spawning worker threads;
/// the result is identical either way, so the threshold is purely a
/// throughput knob (and the tests drive it to 0 to force the threaded path).
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1024;

/// Read access to the per-engine instrumentation ledgers, so a sharded
/// service can report one aggregated [`IoStats`] / [`OpCounters`] view.
///
/// Implemented by the workspace's `DynDict` facade; any engine wrapper that
/// carries a tracer and a counter ledger can join.
pub trait Instrumented {
    /// Block-transfer totals recorded by the engine's tracer.
    fn io_stats(&self) -> IoStats;
    /// Operation totals recorded by the engine's counter ledger.
    fn op_counters(&self) -> OpCounters;
}

/// A dictionary hash-partitioned across `S` independent shards.
///
/// Implements the whole [`Dictionary`] surface (single-key operations route
/// through the seeded router; ordered navigation and range scans merge
/// across shards), and adds the batched, thread-parallel operations a
/// service front-end actually calls.
#[derive(Debug, Clone)]
pub struct ShardedDict<D> {
    router: ShardRouter,
    shards: Vec<D>,
    parallel_threshold: usize,
    quarantine: Quarantine,
}

impl<D: Dictionary> ShardedDict<D>
where
    D::Key: Hash,
{
    /// Wraps pre-built shards. `shards.len()` must match the router's count.
    pub fn from_shards(router: ShardRouter, shards: Vec<D>) -> Self {
        assert_eq!(
            shards.len(),
            router.shard_count(),
            "shard vector length must match the router's shard count"
        );
        let quarantine = Quarantine::new(shards.len());
        Self {
            router,
            shards,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            quarantine,
        }
    }

    /// Builds `router.shard_count()` shards by calling
    /// `build(index, derived_seed)` — the derived seed is
    /// [`ShardRouter::shard_seed`], so the whole structure's randomness
    /// stems from the router's root seed.
    pub fn build_with(router: ShardRouter, mut build: impl FnMut(usize, u64) -> D) -> Self {
        let shards = (0..router.shard_count())
            .map(|i| build(i, router.shard_seed(i)))
            .collect();
        Self::from_shards(router, shards)
    }

    /// The seeded router partitioning the key space.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in index order — read-only access for audits and layout
    /// fingerprinting (each shard's occupancy is part of the observable
    /// state the history-independence tests quantify over).
    pub fn shards(&self) -> &[D] {
        &self.shards
    }

    /// The shard `key` routes to.
    pub fn shard_of(&self, key: &D::Key) -> usize {
        self.router.route(key)
    }

    /// Batches at or above the returned size fan out to worker threads.
    pub fn parallel_threshold(&self) -> usize {
        self.parallel_threshold
    }

    /// Overrides the inline/threaded cut-over (0 forces threads for every
    /// non-empty batch — the determinism tests use this to prove scheduling
    /// is not a layout side channel).
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold;
    }

    /// Per-shard health: `None` for a serving shard, `Some(error)` for a
    /// quarantined one.
    pub fn health(&self) -> Vec<Option<ShardError>> {
        self.quarantine
            .snapshot()
            .into_iter()
            .enumerate()
            .map(|(shard, reason)| reason.map(|reason| ShardError::Degraded { shard, reason }))
            .collect()
    }

    /// Number of quarantined shards (0 = fully healthy).
    pub fn degraded_count(&self) -> usize {
        self.quarantine
            .snapshot()
            .iter()
            .filter(|r| r.is_some())
            .count()
    }

    /// The typed error for `shard` if it is quarantined.
    pub fn shard_status(&self, shard: usize) -> Option<ShardError> {
        self.quarantine
            .reason(shard)
            .map(|reason| ShardError::Degraded { shard, reason })
    }

    /// Quarantines `shard` by hand — the hook for shard-local *storage*
    /// failures, which surface at whatever layer owns the shard's
    /// persistence (this crate's engines are storage-agnostic). A shard
    /// already down keeps its original reason.
    pub fn quarantine_shard(&self, shard: usize, reason: impl Into<String>) {
        assert!(shard < self.shards.len(), "shard index out of range");
        self.quarantine.put_down(shard, reason.into());
    }

    /// Returns `shard` to service. Takes `&self`, matching
    /// [`Self::quarantine_shard`]: both are transitions of the interior-
    /// mutable quarantine ledger (a `Mutex`-guarded vector that is consistent
    /// after every single mutation), not of shard *data*. Repairing the data
    /// still requires `&mut self` (via [`Dictionary::bulk_load`], which
    /// restores automatically) or goes through the persistence owner outside
    /// this type; by the time `restore_shard` is called the shard's contents
    /// are valid by contract, so a reader racing the restore observes either
    /// a typed refusal (pre-restore) or a correct answer from the repaired
    /// shard (post-restore) — never torn state. The symmetric `&self`
    /// contract is what lets a server's health-management thread re-admit a
    /// repaired shard through a shared reference while batch traffic keeps
    /// draining, instead of demanding exclusive ownership of the whole
    /// service (see `DESIGN.md` §network front-end).
    pub fn restore_shard(&self, shard: usize) {
        assert!(shard < self.shards.len(), "shard index out of range");
        self.quarantine.restore(shard);
    }

    /// The lowest-indexed quarantined shard's typed error, if any shard is
    /// down — the refusal the fallible navigation surface reports when a
    /// quarantined shard could own an answer.
    fn first_degraded(&self) -> Option<ShardError> {
        self.quarantine
            .snapshot()
            .into_iter()
            .enumerate()
            .find_map(|(shard, reason)| reason.map(|reason| ShardError::Degraded { shard, reason }))
    }

    /// Fallible [`Dictionary::successor`]: refuses with
    /// `Err(ShardError::Degraded)` when a quarantined shard *could* own the
    /// answer, instead of the infallible surface's silent omission.
    ///
    /// The healthy shards' merged answer is provably complete in exactly one
    /// case: it is the probe key itself. Every key lives on exactly one
    /// shard, and no key can be strictly closer to `key` from above than
    /// `key`, so an exact hit cannot be beaten by anything a quarantined
    /// shard holds. In every other case the quarantined shard's keys —
    /// arbitrary under seeded hashing — could include one strictly between
    /// `key` and the best healthy answer, and the service refuses rather
    /// than return a silently wrong successor.
    pub fn try_successor(&self, key: &D::Key) -> NavResult<D::Key, D::Value> {
        let answer = self.successor(key);
        match self.first_degraded() {
            Some(err) => match &answer {
                Some((k, _)) if k == key => Ok(answer),
                _ => Err(err),
            },
            None => Ok(answer),
        }
    }

    /// Fallible [`Dictionary::predecessor`]: refuses with
    /// `Err(ShardError::Degraded)` when a quarantined shard could own the
    /// answer (see [`Self::try_successor`] — the exact-hit argument is
    /// symmetric from below).
    pub fn try_predecessor(&self, key: &D::Key) -> NavResult<D::Key, D::Value> {
        let answer = self.predecessor(key);
        match self.first_degraded() {
            Some(err) => match &answer {
                Some((k, _)) if k == key => Ok(answer),
                _ => Err(err),
            },
            None => Ok(answer),
        }
    }

    /// Fallible lookup: `Err(ShardError::Degraded)` when the key routes to a
    /// quarantined shard, instead of the infallible surface's silent `None`.
    pub fn try_get(&self, key: &D::Key) -> Result<Option<D::Value>, ShardError> {
        let shard = self.router.route(key);
        match self.quarantine.reason(shard) {
            Some(reason) => Err(ShardError::Degraded { shard, reason }),
            None => Ok(self.shards[shard].get(key)),
        }
    }

    /// Fallible insert: refuses (typed) instead of dropping the write when
    /// the key routes to a quarantined shard.
    pub fn try_insert(
        &mut self,
        key: D::Key,
        value: D::Value,
    ) -> Result<Option<D::Value>, ShardError> {
        let shard = self.router.route(&key);
        match self.quarantine.reason(shard) {
            Some(reason) => Err(ShardError::Degraded { shard, reason }),
            None => Ok(self.shards[shard].insert(key, value)),
        }
    }

    /// Fallible remove: refuses (typed) instead of silently missing when the
    /// key routes to a quarantined shard.
    pub fn try_remove(&mut self, key: &D::Key) -> Result<Option<D::Value>, ShardError> {
        let shard = self.router.route(key);
        match self.quarantine.reason(shard) {
            Some(reason) => Err(ShardError::Degraded { shard, reason }),
            None => Ok(self.shards[shard].remove(key)),
        }
    }

    /// Groups `pairs` by destination shard, preserving relative order.
    fn partition_pairs(
        &self,
        pairs: impl IntoIterator<Item = KeyValue<D::Key, D::Value>>,
    ) -> Vec<Vec<KeyValue<D::Key, D::Value>>> {
        let mut parts: Vec<Vec<KeyValue<D::Key, D::Value>>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (k, v) in pairs {
            parts[self.router.route(&k)].push((k, v));
        }
        parts
    }

    /// Groups batch operations by destination shard, preserving relative
    /// order (each shard observes exactly its subsequence of the stream).
    fn partition_ops(
        &self,
        ops: impl IntoIterator<Item = BatchOp<D::Key, D::Value>>,
    ) -> Vec<Vec<BatchOp<D::Key, D::Value>>> {
        let mut parts: Vec<Vec<BatchOp<D::Key, D::Value>>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for op in ops {
            parts[self.router.route(op.key())].push(op);
        }
        parts
    }
}

impl<D> ShardedDict<D>
where
    D: Dictionary + Send,
    D::Key: Hash + Send + Sync,
    D::Value: Send + Sync,
{
    /// Inserts every pair, batched per shard and executed on scoped worker
    /// threads (one per shard with work). Semantically identical to calling
    /// [`Dictionary::insert`] per pair in order: pairs routed to the same
    /// shard are applied in their batch order, so later duplicates win, and
    /// the resulting layout is bit-identical no matter how the caller split
    /// the stream into batches — per-shard subsequences are invariant under
    /// batch partitioning.
    pub fn multi_put(&mut self, pairs: impl IntoIterator<Item = KeyValue<D::Key, D::Value>>) {
        self.multi_apply(pairs.into_iter().map(|(k, v)| BatchOp::Put(k, v)));
    }

    /// Batched, order-preserving parallel form of [`Dictionary::extend`].
    ///
    /// This inherent method shadows the trait's default when called on a
    /// concrete `ShardedDict`; both produce identical shard states.
    pub fn extend(&mut self, pairs: impl IntoIterator<Item = KeyValue<D::Key, D::Value>>) {
        self.multi_put(pairs);
    }

    /// Removes every key in `keys`, batched per shard on scoped worker
    /// threads. Returns how many were present.
    pub fn multi_remove(&mut self, keys: impl IntoIterator<Item = D::Key>) -> usize {
        self.multi_apply(keys.into_iter().map(BatchOp::Remove))
    }

    /// Applies a mixed batch of keyed operations: groups the stream per
    /// shard preserving relative order, and routes each shard's subsequence
    /// through its engine's group-commit [`Dictionary::apply_batch`] — one
    /// descent per operation and one merge-rebalance per touched window,
    /// executed on scoped worker threads for large batches. Returns how
    /// many removes found their key.
    pub fn multi_apply(
        &mut self,
        ops: impl IntoIterator<Item = BatchOp<D::Key, D::Value>>,
    ) -> usize {
        // Partition while consuming the stream: only the per-shard
        // subsequences are ever buffered.
        let parts = self.partition_ops(ops);
        let total: usize = parts.iter().map(Vec::len).sum();
        let quarantine = &self.quarantine;
        if total < self.parallel_threshold.max(1) || self.shards.len() == 1 {
            self.shards
                .iter_mut()
                .zip(parts)
                .enumerate()
                .map(|(i, (shard, part))| {
                    if part.is_empty() || quarantine.is_down(i) {
                        return 0;
                    }
                    // A panicking engine is contained, not propagated: the
                    // shard is quarantined and the rest of the batch runs.
                    match catch_unwind(AssertUnwindSafe(|| shard.apply_batch(part))) {
                        Ok(hits) => hits,
                        Err(payload) => {
                            quarantine.put_down(i, panic_message(payload.as_ref()));
                            0
                        }
                    }
                })
                .sum()
        } else {
            thread::scope(|s| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(parts)
                    .enumerate()
                    .filter(|(i, (_, part))| !part.is_empty() && !quarantine.is_down(*i))
                    .map(|(i, (shard, part))| (i, s.spawn(move || shard.apply_batch(part))))
                    .collect();
                handles
                    .into_iter()
                    // A worker panic degrades its shard only: the join error
                    // carries the payload, the shard is quarantined, and the
                    // healthy shards' results still count.
                    .map(|(i, h)| match h.join() {
                        Ok(hits) => hits,
                        Err(payload) => {
                            quarantine.put_down(i, panic_message(payload.as_ref()));
                            0
                        }
                    })
                    .sum()
            })
        }
    }

    /// Looks up every key of `keys`, batched per shard on scoped worker
    /// threads, returning the values in input order. Each shard receives
    /// its probes as one [`Dictionary::get_many`] call, which sorts them and
    /// reuses a descent finger across consecutive keys instead of
    /// restarting at the root per probe; the original order is restored by
    /// scattering through the recorded index permutation. Read-only: shards
    /// are shared (`&self`), so callers can run `multi_get` from many
    /// threads concurrently.
    pub fn multi_get(&self, keys: &[D::Key]) -> Vec<Option<D::Value>>
    where
        D: Sync,
    {
        let mut parts: Vec<Vec<usize>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, k) in keys.iter().enumerate() {
            parts[self.router.route(k)].push(i);
        }
        let mut out: Vec<Option<D::Value>> = (0..keys.len()).map(|_| None).collect();
        let probe_keys =
            |part: &[usize]| -> Vec<D::Key> { part.iter().map(|&i| keys[i].clone()).collect() };
        let probe_keys = &probe_keys;
        let quarantine = &self.quarantine;
        if keys.len() < self.parallel_threshold.max(1) || self.shards.len() == 1 {
            for (i, (shard, part)) in self.shards.iter().zip(&parts).enumerate() {
                if part.is_empty() || quarantine.is_down(i) {
                    continue;
                }
                // Contain a panicking engine: its probes stay `None`, the
                // shard is quarantined, the rest of the scatter proceeds.
                match catch_unwind(AssertUnwindSafe(|| shard.get_many(&probe_keys(part)))) {
                    Ok(values) => {
                        for (&i, v) in part.iter().zip(values) {
                            out[i] = v;
                        }
                    }
                    Err(payload) => quarantine.put_down(i, panic_message(payload.as_ref())),
                }
            }
        } else {
            thread::scope(|s| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .zip(&parts)
                    .enumerate()
                    .filter(|(i, (_, part))| !part.is_empty() && !quarantine.is_down(*i))
                    .map(|(i, (shard, part))| {
                        (i, part, s.spawn(move || shard.get_many(&probe_keys(part))))
                    })
                    .collect();
                // Scatter each worker's results straight into `out` — no
                // intermediate flattened buffer. A panicked worker degrades
                // its shard only: its probes stay `None`.
                for (i, part, handle) in handles {
                    match handle.join() {
                        Ok(values) => {
                            for (&i, v) in part.iter().zip(values) {
                                out[i] = v;
                            }
                        }
                        Err(payload) => quarantine.put_down(i, panic_message(payload.as_ref())),
                    }
                }
            });
        }
        out
    }

    /// Parallel [`Dictionary::bulk_load`]: partitions `pairs` by shard and
    /// rebuilds every shard concurrently, each from coins derived as a pure
    /// function of `(seed, shard index)`. Bit-identical to the sequential
    /// trait method for the same `(contents, seed, S)`.
    ///
    /// A rebuild replaces a shard's state wholesale, so every shard that
    /// loads successfully — quarantined or not — returns to service; a shard
    /// whose rebuild panics is (re-)quarantined.
    pub fn bulk_load_parallel(
        &mut self,
        pairs: impl IntoIterator<Item = KeyValue<D::Key, D::Value>>,
        seed: u64,
    ) {
        let parts = self.partition_pairs(pairs);
        let quarantine = &self.quarantine;
        thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(parts)
                .enumerate()
                .map(|(i, (shard, part))| {
                    (
                        i,
                        s.spawn(move || shard.bulk_load(part, derive_seed(seed, i))),
                    )
                })
                .collect();
            for (i, handle) in handles {
                match handle.join() {
                    Ok(()) => quarantine.restore(i),
                    Err(payload) => quarantine.put_down(i, panic_message(payload.as_ref())),
                }
            }
        });
    }
}

impl<D: Dictionary> Dictionary for ShardedDict<D>
where
    D::Key: Hash,
{
    type Key = D::Key;
    type Value = D::Value;

    /// Sums the *serving* shards; a quarantined shard's keys read as absent
    /// on the infallible surface (see the module docs on degradation).
    fn len(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.quarantine.is_down(*i))
            .map(|(_, s)| s.len())
            .sum()
    }

    /// Writes routed to a quarantined shard are dropped (returning `None`);
    /// [`ShardedDict::try_insert`] is the refusing, typed form.
    fn insert(&mut self, key: D::Key, value: D::Value) -> Option<D::Value> {
        let shard = self.router.route(&key);
        if self.quarantine.is_down(shard) {
            return None;
        }
        self.shards[shard].insert(key, value)
    }

    /// Removes routed to a quarantined shard are dropped (returning `None`);
    /// [`ShardedDict::try_remove`] is the refusing, typed form.
    fn remove(&mut self, key: &D::Key) -> Option<D::Value> {
        let shard = self.router.route(key);
        if self.quarantine.is_down(shard) {
            return None;
        }
        self.shards[shard].remove(key)
    }

    /// Keys on a quarantined shard read as absent;
    /// [`ShardedDict::try_get`] is the refusing, typed form.
    fn get_ref(&self, key: &D::Key) -> Option<&D::Value> {
        let shard = self.router.route(key);
        if self.quarantine.is_down(shard) {
            return None;
        }
        self.shards[shard].get_ref(key)
    }

    /// Merges the *serving* shards' lazy range iterators into one ascending
    /// stream — allocation-free after the iterator is constructed, and
    /// snapshot consistent (the `&self` borrow excludes writers for the
    /// scan's whole lifetime). Quarantined shards' keys are omitted.
    fn range_iter<R: RangeBounds<D::Key>>(
        &self,
        range: R,
    ) -> impl Iterator<Item = (&D::Key, &D::Value)> {
        let (start, end) = cloned_bounds(&range);
        let quarantine = &self.quarantine;
        KWayMerge::new(
            self.shards
                .iter()
                .enumerate()
                .filter(move |(i, _)| !quarantine.is_down(*i))
                .map(move |(_, s)| s.range_iter((start.clone(), end.clone()))),
            |a: &(&D::Key, &D::Value), b: &(&D::Key, &D::Value)| a.0.cmp(b.0),
        )
    }

    fn successor(&self, key: &D::Key) -> Option<KeyValue<D::Key, D::Value>> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.quarantine.is_down(*i))
            .filter_map(|(_, s)| s.successor(key))
            .min_by(|a, b| a.0.cmp(&b.0))
    }

    fn predecessor(&self, key: &D::Key) -> Option<KeyValue<D::Key, D::Value>> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.quarantine.is_down(*i))
            .filter_map(|(_, s)| s.predecessor(key))
            .max_by(|a, b| a.0.cmp(&b.0))
    }

    /// Partitions `pairs` by shard and bulk-loads each shard with coins
    /// derived from `(seed, shard index)` — the layout becomes a pure
    /// function of `(contents, seed, S)`, independent of arrival order and
    /// of everything the structure held before.
    /// [`ShardedDict::bulk_load_parallel`] is the multi-threaded form and
    /// produces bit-identical shards.
    ///
    /// A rebuild replaces each shard's state wholesale, so every shard that
    /// loads successfully returns to service; a shard whose rebuild panics
    /// is (re-)quarantined and the others still load.
    fn bulk_load(
        &mut self,
        pairs: impl IntoIterator<Item = KeyValue<D::Key, D::Value>>,
        seed: u64,
    ) {
        let parts = self.partition_pairs(pairs);
        for (i, (shard, part)) in self.shards.iter_mut().zip(parts).enumerate() {
            match catch_unwind(AssertUnwindSafe(|| {
                shard.bulk_load(part, derive_seed(seed, i))
            })) {
                Ok(()) => self.quarantine.restore(i),
                Err(payload) => self.quarantine.put_down(i, panic_message(payload.as_ref())),
            }
        }
    }

    /// Routes each shard's subsequence of the batch through its engine's
    /// group-commit batch path (the inline form;
    /// [`ShardedDict::multi_apply`] is the thread-parallel twin and
    /// produces bit-identical shards).
    fn apply_batch(&mut self, ops: Vec<BatchOp<D::Key, D::Value>>) -> usize {
        let parts = self.partition_ops(ops);
        let quarantine = &self.quarantine;
        self.shards
            .iter_mut()
            .zip(parts)
            .enumerate()
            .map(|(i, (shard, part))| {
                if part.is_empty() || quarantine.is_down(i) {
                    return 0;
                }
                match catch_unwind(AssertUnwindSafe(|| shard.apply_batch(part))) {
                    Ok(hits) => hits,
                    Err(payload) => {
                        quarantine.put_down(i, panic_message(payload.as_ref()));
                        0
                    }
                }
            })
            .sum()
    }

    fn get_many(&self, keys: &[D::Key]) -> Vec<Option<D::Value>> {
        let mut parts: Vec<Vec<usize>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, k) in keys.iter().enumerate() {
            parts[self.router.route(k)].push(i);
        }
        let mut out: Vec<Option<D::Value>> = (0..keys.len()).map(|_| None).collect();
        for (shard_idx, (shard, part)) in self.shards.iter().zip(&parts).enumerate() {
            if part.is_empty() || self.quarantine.is_down(shard_idx) {
                continue;
            }
            let probe: Vec<D::Key> = part.iter().map(|&i| keys[i].clone()).collect();
            for (&i, v) in part.iter().zip(shard.get_many(&probe)) {
                out[i] = v;
            }
        }
        out
    }
}

impl<D: Dictionary + Instrumented> ShardedDict<D>
where
    D::Key: Hash,
{
    /// Aggregated block-transfer totals across every shard's tracer.
    pub fn io_stats(&self) -> IoStats {
        self.shards
            .iter()
            .map(Instrumented::io_stats)
            .fold(IoStats::default(), |acc, s| IoStats {
                reads: acc.reads + s.reads,
                writes: acc.writes + s.writes,
                accesses: acc.accesses + s.accesses,
            })
    }

    /// Aggregated operation totals across every shard's counter ledger.
    pub fn op_counters(&self) -> OpCounters {
        let mut total = OpCounters::new();
        for shard in &self.shards {
            total.absorb(&shard.op_counters());
        }
        total
    }
}

/// Compares merge items by key; exposed for callers that build their own
/// [`KWayMerge`] over shard iterators.
pub fn by_key<K: Ord, V>(a: &(&K, &V), b: &(&K, &V)) -> Ordering {
    a.0.cmp(b.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A trivial shard engine for exercising the service layer in
    /// isolation from the real engines (those are covered by the root
    /// integration batteries).
    #[derive(Debug, Default, Clone)]
    struct MapDict {
        map: BTreeMap<u64, u64>,
        loads: usize,
        last_seed: u64,
    }

    impl Dictionary for MapDict {
        type Key = u64;
        type Value = u64;

        fn len(&self) -> usize {
            self.map.len()
        }

        fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
            self.map.insert(key, value)
        }

        fn remove(&mut self, key: &u64) -> Option<u64> {
            self.map.remove(key)
        }

        fn get_ref(&self, key: &u64) -> Option<&u64> {
            self.map.get(key)
        }

        fn range_iter<R: RangeBounds<u64>>(&self, range: R) -> impl Iterator<Item = (&u64, &u64)> {
            // The workspace's engines treat inverted ranges as empty;
            // BTreeMap::range panics on them, so normalise first.
            use std::ops::Bound;
            let (s, e) = cloned_bounds(&range);
            let inverted = match (&s, &e) {
                (Bound::Included(a), Bound::Included(b)) => a > b,
                (Bound::Included(a), Bound::Excluded(b))
                | (Bound::Excluded(a), Bound::Included(b))
                | (Bound::Excluded(a), Bound::Excluded(b)) => a >= b,
                _ => false,
            };
            let bounds = if inverted {
                (Bound::Excluded(u64::MAX), Bound::Unbounded)
            } else {
                (s, e)
            };
            self.map.range(bounds)
        }

        fn successor(&self, key: &u64) -> Option<(u64, u64)> {
            self.map.range(*key..).next().map(|(k, v)| (*k, *v))
        }

        fn predecessor(&self, key: &u64) -> Option<(u64, u64)> {
            self.map.range(..=*key).next_back().map(|(k, v)| (*k, *v))
        }

        fn bulk_load(&mut self, pairs: impl IntoIterator<Item = (u64, u64)>, seed: u64) {
            self.map = pairs.into_iter().collect();
            self.loads += 1;
            self.last_seed = seed;
        }
    }

    impl Instrumented for MapDict {
        fn io_stats(&self) -> IoStats {
            IoStats {
                reads: self.map.len() as u64,
                writes: 1,
                accesses: 2,
            }
        }

        fn op_counters(&self) -> OpCounters {
            let mut c = OpCounters::new();
            c.inserts = self.map.len() as u64;
            c
        }
    }

    fn sharded(shards: usize) -> ShardedDict<MapDict> {
        ShardedDict::build_with(ShardRouter::new(0xFACADE, shards), |_, _| {
            MapDict::default()
        })
    }

    /// An engine with a seeded bug: touching the poison key panics — the
    /// stand-in for a shard-local invariant violation surfacing mid-batch.
    #[derive(Debug, Clone)]
    struct FlakyDict {
        inner: MapDict,
        poison: u64,
    }

    impl FlakyDict {
        fn new(poison: u64) -> Self {
            Self {
                inner: MapDict::default(),
                poison,
            }
        }
    }

    impl Dictionary for FlakyDict {
        type Key = u64;
        type Value = u64;

        fn len(&self) -> usize {
            self.inner.len()
        }

        fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
            if key == self.poison {
                panic!("engine bug: poison key {key}");
            }
            self.inner.insert(key, value)
        }

        fn remove(&mut self, key: &u64) -> Option<u64> {
            self.inner.remove(key)
        }

        fn get_ref(&self, key: &u64) -> Option<&u64> {
            if *key == self.poison {
                panic!("engine bug: poison probe {key}");
            }
            self.inner.get_ref(key)
        }

        fn range_iter<R: RangeBounds<u64>>(&self, range: R) -> impl Iterator<Item = (&u64, &u64)> {
            self.inner.range_iter(range)
        }

        fn successor(&self, key: &u64) -> Option<(u64, u64)> {
            self.inner.successor(key)
        }

        fn predecessor(&self, key: &u64) -> Option<(u64, u64)> {
            self.inner.predecessor(key)
        }

        fn bulk_load(&mut self, pairs: impl IntoIterator<Item = (u64, u64)>, seed: u64) {
            let pairs: Vec<(u64, u64)> = pairs.into_iter().collect();
            if pairs.iter().any(|(k, _)| *k == self.poison) {
                panic!("engine bug: poison key in bulk load");
            }
            self.inner.bulk_load(pairs, seed);
        }
    }

    const POISON: u64 = 666;

    fn flaky(shards: usize) -> ShardedDict<FlakyDict> {
        ShardedDict::build_with(ShardRouter::new(0xFACADE, shards), |_, _| {
            FlakyDict::new(POISON)
        })
    }

    #[test]
    fn a_worker_panic_quarantines_only_its_shard() {
        let mut d = flaky(4);
        d.set_parallel_threshold(0); // force worker threads
        let bad = d.shard_of(&POISON);
        let mut batch: Vec<(u64, u64)> = (0..400u64).map(|k| (k, k + 1)).collect();
        batch.push((POISON, 0));
        d.multi_put(batch);

        assert_eq!(d.degraded_count(), 1);
        match d.shard_status(bad) {
            Some(ShardError::Degraded { shard, reason }) => {
                assert_eq!(shard, bad);
                assert!(reason.contains("engine bug"), "{reason}");
            }
            None => panic!("poisoned shard must be quarantined"),
        }
        // The healthy shards keep serving; the degraded shard's keys read
        // as absent on the infallible surface.
        for k in 0..400u64 {
            if d.shard_of(&k) == bad {
                assert_eq!(d.get(&k), None, "key {k}");
            } else {
                assert_eq!(d.get(&k), Some(k + 1), "key {k}");
            }
        }
        // …and as a typed error on the fallible one.
        match d.try_get(&POISON) {
            Err(ShardError::Degraded { shard, .. }) => assert_eq!(shard, bad),
            other => panic!("expected Degraded, got {other:?}"),
        }
        // Aggregates quantify over serving shards only.
        let healthy: Vec<u64> = (0..400u64).filter(|k| d.shard_of(k) != bad).collect();
        assert_eq!(d.len(), healthy.len());
        let scanned: Vec<u64> = d.range_iter(..).map(|(k, _)| *k).collect();
        assert_eq!(scanned, healthy);
    }

    #[test]
    fn an_inline_batch_panic_is_contained_too() {
        let mut d = flaky(4); // default threshold keeps this batch inline
        let bad = d.shard_of(&POISON);
        d.multi_put(vec![(1, 10), (POISON, 0), (2, 20)]);
        assert_eq!(d.degraded_count(), 1);
        assert!(d.shard_status(bad).is_some());
        for (k, v) in [(1u64, 10u64), (2, 20)] {
            if d.shard_of(&k) != bad {
                assert_eq!(d.get(&k), Some(v));
            }
        }
    }

    #[test]
    fn a_reader_panic_degrades_its_probes_to_none() {
        let mut d = flaky(4);
        d.multi_put((0..100u64).map(|k| (k, k * 2)));
        assert_eq!(d.degraded_count(), 0);
        d.set_parallel_threshold(0);
        let bad = d.shard_of(&POISON);
        let keys: Vec<u64> = vec![1, 2, POISON, 3];
        let got = d.multi_get(&keys);
        assert_eq!(d.degraded_count(), 1);
        for (k, v) in keys.iter().zip(got) {
            if d.shard_of(k) == bad {
                assert_eq!(v, None, "probe {k} rode the panicked worker");
            } else {
                assert_eq!(v, Some(k * 2), "probe {k} on a healthy shard");
            }
        }
    }

    #[test]
    fn bulk_load_readmits_a_quarantined_shard() {
        let mut d = flaky(4);
        d.set_parallel_threshold(0);
        d.multi_put(vec![(POISON, 0)]);
        assert_eq!(d.degraded_count(), 1);
        // A wholesale rebuild with clean contents re-validates every shard.
        d.bulk_load((0..100u64).map(|k| (k, k)), 9);
        assert_eq!(d.degraded_count(), 0);
        assert_eq!(d.len(), 100);
        // The parallel form readmits the same way.
        d.multi_put(vec![(POISON, 0)]);
        assert_eq!(d.degraded_count(), 1);
        d.bulk_load_parallel((0..100u64).map(|k| (k, k)), 9);
        assert_eq!(d.degraded_count(), 0);
    }

    #[test]
    fn manual_quarantine_refuses_typed_and_restore_readmits() {
        let mut d = sharded(3);
        d.multi_put((0..30u64).map(|k| (k, k)));
        d.quarantine_shard(1, "storage: checksum mismatch at block 7");
        let k = (0..30u64)
            .find(|k| d.shard_of(k) == 1)
            .expect("some key routes to shard 1");
        let err = d
            .try_insert(k, 99)
            .expect_err("quarantined shard must refuse");
        assert_eq!(
            err,
            ShardError::Degraded {
                shard: 1,
                reason: "storage: checksum mismatch at block 7".into()
            }
        );
        assert_eq!(
            err.to_string(),
            "shard 1 is quarantined: storage: checksum mismatch at block 7"
        );
        assert!(d.try_get(&k).is_err());
        assert!(d.try_remove(&k).is_err());
        // The infallible surface drops instead of refusing.
        assert_eq!(d.insert(k, 99), None);
        assert_eq!(d.get(&k), None);
        d.restore_shard(1);
        assert_eq!(d.degraded_count(), 0);
        // The dropped write really was dropped; the pre-quarantine value
        // survives untouched.
        assert_eq!(d.get(&k), Some(k));
        assert_eq!(d.try_insert(k, 7).expect("restored shard serves"), Some(k));
    }

    #[test]
    fn try_navigation_refuses_when_a_quarantined_shard_could_answer() {
        let mut d = sharded(4);
        d.multi_put((0..400u64).map(|k| (k, k * 10)));
        // Healthy service: the fallible surface agrees with the infallible
        // one everywhere.
        for k in [0u64, 7, 199, 399, 400, 1_000] {
            assert_eq!(d.try_successor(&k).expect("healthy"), d.successor(&k));
            assert_eq!(d.try_predecessor(&k).expect("healthy"), d.predecessor(&k));
        }
        d.quarantine_shard(2, "injected: scrub failure");
        let expected = ShardError::Degraded {
            shard: 2,
            reason: "injected: scrub failure".into(),
        };
        // An exact hit on a healthy shard is provably complete — keys live
        // on exactly one shard, and nothing can be strictly closer to k
        // than k itself.
        let healthy_key = (0..400u64)
            .find(|k| d.shard_of(k) != 2)
            .expect("some key routes to a healthy shard");
        assert_eq!(
            d.try_successor(&healthy_key).expect("exact hit is safe"),
            Some((healthy_key, healthy_key * 10))
        );
        assert_eq!(
            d.try_predecessor(&healthy_key).expect("exact hit is safe"),
            Some((healthy_key, healthy_key * 10))
        );
        // A probe whose exact key lives on the down shard can't produce an
        // exact hit, so it must refuse rather than return the silently
        // wrong neighbour the infallible surface yields.
        let down_key = (0..400u64)
            .find(|k| d.shard_of(k) == 2)
            .expect("some key routes to shard 2");
        assert_eq!(d.try_successor(&down_key).expect_err("refuses"), expected);
        assert_eq!(d.try_predecessor(&down_key).expect_err("refuses"), expected);
        // Probes past both ends miss every shard — the down shard could
        // still own the answer from the probe's perspective, so refuse.
        assert_eq!(d.try_successor(&10_000).expect_err("refuses"), expected);
        assert_eq!(d.try_predecessor(&10_000), Err(expected.clone()));
        // Restoring through a shared reference re-admits the shard: the
        // ledger is interior-mutable, symmetric with quarantine_shard.
        let shared: &ShardedDict<MapDict> = &d;
        shared.restore_shard(2);
        assert_eq!(
            d.try_successor(&down_key).expect("healthy again"),
            Some((down_key, down_key * 10))
        );
        assert_eq!(
            d.try_predecessor(&down_key).expect("healthy again"),
            Some((down_key, down_key * 10))
        );
    }

    #[test]
    fn a_cloned_service_carries_the_quarantine_ledger() {
        let mut d = flaky(4);
        d.set_parallel_threshold(0);
        d.multi_put(vec![(POISON, 0)]);
        let cloned = d.clone();
        assert_eq!(cloned.degraded_count(), 1);
        assert_eq!(
            cloned.shard_status(d.shard_of(&POISON)),
            d.shard_status(d.shard_of(&POISON))
        );
    }

    #[test]
    fn sharded_dict_is_send_and_sync() {
        // Compile-time audit: the whole point of the service layer.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedDict<MapDict>>();
    }

    #[test]
    fn single_key_operations_match_a_flat_map() {
        let mut d = sharded(5);
        let mut oracle = BTreeMap::new();
        for i in 0..2_000u64 {
            let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 512;
            assert_eq!(d.insert(k, i), oracle.insert(k, i), "insert {k}");
        }
        assert_eq!(d.len(), oracle.len());
        for k in 0..512u64 {
            assert_eq!(d.get_ref(&k), oracle.get(&k), "get {k}");
            assert_eq!(
                d.successor(&k),
                oracle.range(k..).next().map(|(a, b)| (*a, *b)),
                "succ {k}"
            );
            assert_eq!(
                d.predecessor(&k),
                oracle.range(..=k).next_back().map(|(a, b)| (*a, *b)),
                "pred {k}"
            );
        }
        for k in (0..512u64).step_by(3) {
            assert_eq!(d.remove(&k), oracle.remove(&k), "remove {k}");
        }
        assert_eq!(
            d.to_sorted_vec(),
            oracle.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_iter_merges_across_shards_in_order() {
        let mut d = sharded(7);
        for k in 0..1_000u64 {
            d.insert(k, k * 2);
        }
        let all: Vec<u64> = d.range_iter(..).map(|(k, _)| *k).collect();
        assert_eq!(all, (0..1_000).collect::<Vec<_>>());
        let window: Vec<u64> = d.range_iter(250..=260).map(|(k, _)| *k).collect();
        assert_eq!(window, (250..=260).collect::<Vec<_>>());
        // Inverted bounds yield an empty scan, matching the engines'
        // uniform contract.
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 600..300;
        assert_eq!(d.range_iter(inverted).count(), 0);
    }

    #[test]
    fn batched_ops_match_sequential_ops_bit_for_bit() {
        // Same stream, three splits: per-op, small batches threaded, one
        // giant batch. Shard states must be identical — the per-shard
        // subsequence is invariant under batch partitioning.
        let stream: Vec<(u64, u64)> = (0..3_000u64)
            .map(|i| (i.wrapping_mul(2_654_435_761) % 997, i))
            .collect();

        let mut per_op = sharded(6);
        for (k, v) in &stream {
            per_op.insert(*k, *v);
        }

        let mut batched = sharded(6);
        batched.set_parallel_threshold(0); // force worker threads
        for chunk in stream.chunks(113) {
            batched.multi_put(chunk.to_vec());
        }

        let mut single_batch = sharded(6);
        single_batch.multi_put(stream.clone());

        for i in 0..6 {
            assert_eq!(per_op.shards()[i].map, batched.shards()[i].map, "shard {i}");
            assert_eq!(
                per_op.shards()[i].map,
                single_batch.shards()[i].map,
                "shard {i}"
            );
        }
    }

    #[test]
    fn multi_get_returns_values_in_input_order() {
        let mut d = sharded(4);
        d.multi_put((0..500u64).map(|k| (k, k + 1)));
        let keys: Vec<u64> = vec![499, 3, 1_000, 0, 77, 2_000];
        let expected: Vec<Option<u64>> = vec![Some(500), Some(4), None, Some(1), Some(78), None];
        assert_eq!(d.multi_get(&keys), expected);
        // Threaded path agrees with the inline path.
        let mut threaded = d.clone();
        threaded.set_parallel_threshold(0);
        assert_eq!(threaded.multi_get(&keys), expected);
    }

    #[test]
    fn multi_remove_counts_hits() {
        let mut d = sharded(3);
        d.multi_put((0..100u64).map(|k| (k, k)));
        assert_eq!(d.multi_remove(vec![1, 2, 3, 500]), 3);
        assert_eq!(d.len(), 97);
        d.set_parallel_threshold(0);
        assert_eq!(d.multi_remove((0..200u64).collect::<Vec<_>>()), 97);
        assert!(d.is_empty());
    }

    #[test]
    fn bulk_load_partitions_and_derives_per_shard_seeds() {
        let mut d = sharded(4);
        d.insert(424242, 1); // must be discarded by the load
        d.bulk_load((0..400u64).map(|k| (k, k)), 0xB01D);
        assert_eq!(d.len(), 400);
        assert_eq!(d.get(&424242), None);
        let seeds: Vec<u64> = d.shards().iter().map(|s| s.last_seed).collect();
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(s, derive_seed(0xB01D, i), "shard {i} seed");
            assert_eq!(d.shards()[i].loads, 1);
        }

        // The parallel form produces bit-identical shards.
        let mut p = sharded(4);
        p.bulk_load_parallel((0..400u64).rev().map(|k| (k, k)), 0xB01D);
        for i in 0..4 {
            assert_eq!(d.shards()[i].map, p.shards()[i].map, "shard {i}");
            assert_eq!(d.shards()[i].last_seed, p.shards()[i].last_seed);
        }
    }

    #[test]
    fn instrumentation_rolls_up_across_shards() {
        let mut d = sharded(3);
        d.multi_put((0..90u64).map(|k| (k, k)));
        let io = d.io_stats();
        assert_eq!(io.reads, 90);
        assert_eq!(io.writes, 3);
        assert_eq!(io.accesses, 6);
        assert_eq!(d.op_counters().inserts, 90);
    }

    #[test]
    fn concurrent_readers_share_the_service() {
        let mut d = sharded(4);
        d.multi_put((0..2_000u64).map(|k| (k, k * 3)));
        thread::scope(|s| {
            for t in 0..4 {
                let d = &d;
                s.spawn(move || {
                    let keys: Vec<u64> = (0..500u64).map(|i| i * 4 + t).collect();
                    let got = d.multi_get(&keys);
                    for (k, v) in keys.iter().zip(got) {
                        assert_eq!(v, Some(k * 3));
                    }
                    assert_eq!(d.range_iter(100..200).count(), 100);
                });
            }
        });
    }
}
