//! Sharded concurrent dictionary service.
//!
//! The paper proves that a *single* dictionary's memory representation can
//! be a pure function of its contents and secret coins. A deployment that
//! serves heavy traffic does not run a single dictionary — it hash-partitions
//! the key space across `S` independent shards and works on them from many
//! threads. This crate shows (and the workspace's test battery verifies)
//! that the guarantee survives that scale-out: a [`ShardedDict`]'s complete
//! observable state — which shard each key lives on, plus every shard's
//! layout — remains a pure function of `(contents, seed, S)`.
//!
//! Three properties make that work, and each is load-bearing:
//!
//! 1. **Seeded routing** ([`router::ShardRouter`]): shard assignment derives
//!    from `(key, seed, S)` only — never from load, arrival order, or any
//!    other history-dependent signal.
//! 2. **Independent per-shard coins**: every shard's engine is seeded by a
//!    pure function of the root seed and the shard index
//!    ([`router::ShardRouter::shard_seed`]), so no randomness is shared and
//!    no cross-shard draw order exists for thread scheduling to perturb.
//! 3. **Order-preserving batching**: the batched operations
//!    ([`ShardedDict::multi_put`], [`ShardedDict::multi_get`],
//!    [`ShardedDict::multi_remove`]) group a batch by shard *preserving the
//!    batch's relative order within each shard*. A shard therefore observes
//!    exactly the subsequence of operations routed to it, regardless of how
//!    the caller split the stream into batches or how many worker threads
//!    executed them — so the final layout is bit-identical across every
//!    split and schedule (`tests/shard_history_independence.rs` and the
//!    determinism battery pin this).
//!
//! Batches execute on scoped worker threads (one per shard holding work,
//! [`std::thread::scope`]); small batches stay inline under a configurable
//! threshold. Global range scans k-way-merge the shards' lazy iterators
//! without allocating ([`merge::KWayMerge`]). Per-shard instrumentation
//! rolls up through the [`Instrumented`] trait.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod merge;
pub mod router;

use std::cmp::Ordering;
use std::hash::Hash;
use std::ops::RangeBounds;
use std::thread;

use hi_common::batch::BatchOp;
use hi_common::counters::OpCounters;
use hi_common::traits::{cloned_bounds, Dictionary, KeyValue};
use io_sim::IoStats;

pub use merge::KWayMerge;
pub use router::{derive_seed, SeededHasher, ShardRouter, MAX_SHARDS};

/// Batches smaller than this run inline instead of spawning worker threads;
/// the result is identical either way, so the threshold is purely a
/// throughput knob (and the tests drive it to 0 to force the threaded path).
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1024;

/// Read access to the per-engine instrumentation ledgers, so a sharded
/// service can report one aggregated [`IoStats`] / [`OpCounters`] view.
///
/// Implemented by the workspace's `DynDict` facade; any engine wrapper that
/// carries a tracer and a counter ledger can join.
pub trait Instrumented {
    /// Block-transfer totals recorded by the engine's tracer.
    fn io_stats(&self) -> IoStats;
    /// Operation totals recorded by the engine's counter ledger.
    fn op_counters(&self) -> OpCounters;
}

/// A dictionary hash-partitioned across `S` independent shards.
///
/// Implements the whole [`Dictionary`] surface (single-key operations route
/// through the seeded router; ordered navigation and range scans merge
/// across shards), and adds the batched, thread-parallel operations a
/// service front-end actually calls.
#[derive(Debug, Clone)]
pub struct ShardedDict<D> {
    router: ShardRouter,
    shards: Vec<D>,
    parallel_threshold: usize,
}

impl<D: Dictionary> ShardedDict<D>
where
    D::Key: Hash,
{
    /// Wraps pre-built shards. `shards.len()` must match the router's count.
    pub fn from_shards(router: ShardRouter, shards: Vec<D>) -> Self {
        assert_eq!(
            shards.len(),
            router.shard_count(),
            "shard vector length must match the router's shard count"
        );
        Self {
            router,
            shards,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }

    /// Builds `router.shard_count()` shards by calling
    /// `build(index, derived_seed)` — the derived seed is
    /// [`ShardRouter::shard_seed`], so the whole structure's randomness
    /// stems from the router's root seed.
    pub fn build_with(router: ShardRouter, mut build: impl FnMut(usize, u64) -> D) -> Self {
        let shards = (0..router.shard_count())
            .map(|i| build(i, router.shard_seed(i)))
            .collect();
        Self::from_shards(router, shards)
    }

    /// The seeded router partitioning the key space.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in index order — read-only access for audits and layout
    /// fingerprinting (each shard's occupancy is part of the observable
    /// state the history-independence tests quantify over).
    pub fn shards(&self) -> &[D] {
        &self.shards
    }

    /// The shard `key` routes to.
    pub fn shard_of(&self, key: &D::Key) -> usize {
        self.router.route(key)
    }

    /// Batches at or above the returned size fan out to worker threads.
    pub fn parallel_threshold(&self) -> usize {
        self.parallel_threshold
    }

    /// Overrides the inline/threaded cut-over (0 forces threads for every
    /// non-empty batch — the determinism tests use this to prove scheduling
    /// is not a layout side channel).
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold;
    }

    /// Groups `pairs` by destination shard, preserving relative order.
    fn partition_pairs(
        &self,
        pairs: impl IntoIterator<Item = KeyValue<D::Key, D::Value>>,
    ) -> Vec<Vec<KeyValue<D::Key, D::Value>>> {
        let mut parts: Vec<Vec<KeyValue<D::Key, D::Value>>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (k, v) in pairs {
            parts[self.router.route(&k)].push((k, v));
        }
        parts
    }

    /// Groups batch operations by destination shard, preserving relative
    /// order (each shard observes exactly its subsequence of the stream).
    fn partition_ops(
        &self,
        ops: impl IntoIterator<Item = BatchOp<D::Key, D::Value>>,
    ) -> Vec<Vec<BatchOp<D::Key, D::Value>>> {
        let mut parts: Vec<Vec<BatchOp<D::Key, D::Value>>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for op in ops {
            parts[self.router.route(op.key())].push(op);
        }
        parts
    }
}

impl<D> ShardedDict<D>
where
    D: Dictionary + Send,
    D::Key: Hash + Send + Sync,
    D::Value: Send + Sync,
{
    /// Inserts every pair, batched per shard and executed on scoped worker
    /// threads (one per shard with work). Semantically identical to calling
    /// [`Dictionary::insert`] per pair in order: pairs routed to the same
    /// shard are applied in their batch order, so later duplicates win, and
    /// the resulting layout is bit-identical no matter how the caller split
    /// the stream into batches — per-shard subsequences are invariant under
    /// batch partitioning.
    pub fn multi_put(&mut self, pairs: impl IntoIterator<Item = KeyValue<D::Key, D::Value>>) {
        self.multi_apply(pairs.into_iter().map(|(k, v)| BatchOp::Put(k, v)));
    }

    /// Batched, order-preserving parallel form of [`Dictionary::extend`].
    ///
    /// This inherent method shadows the trait's default when called on a
    /// concrete `ShardedDict`; both produce identical shard states.
    pub fn extend(&mut self, pairs: impl IntoIterator<Item = KeyValue<D::Key, D::Value>>) {
        self.multi_put(pairs);
    }

    /// Removes every key in `keys`, batched per shard on scoped worker
    /// threads. Returns how many were present.
    pub fn multi_remove(&mut self, keys: impl IntoIterator<Item = D::Key>) -> usize {
        self.multi_apply(keys.into_iter().map(BatchOp::Remove))
    }

    /// Applies a mixed batch of keyed operations: groups the stream per
    /// shard preserving relative order, and routes each shard's subsequence
    /// through its engine's group-commit [`Dictionary::apply_batch`] — one
    /// descent per operation and one merge-rebalance per touched window,
    /// executed on scoped worker threads for large batches. Returns how
    /// many removes found their key.
    pub fn multi_apply(
        &mut self,
        ops: impl IntoIterator<Item = BatchOp<D::Key, D::Value>>,
    ) -> usize {
        // Partition while consuming the stream: only the per-shard
        // subsequences are ever buffered.
        let parts = self.partition_ops(ops);
        let total: usize = parts.iter().map(Vec::len).sum();
        if total < self.parallel_threshold.max(1) || self.shards.len() == 1 {
            self.shards
                .iter_mut()
                .zip(parts)
                .map(|(shard, part)| shard.apply_batch(part))
                .sum()
        } else {
            thread::scope(|s| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(parts)
                    .filter(|(_, part)| !part.is_empty())
                    .map(|(shard, part)| s.spawn(move || shard.apply_batch(part)))
                    .collect();
                handles
                    .into_iter()
                    // hi-lint: allow(panic-surface): join fails only if the worker panicked; re-raising that panic is the intended behavior
                    .map(|h| h.join().expect("shard worker panicked"))
                    .sum()
            })
        }
    }

    /// Looks up every key of `keys`, batched per shard on scoped worker
    /// threads, returning the values in input order. Each shard receives
    /// its probes as one [`Dictionary::get_many`] call, which sorts them and
    /// reuses a descent finger across consecutive keys instead of
    /// restarting at the root per probe; the original order is restored by
    /// scattering through the recorded index permutation. Read-only: shards
    /// are shared (`&self`), so callers can run `multi_get` from many
    /// threads concurrently.
    pub fn multi_get(&self, keys: &[D::Key]) -> Vec<Option<D::Value>>
    where
        D: Sync,
    {
        let mut parts: Vec<Vec<usize>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, k) in keys.iter().enumerate() {
            parts[self.router.route(k)].push(i);
        }
        let mut out: Vec<Option<D::Value>> = (0..keys.len()).map(|_| None).collect();
        let probe_keys =
            |part: &[usize]| -> Vec<D::Key> { part.iter().map(|&i| keys[i].clone()).collect() };
        let probe_keys = &probe_keys;
        if keys.len() < self.parallel_threshold.max(1) || self.shards.len() == 1 {
            for (shard, part) in self.shards.iter().zip(&parts) {
                if part.is_empty() {
                    continue;
                }
                let values = shard.get_many(&probe_keys(part));
                for (&i, v) in part.iter().zip(values) {
                    out[i] = v;
                }
            }
        } else {
            thread::scope(|s| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .zip(&parts)
                    .filter(|(_, part)| !part.is_empty())
                    .map(|(shard, part)| s.spawn(move || shard.get_many(&probe_keys(part))))
                    .collect();
                // Scatter each worker's results straight into `out` — no
                // intermediate flattened buffer.
                for (handle, part) in handles
                    .into_iter()
                    .zip(parts.iter().filter(|p| !p.is_empty()))
                {
                    for (&i, v) in part
                        .iter()
                        // hi-lint: allow(panic-surface): join fails only if the worker panicked; re-raising that panic is the intended behavior
                        .zip(handle.join().expect("shard worker panicked"))
                    {
                        out[i] = v;
                    }
                }
            });
        }
        out
    }

    /// Parallel [`Dictionary::bulk_load`]: partitions `pairs` by shard and
    /// rebuilds every shard concurrently, each from coins derived as a pure
    /// function of `(seed, shard index)`. Bit-identical to the sequential
    /// trait method for the same `(contents, seed, S)`.
    pub fn bulk_load_parallel(
        &mut self,
        pairs: impl IntoIterator<Item = KeyValue<D::Key, D::Value>>,
        seed: u64,
    ) {
        let parts = self.partition_pairs(pairs);
        thread::scope(|s| {
            for (i, (shard, part)) in self.shards.iter_mut().zip(parts).enumerate() {
                s.spawn(move || shard.bulk_load(part, derive_seed(seed, i)));
            }
        });
    }
}

impl<D: Dictionary> Dictionary for ShardedDict<D>
where
    D::Key: Hash,
{
    type Key = D::Key;
    type Value = D::Value;

    fn len(&self) -> usize {
        self.shards.iter().map(Dictionary::len).sum()
    }

    fn insert(&mut self, key: D::Key, value: D::Value) -> Option<D::Value> {
        let shard = self.router.route(&key);
        self.shards[shard].insert(key, value)
    }

    fn remove(&mut self, key: &D::Key) -> Option<D::Value> {
        self.shards[self.router.route(key)].remove(key)
    }

    fn get_ref(&self, key: &D::Key) -> Option<&D::Value> {
        self.shards[self.router.route(key)].get_ref(key)
    }

    /// Merges the shards' lazy range iterators into one ascending stream —
    /// allocation-free after the iterator is constructed, and snapshot
    /// consistent (the `&self` borrow excludes writers for the scan's whole
    /// lifetime).
    fn range_iter<R: RangeBounds<D::Key>>(
        &self,
        range: R,
    ) -> impl Iterator<Item = (&D::Key, &D::Value)> {
        let (start, end) = cloned_bounds(&range);
        KWayMerge::new(
            self.shards
                .iter()
                .map(move |s| s.range_iter((start.clone(), end.clone()))),
            |a: &(&D::Key, &D::Value), b: &(&D::Key, &D::Value)| a.0.cmp(b.0),
        )
    }

    fn successor(&self, key: &D::Key) -> Option<KeyValue<D::Key, D::Value>> {
        self.shards
            .iter()
            .filter_map(|s| s.successor(key))
            .min_by(|a, b| a.0.cmp(&b.0))
    }

    fn predecessor(&self, key: &D::Key) -> Option<KeyValue<D::Key, D::Value>> {
        self.shards
            .iter()
            .filter_map(|s| s.predecessor(key))
            .max_by(|a, b| a.0.cmp(&b.0))
    }

    /// Partitions `pairs` by shard and bulk-loads each shard with coins
    /// derived from `(seed, shard index)` — the layout becomes a pure
    /// function of `(contents, seed, S)`, independent of arrival order and
    /// of everything the structure held before.
    /// [`ShardedDict::bulk_load_parallel`] is the multi-threaded form and
    /// produces bit-identical shards.
    fn bulk_load(
        &mut self,
        pairs: impl IntoIterator<Item = KeyValue<D::Key, D::Value>>,
        seed: u64,
    ) {
        let parts = self.partition_pairs(pairs);
        for (i, (shard, part)) in self.shards.iter_mut().zip(parts).enumerate() {
            shard.bulk_load(part, derive_seed(seed, i));
        }
    }

    /// Routes each shard's subsequence of the batch through its engine's
    /// group-commit batch path (the inline form;
    /// [`ShardedDict::multi_apply`] is the thread-parallel twin and
    /// produces bit-identical shards).
    fn apply_batch(&mut self, ops: Vec<BatchOp<D::Key, D::Value>>) -> usize {
        let parts = self.partition_ops(ops);
        self.shards
            .iter_mut()
            .zip(parts)
            .map(|(shard, part)| shard.apply_batch(part))
            .sum()
    }

    fn get_many(&self, keys: &[D::Key]) -> Vec<Option<D::Value>> {
        let mut parts: Vec<Vec<usize>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, k) in keys.iter().enumerate() {
            parts[self.router.route(k)].push(i);
        }
        let mut out: Vec<Option<D::Value>> = (0..keys.len()).map(|_| None).collect();
        for (shard, part) in self.shards.iter().zip(&parts) {
            if part.is_empty() {
                continue;
            }
            let probe: Vec<D::Key> = part.iter().map(|&i| keys[i].clone()).collect();
            for (&i, v) in part.iter().zip(shard.get_many(&probe)) {
                out[i] = v;
            }
        }
        out
    }
}

impl<D: Dictionary + Instrumented> ShardedDict<D>
where
    D::Key: Hash,
{
    /// Aggregated block-transfer totals across every shard's tracer.
    pub fn io_stats(&self) -> IoStats {
        self.shards
            .iter()
            .map(Instrumented::io_stats)
            .fold(IoStats::default(), |acc, s| IoStats {
                reads: acc.reads + s.reads,
                writes: acc.writes + s.writes,
                accesses: acc.accesses + s.accesses,
            })
    }

    /// Aggregated operation totals across every shard's counter ledger.
    pub fn op_counters(&self) -> OpCounters {
        let mut total = OpCounters::new();
        for shard in &self.shards {
            total.absorb(&shard.op_counters());
        }
        total
    }
}

/// Compares merge items by key; exposed for callers that build their own
/// [`KWayMerge`] over shard iterators.
pub fn by_key<K: Ord, V>(a: &(&K, &V), b: &(&K, &V)) -> Ordering {
    a.0.cmp(b.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A trivial shard engine for exercising the service layer in
    /// isolation from the real engines (those are covered by the root
    /// integration batteries).
    #[derive(Debug, Default, Clone)]
    struct MapDict {
        map: BTreeMap<u64, u64>,
        loads: usize,
        last_seed: u64,
    }

    impl Dictionary for MapDict {
        type Key = u64;
        type Value = u64;

        fn len(&self) -> usize {
            self.map.len()
        }

        fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
            self.map.insert(key, value)
        }

        fn remove(&mut self, key: &u64) -> Option<u64> {
            self.map.remove(key)
        }

        fn get_ref(&self, key: &u64) -> Option<&u64> {
            self.map.get(key)
        }

        fn range_iter<R: RangeBounds<u64>>(&self, range: R) -> impl Iterator<Item = (&u64, &u64)> {
            // The workspace's engines treat inverted ranges as empty;
            // BTreeMap::range panics on them, so normalise first.
            use std::ops::Bound;
            let (s, e) = cloned_bounds(&range);
            let inverted = match (&s, &e) {
                (Bound::Included(a), Bound::Included(b)) => a > b,
                (Bound::Included(a), Bound::Excluded(b))
                | (Bound::Excluded(a), Bound::Included(b))
                | (Bound::Excluded(a), Bound::Excluded(b)) => a >= b,
                _ => false,
            };
            let bounds = if inverted {
                (Bound::Excluded(u64::MAX), Bound::Unbounded)
            } else {
                (s, e)
            };
            self.map.range(bounds)
        }

        fn successor(&self, key: &u64) -> Option<(u64, u64)> {
            self.map.range(*key..).next().map(|(k, v)| (*k, *v))
        }

        fn predecessor(&self, key: &u64) -> Option<(u64, u64)> {
            self.map.range(..=*key).next_back().map(|(k, v)| (*k, *v))
        }

        fn bulk_load(&mut self, pairs: impl IntoIterator<Item = (u64, u64)>, seed: u64) {
            self.map = pairs.into_iter().collect();
            self.loads += 1;
            self.last_seed = seed;
        }
    }

    impl Instrumented for MapDict {
        fn io_stats(&self) -> IoStats {
            IoStats {
                reads: self.map.len() as u64,
                writes: 1,
                accesses: 2,
            }
        }

        fn op_counters(&self) -> OpCounters {
            let mut c = OpCounters::new();
            c.inserts = self.map.len() as u64;
            c
        }
    }

    fn sharded(shards: usize) -> ShardedDict<MapDict> {
        ShardedDict::build_with(ShardRouter::new(0xFACADE, shards), |_, _| {
            MapDict::default()
        })
    }

    #[test]
    fn sharded_dict_is_send_and_sync() {
        // Compile-time audit: the whole point of the service layer.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedDict<MapDict>>();
    }

    #[test]
    fn single_key_operations_match_a_flat_map() {
        let mut d = sharded(5);
        let mut oracle = BTreeMap::new();
        for i in 0..2_000u64 {
            let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 512;
            assert_eq!(d.insert(k, i), oracle.insert(k, i), "insert {k}");
        }
        assert_eq!(d.len(), oracle.len());
        for k in 0..512u64 {
            assert_eq!(d.get_ref(&k), oracle.get(&k), "get {k}");
            assert_eq!(
                d.successor(&k),
                oracle.range(k..).next().map(|(a, b)| (*a, *b)),
                "succ {k}"
            );
            assert_eq!(
                d.predecessor(&k),
                oracle.range(..=k).next_back().map(|(a, b)| (*a, *b)),
                "pred {k}"
            );
        }
        for k in (0..512u64).step_by(3) {
            assert_eq!(d.remove(&k), oracle.remove(&k), "remove {k}");
        }
        assert_eq!(
            d.to_sorted_vec(),
            oracle.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_iter_merges_across_shards_in_order() {
        let mut d = sharded(7);
        for k in 0..1_000u64 {
            d.insert(k, k * 2);
        }
        let all: Vec<u64> = d.range_iter(..).map(|(k, _)| *k).collect();
        assert_eq!(all, (0..1_000).collect::<Vec<_>>());
        let window: Vec<u64> = d.range_iter(250..=260).map(|(k, _)| *k).collect();
        assert_eq!(window, (250..=260).collect::<Vec<_>>());
        // Inverted bounds yield an empty scan, matching the engines'
        // uniform contract.
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 600..300;
        assert_eq!(d.range_iter(inverted).count(), 0);
    }

    #[test]
    fn batched_ops_match_sequential_ops_bit_for_bit() {
        // Same stream, three splits: per-op, small batches threaded, one
        // giant batch. Shard states must be identical — the per-shard
        // subsequence is invariant under batch partitioning.
        let stream: Vec<(u64, u64)> = (0..3_000u64)
            .map(|i| (i.wrapping_mul(2_654_435_761) % 997, i))
            .collect();

        let mut per_op = sharded(6);
        for (k, v) in &stream {
            per_op.insert(*k, *v);
        }

        let mut batched = sharded(6);
        batched.set_parallel_threshold(0); // force worker threads
        for chunk in stream.chunks(113) {
            batched.multi_put(chunk.to_vec());
        }

        let mut single_batch = sharded(6);
        single_batch.multi_put(stream.clone());

        for i in 0..6 {
            assert_eq!(per_op.shards()[i].map, batched.shards()[i].map, "shard {i}");
            assert_eq!(
                per_op.shards()[i].map,
                single_batch.shards()[i].map,
                "shard {i}"
            );
        }
    }

    #[test]
    fn multi_get_returns_values_in_input_order() {
        let mut d = sharded(4);
        d.multi_put((0..500u64).map(|k| (k, k + 1)));
        let keys: Vec<u64> = vec![499, 3, 1_000, 0, 77, 2_000];
        let expected: Vec<Option<u64>> = vec![Some(500), Some(4), None, Some(1), Some(78), None];
        assert_eq!(d.multi_get(&keys), expected);
        // Threaded path agrees with the inline path.
        let mut threaded = d.clone();
        threaded.set_parallel_threshold(0);
        assert_eq!(threaded.multi_get(&keys), expected);
    }

    #[test]
    fn multi_remove_counts_hits() {
        let mut d = sharded(3);
        d.multi_put((0..100u64).map(|k| (k, k)));
        assert_eq!(d.multi_remove(vec![1, 2, 3, 500]), 3);
        assert_eq!(d.len(), 97);
        d.set_parallel_threshold(0);
        assert_eq!(d.multi_remove((0..200u64).collect::<Vec<_>>()), 97);
        assert!(d.is_empty());
    }

    #[test]
    fn bulk_load_partitions_and_derives_per_shard_seeds() {
        let mut d = sharded(4);
        d.insert(424242, 1); // must be discarded by the load
        d.bulk_load((0..400u64).map(|k| (k, k)), 0xB01D);
        assert_eq!(d.len(), 400);
        assert_eq!(d.get(&424242), None);
        let seeds: Vec<u64> = d.shards().iter().map(|s| s.last_seed).collect();
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(s, derive_seed(0xB01D, i), "shard {i} seed");
            assert_eq!(d.shards()[i].loads, 1);
        }

        // The parallel form produces bit-identical shards.
        let mut p = sharded(4);
        p.bulk_load_parallel((0..400u64).rev().map(|k| (k, k)), 0xB01D);
        for i in 0..4 {
            assert_eq!(d.shards()[i].map, p.shards()[i].map, "shard {i}");
            assert_eq!(d.shards()[i].last_seed, p.shards()[i].last_seed);
        }
    }

    #[test]
    fn instrumentation_rolls_up_across_shards() {
        let mut d = sharded(3);
        d.multi_put((0..90u64).map(|k| (k, k)));
        let io = d.io_stats();
        assert_eq!(io.reads, 90);
        assert_eq!(io.writes, 3);
        assert_eq!(io.accesses, 6);
        assert_eq!(d.op_counters().inserts, 90);
    }

    #[test]
    fn concurrent_readers_share_the_service() {
        let mut d = sharded(4);
        d.multi_put((0..2_000u64).map(|k| (k, k * 3)));
        thread::scope(|s| {
            for t in 0..4 {
                let d = &d;
                s.spawn(move || {
                    let keys: Vec<u64> = (0..500u64).map(|i| i * 4 + t).collect();
                    let got = d.multi_get(&keys);
                    for (k, v) in keys.iter().zip(got) {
                        assert_eq!(v, Some(k * 3));
                    }
                    assert_eq!(d.range_iter(100..200).count(), 100);
                });
            }
        });
    }
}
