//! The seeded, history-independent shard router.
//!
//! A sharded dictionary's *observable state* includes which shard every key
//! lives on. If shard assignment depended on anything other than the key
//! itself — arrival order, current shard load, a rebalancing heuristic —
//! the assignment would encode the operation history and break the
//! history-independence guarantee the per-shard engines work so hard to
//! provide. The router therefore computes the shard of a key as a **pure
//! function of `(key, seed, shard_count)`**: a seeded hash of the key's
//! bytes reduced onto the shard range. Same key, seed and shard count ⇒
//! same shard, always; different seeds ⇒ an (unpredictably) different
//! partition, modelling the deployment's secret coins exactly like the
//! per-engine layout randomness.
//!
//! The hash is a seeded FNV-1a over the key's [`Hash`] byte stream with a
//! splitmix64 finalizer, written out explicitly (instead of
//! `std::collections::hash_map::RandomState`) so the assignment is
//! reproducible across processes and platforms — a requirement for the
//! determinism regressions, and for any future replicated deployment where
//! two nodes must agree on the partition.

use std::hash::{Hash, Hasher};

/// Maximum number of shards a router (and the allocation-free k-way merge)
/// supports. 64 shards is far beyond the thread counts this workspace
/// targets while keeping the merge iterator's inline storage bounded.
pub const MAX_SHARDS: usize = 64;

/// A seeded FNV-1a hasher with a splitmix64 finalizer.
///
/// Multi-byte writes are folded through their little-endian encoding, so
/// the stream is platform independent (the default `Hasher` byte routing
/// would be endianness dependent for `write_u64` and friends).
#[derive(Debug, Clone)]
pub struct SeededHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// splitmix64: a full-avalanche 64-bit finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent 64-bit seed as a pure function of
/// `(seed, index)` — used for per-shard engine coins and per-shard
/// bulk-load coins, so every stream of randomness in a sharded structure
/// stems from one root seed without any cross-shard sharing.
pub fn derive_seed(seed: u64, index: usize) -> u64 {
    splitmix64(seed ^ splitmix64(0x5AD0_11E5 ^ index as u64))
}

impl SeededHasher {
    /// A hasher whose stream is keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            state: FNV_OFFSET ^ splitmix64(seed),
        }
    }

    #[inline]
    fn fold_byte(&mut self, byte: u8) {
        self.state ^= u64::from(byte);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }
}

impl Hasher for SeededHasher {
    #[inline]
    fn finish(&self) -> u64 {
        splitmix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.fold_byte(b);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold_byte(i);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        // Folded through u64 so 32- and 64-bit builds agree.
        self.write(&(i as u64).to_le_bytes());
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

/// Assigns keys to shards as a pure function of `(key, seed, shard_count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    seed: u64,
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards keyed by `seed`.
    ///
    /// # Panics
    ///
    /// If `shards` is zero or exceeds [`MAX_SHARDS`].
    pub fn new(seed: u64, shards: usize) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count {shards} outside 1..={MAX_SHARDS}"
        );
        Self { seed, shards }
    }

    /// The router's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of shards routed over.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard `key` lives on — stable across calls, processes and
    /// platforms for a fixed `(seed, shard_count)`.
    #[inline]
    pub fn route<K: Hash + ?Sized>(&self, key: &K) -> usize {
        let mut h = SeededHasher::new(self.seed);
        key.hash(&mut h);
        // Multiply-shift reduction: unbiased enough for shard counts ≤ 64
        // and cheaper than widening modulo reduction.
        (((u128::from(h.finish()) * self.shards as u128) >> 64) as u64) as usize
    }

    /// Derives the secret seed of shard `index` from the router seed.
    ///
    /// Pure function of `(seed, index)`, so a sharded structure's complete
    /// layout — router plus every per-shard engine — derives from the one
    /// root seed.
    pub fn shard_seed(&self, index: usize) -> u64 {
        derive_seed(self.seed, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r = ShardRouter::new(42, 7);
        for k in 0u64..10_000 {
            let s = r.route(&k);
            assert!(s < 7);
            assert_eq!(s, r.route(&k), "routing must be a pure function");
        }
    }

    #[test]
    fn routing_is_reasonably_balanced() {
        let r = ShardRouter::new(9, 8);
        let mut counts = [0usize; 8];
        let n = 80_000u64;
        for k in 0..n {
            counts[r.route(&k)] += 1;
        }
        let expected = n as usize / 8;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "shard {i} holds {c} of {n} keys — badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_partitions() {
        let a = ShardRouter::new(1, 8);
        let b = ShardRouter::new(2, 8);
        let moved = (0u64..1_000).filter(|k| a.route(k) != b.route(k)).count();
        assert!(moved > 500, "only {moved}/1000 keys moved across seeds");
    }

    #[test]
    fn string_keys_route_stably() {
        let r = ShardRouter::new(77, 5);
        assert_eq!(r.route("alpha"), r.route("alpha"));
        assert_eq!(r.route(&"alpha".to_string()), r.route(&"alpha".to_string()));
    }

    #[test]
    fn shard_seeds_are_distinct() {
        let r = ShardRouter::new(1234, 16);
        let seeds: std::collections::HashSet<u64> = (0..16).map(|i| r.shard_seed(i)).collect();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_is_rejected() {
        ShardRouter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn oversized_shard_count_is_rejected() {
        ShardRouter::new(0, MAX_SHARDS + 1);
    }
}
