//! Allocation-free k-way merge of per-shard sorted iterators.
//!
//! A hash-partitioned dictionary interleaves the key space across shards,
//! so a global range scan must merge `S` already-sorted shard iterators
//! back into one ascending stream. [`KWayMerge`] does this with **zero heap
//! allocations**: the shard iterators and their buffered heads live in
//! inline arrays bounded by [`MAX_SHARDS`], and
//! each `next()` is a linear scan over at most `S` buffered items — for the
//! shard counts this workspace targets (≤ 64, typically ≤ 16) that beats a
//! binary heap, which would pay allocation plus `log S` swaps of whole
//! iterator values per item.
//!
//! Ties (possible only if shards share keys, which a router-partitioned
//! dictionary never produces) resolve to the lowest shard index, so the
//! merge is deterministic for any input.

use crate::router::MAX_SHARDS;
use std::cmp::Ordering;

/// Merges up to [`MAX_SHARDS`] sorted iterators into one sorted stream.
///
/// `C` compares two items; the inputs must each be sorted under the same
/// comparator for the output to be sorted.
pub struct KWayMerge<I: Iterator, C> {
    iters: [Option<I>; MAX_SHARDS],
    /// `pending[i]` buffers the next unconsumed item of `iters[i]`.
    pending: [Option<I::Item>; MAX_SHARDS],
    len: usize,
    cmp: C,
}

impl<I, C> KWayMerge<I, C>
where
    I: Iterator,
    C: Fn(&I::Item, &I::Item) -> Ordering,
{
    /// Builds the merge over `iters` (each sorted under `cmp`).
    ///
    /// # Panics
    ///
    /// If more than [`MAX_SHARDS`] iterators are supplied.
    pub fn new(iters: impl IntoIterator<Item = I>, cmp: C) -> Self {
        let mut merged = Self {
            iters: std::array::from_fn(|_| None),
            pending: std::array::from_fn(|_| None),
            len: 0,
            cmp,
        };
        for mut it in iters {
            assert!(
                merged.len < MAX_SHARDS,
                "KWayMerge supports at most {MAX_SHARDS} inputs"
            );
            merged.pending[merged.len] = it.next();
            merged.iters[merged.len] = Some(it);
            merged.len += 1;
        }
        merged
    }
}

impl<I, C> Iterator for KWayMerge<I, C>
where
    I: Iterator,
    C: Fn(&I::Item, &I::Item) -> Ordering,
{
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        let mut best: Option<usize> = None;
        for i in 0..self.len {
            if let Some(item) = &self.pending[i] {
                best = match best {
                    None => Some(i),
                    // Strict `Less` keeps ties on the lowest shard index.
                    Some(b) => {
                        // hi-lint: allow(panic-surface): best only ever indexes slots this loop observed as pending
                        let incumbent = self.pending[b].as_ref().expect("best is pending");
                        if (self.cmp)(item, incumbent) == Ordering::Less {
                            Some(i)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
        }
        let b = best?;
        let item = self.pending[b].take();
        // hi-lint: allow(panic-surface): pending[b] was Some, so iterator slot b is still filled
        self.pending[b] = self.iters[b].as_mut().expect("slot b is filled").next();
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let buffered = self.pending.iter().flatten().count();
        let (mut lo, mut hi) = (buffered, Some(buffered));
        for it in self.iters.iter().flatten() {
            let (l, h) = it.size_hint();
            lo += l;
            hi = match (hi, h) {
                (Some(a), Some(b)) => a.checked_add(b),
                _ => None,
            };
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn merge_vecs(shards: Vec<Vec<u64>>) -> Vec<u64> {
        KWayMerge::new(shards.iter().map(|s| s.iter().copied()), |a, b| a.cmp(b)).collect()
    }

    #[test]
    fn merges_disjoint_sorted_inputs() {
        let out = merge_vecs(vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]]);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert_eq!(merge_vecs(vec![]), Vec::<u64>::new());
        assert_eq!(merge_vecs(vec![vec![], vec![], vec![]]), Vec::<u64>::new());
        assert_eq!(merge_vecs(vec![vec![], vec![5], vec![]]), vec![5]);
    }

    #[test]
    fn duplicate_boundaries_keep_every_copy_in_shard_order() {
        // Shards sharing keys never happens under router partitioning, but
        // the merge itself must stay deterministic: equal keys come out in
        // shard-index order, none dropped.
        let shards = vec![vec![1u64, 3, 3, 9], vec![3, 3, 5], vec![0, 3, 9]];
        let out = merge_vecs(shards);
        assert_eq!(out, vec![0, 1, 3, 3, 3, 3, 3, 5, 9, 9]);
    }

    #[test]
    fn tie_break_is_by_shard_index() {
        let shards: Vec<Vec<(u64, usize)>> = vec![vec![(7, 0)], vec![(7, 1)], vec![(7, 2)]];
        let out: Vec<(u64, usize)> =
            KWayMerge::new(shards.iter().map(|s| s.iter().copied()), |a, b| {
                a.0.cmp(&b.0)
            })
            .collect();
        assert_eq!(out, vec![(7, 0), (7, 1), (7, 2)]);
    }

    #[test]
    fn size_hint_is_exact_for_exact_inputs() {
        let shards = [vec![1u64, 2], vec![3, 4, 5]];
        let m = KWayMerge::new(shards.iter().map(|s| s.iter()), |a, b| a.cmp(b));
        assert_eq!(m.size_hint(), (5, Some(5)));
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn random_shard_contents_merge_to_the_sorted_union() {
        // Property test: partition random multisets across random shard
        // counts; the merge must equal the globally sorted concatenation.
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for trial in 0..200 {
            let shard_count = rng.gen_range(1..=9usize);
            let mut shards: Vec<Vec<u64>> = vec![Vec::new(); shard_count];
            let n = rng.gen_range(0..200usize);
            let mut all: Vec<u64> = Vec::with_capacity(n);
            for _ in 0..n {
                // Narrow key range on purpose: collisions across shards
                // exercise the tie-break path.
                let v = rng.gen_range(0..64u64);
                shards[rng.gen_range(0..shard_count)].push(v);
                all.push(v);
            }
            for s in &mut shards {
                s.sort_unstable();
            }
            all.sort_unstable();
            assert_eq!(merge_vecs(shards), all, "trial {trial} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_inputs_are_rejected() {
        let inputs: Vec<std::vec::IntoIter<u64>> = (0..MAX_SHARDS + 1)
            .map(|_| vec![1u64].into_iter())
            .collect();
        let _ = KWayMerge::new(inputs, |a: &u64, b: &u64| a.cmp(b));
    }
}
