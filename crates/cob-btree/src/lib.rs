//! The history-independent cache-oblivious B-tree (paper §5).
//!
//! The paper builds its cache-oblivious B-tree by *augmenting* the
//! history-independent PMA: alongside the rank tree (element counts per
//! range) a second, identically shaped van Emde Boas tree stores the **value
//! of every balance element**. A keyed search descends that value tree —
//! `O(log N)` comparisons, `O(log_B N)` I/Os, without knowing `B` — converts
//! the key to a rank, and then delegates to the PMA, whose leaves answer
//! range queries at the scan-optimal `O(k/B)` I/Os.
//!
//! In this workspace the augmented PMA lives inside [`pma::HiPma`] (which
//! maintains the value tree under exactly the same rebuild events as the
//! rank tree); [`CobBTree`] wraps it with a keyed [`Dictionary`] API:
//!
//! * `insert`, `remove`, `get` — amortized `O(log²N / B + log_B N)` I/Os whp;
//! * `range(a, b)` — `O(log_B N + k/B)` I/Os;
//! * `predecessor` / `successor` — one descent each.
//!
//! Because every layout decision is inherited from the HI PMA (size, balance
//! elements, even leaf spreading) and the two auxiliary trees are
//! deterministic functions of those decisions, the whole dictionary is weakly
//! history independent (Theorem 2).
//!
//! # Quick example
//!
//! ```
//! use cob_btree::CobBTree;
//! use hi_common::Dictionary;
//!
//! let mut index: CobBTree<u64, &'static str> = CobBTree::new(7);
//! index.insert(20, "twenty");
//! index.insert(10, "ten");
//! index.insert(30, "thirty");
//! assert_eq!(index.get(&20), Some("twenty"));
//! assert_eq!(index.range(&10, &20), vec![(10, "ten"), (20, "twenty")]);
//! assert_eq!(index.predecessor(&25).unwrap().0, 20);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};

use hi_common::counters::SharedCounters;
use hi_common::rng::RngSource;
use hi_common::traits::{below_end_bound, cloned_bounds, normalize_pairs, Dictionary};
use io_sim::Tracer;
use pma::HiPma;

/// A weakly history-independent, cache-oblivious B-tree: a keyed dictionary
/// backed by the augmented HI PMA.
#[derive(Debug, Clone)]
pub struct CobBTree<K: Ord + Clone, V: Clone> {
    pma: HiPma<(K, V)>,
}

impl<K: Ord + Clone, V: Clone> CobBTree<K, V> {
    /// Creates an empty tree seeded from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            pma: HiPma::new(seed),
        }
    }

    /// Creates an empty tree drawing its coins from OS entropy.
    pub fn from_entropy() -> Self {
        Self {
            // hi-lint: allow(entropy): forwards to the audited RngSource intake; production trees need a seed the observer cannot know
            pma: HiPma::from_entropy(),
        }
    }

    /// Creates an empty tree with explicit randomness, counters, I/O tracer
    /// and per-record on-disk size.
    pub fn with_parts(
        rng: RngSource,
        counters: SharedCounters,
        tracer: Tracer,
        elem_size: u64,
    ) -> Self {
        Self {
            pma: HiPma::with_parts(rng, counters, tracer, elem_size),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.pma.len()
    }

    /// Returns `true` when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.pma.is_empty()
    }

    /// The backing PMA (for diagnostics: geometry, occupancy, counters).
    pub fn pma(&self) -> &HiPma<(K, V)> {
        &self.pma
    }

    /// The shared operation counters.
    pub fn counters(&self) -> &SharedCounters {
        self.pma.counters()
    }

    /// The I/O tracer handle.
    pub fn tracer(&self) -> &Tracer {
        self.pma.tracer()
    }

    /// Total slots in the backing array (`Θ(N)`).
    pub fn total_slots(&self) -> usize {
        self.pma.total_slots()
    }

    /// Occupancy bitmap of the backing array — the memory-representation
    /// fingerprint used by the history-independence tests. See the
    /// [`Occupancy`](hi_common::traits::Occupancy) impl for the packed form.
    pub fn occupancy(&self) -> Vec<bool> {
        self.pma.occupancy()
    }

    /// Verifies the backing PMA's structural invariants plus key ordering.
    pub fn check_invariants(&self) {
        self.pma.check_invariants();
        let all = self.to_sorted_vec();
        for window in all.windows(2) {
            assert!(window[0].0 < window[1].0, "keys out of order");
        }
    }

    /// Rank of the first element with key ≥ `key`.
    fn lower_bound(&self, key: &K) -> usize {
        self.pma.lower_bound_by(|(k, _)| k.cmp(key))
    }

    /// Rank of the first element with key > `key`.
    fn upper_bound(&self, key: &K) -> usize {
        self.pma.lower_bound_by(|(k, _)| {
            if k <= key {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        })
    }

    /// Inserts a key–value pair, returning the previous value if present.
    /// The occupancy probe borrows the stored pair (no clone); only a
    /// replacement pays the delete + reinsert.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let rank = self.lower_bound(&key);
        if let Some((existing, _)) = self.pma.get_rank_ref(rank) {
            if *existing == key {
                // Replace: delete + reinsert at the same rank keeps the
                // layout distribution a function of the key set only.
                // hi-lint: allow(panic-surface): delete at the rank the probe just returned
                let (_, old_value) = self.pma.delete(rank).expect("rank just observed");
                self.pma
                    .insert(rank, (key, value))
                    // hi-lint: allow(panic-surface): reinsert at the rank the delete just vacated
                    .expect("rank still valid");
                return Some(old_value);
            }
        }
        self.pma
            .insert(rank, (key, value))
            // hi-lint: allow(panic-surface): lower_bound returns a rank <= len, the valid insertion range
            .expect("lower bound is a valid insertion rank");
        None
    }

    /// Removes a key, returning its value if present. The probe borrows the
    /// stored pair; only an actual removal moves it out.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let rank = self.lower_bound(key);
        match self.pma.get_rank_ref(rank) {
            Some((existing, _)) if existing == key => {
                // hi-lint: allow(panic-surface): delete at the rank the probe just returned
                let (_, v) = self.pma.delete(rank).expect("rank just observed");
                Some(v)
            }
            _ => None,
        }
    }

    /// Looks up a key, cloning the value.
    pub fn get(&self, key: &K) -> Option<V> {
        self.get_ref(key).cloned()
    }

    /// Borrows the value stored under `key` without copying it: one
    /// cache-oblivious descent, zero allocations.
    pub fn get_ref(&self, key: &K) -> Option<&V> {
        self.counters().add_query();
        let rank = self.lower_bound(key);
        match self.pma.get_rank_ref(rank) {
            Some((existing, v)) if existing == key => Some(v),
            _ => None,
        }
    }

    /// Lazily yields every pair whose key lies in `range`, in ascending key
    /// order: one descent to the first matching rank, then a sequential leaf
    /// scan at `O(log_B N + k/B)` I/Os with **no per-query allocation**.
    pub fn range_iter<R: RangeBounds<K>>(&self, range: R) -> impl Iterator<Item = (&K, &V)> {
        self.counters().add_query();
        let (start, end) = cloned_bounds(&range);
        let from = match &start {
            Bound::Included(k) => self.lower_bound(k),
            Bound::Excluded(k) => self.upper_bound(k),
            Bound::Unbounded => 0,
        };
        self.pma
            .iter_from(from)
            .take_while(move |(k, _)| below_end_bound(k, &end))
            .map(|(k, v)| (k, v))
    }

    /// Borrows every pair in ascending key order. Counts one query, like
    /// [`CobBTree::range_iter`] (which the `Dictionary` trait's `iter`
    /// default routes through).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.counters().add_query();
        self.pma.iter().map(|(k, v)| (k, v))
    }

    /// Returns every pair with `low ≤ key ≤ high`, in ascending key order.
    /// Pre-sized from the rank bounds, which give the exact result count.
    pub fn range(&self, low: &K, high: &K) -> Vec<(K, V)> {
        self.counters().add_query();
        if low > high || self.is_empty() {
            return Vec::new();
        }
        let start = self.lower_bound(low);
        let end = self.upper_bound(high);
        let mut out = Vec::with_capacity(end.saturating_sub(start));
        out.extend(
            self.pma
                .iter_from(start)
                .take(end.saturating_sub(start))
                .map(|(k, v)| (k.clone(), v.clone())),
        );
        out
    }

    /// Replaces the entire contents with `pairs`, drawing fresh coins from
    /// `seed` (see [`HiPma::bulk_load`]). The input need not be sorted or
    /// deduplicated — it is normalised (last write wins) so the resulting
    /// layout is a pure function of *(contents, seed)*, independent of
    /// arrival order. Cost is `O(n log n)` for the sort plus `O(n)` moves,
    /// against `O(n log² n)` moves for element-at-a-time insertion.
    pub fn bulk_load(&mut self, pairs: impl IntoIterator<Item = (K, V)>, seed: u64) {
        let pairs = normalize_pairs(pairs.into_iter().collect());
        self.pma.bulk_load(pairs, seed);
    }

    /// Smallest key ≥ `key`, with its value.
    pub fn successor(&self, key: &K) -> Option<(K, V)> {
        let rank = self.lower_bound(key);
        self.pma.get_rank(rank)
    }

    /// Largest key ≤ `key`, with its value.
    pub fn predecessor(&self, key: &K) -> Option<(K, V)> {
        let rank = self.upper_bound(key);
        if rank == 0 {
            None
        } else {
            self.pma.get_rank(rank - 1)
        }
    }

    /// Collects the whole dictionary in ascending key order.
    pub fn to_sorted_vec(&self) -> Vec<(K, V)> {
        if self.is_empty() {
            Vec::new()
        } else {
            self.pma
                .range_query(0, self.len() - 1)
                // hi-lint: allow(panic-surface): empty trees take the explicit empty-range branch; otherwise 0..len-1 is valid
                .expect("full range is valid")
        }
    }
}

impl<K: Ord + Clone, V: Clone> hi_common::traits::Occupancy for CobBTree<K, V> {
    fn slot_count(&self) -> usize {
        self.pma.total_slots()
    }

    fn occupancy_words(&self) -> &[u64] {
        hi_common::traits::Occupancy::occupancy_words(&self.pma)
    }
}

impl<K: Ord + Clone, V: Clone> Dictionary for CobBTree<K, V> {
    type Key = K;
    type Value = V;

    fn len(&self) -> usize {
        CobBTree::len(self)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        CobBTree::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        CobBTree::remove(self, key)
    }

    fn get_ref(&self, key: &K) -> Option<&V> {
        CobBTree::get_ref(self, key)
    }

    fn get(&self, key: &K) -> Option<V> {
        CobBTree::get(self, key)
    }

    fn range_iter<R: RangeBounds<K>>(&self, range: R) -> impl Iterator<Item = (&K, &V)> {
        CobBTree::range_iter(self, range)
    }

    fn range(&self, low: &K, high: &K) -> Vec<(K, V)> {
        CobBTree::range(self, low, high)
    }

    fn successor(&self, key: &K) -> Option<(K, V)> {
        CobBTree::successor(self, key)
    }

    fn predecessor(&self, key: &K) -> Option<(K, V)> {
        CobBTree::predecessor(self, key)
    }

    fn to_sorted_vec(&self) -> Vec<(K, V)> {
        CobBTree::to_sorted_vec(self)
    }

    fn bulk_load(&mut self, pairs: impl IntoIterator<Item = (K, V)>, seed: u64) {
        CobBTree::bulk_load(self, pairs, seed)
    }

    /// Group-commit batch: the shared keyed driver locates every distinct
    /// key with one left-to-right finger pass over the augmented PMA, then
    /// replays the operations in arrival order against the PMA's deferred
    /// batch surface — bit-identical to the per-op loop (an overwrite is
    /// the same delete + reinsert [`CobBTree::insert`] performs), with one
    /// merge-rebalance per touched leaf window.
    fn apply_batch(&mut self, ops: Vec<hi_common::batch::BatchOp<K, V>>) -> usize {
        hi_common::batch::apply_keyed_batch(&mut self.pma, ops)
    }

    fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        hi_common::batch::get_many_keyed(&self.pma, keys, || self.counters().add_query())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree() {
        let t: CobBTree<u64, u64> = CobBTree::new(0);
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert_eq!(t.range(&0, &10), vec![]);
        assert_eq!(t.successor(&1), None);
        assert_eq!(t.predecessor(&1), None);
        t.check_invariants();
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = CobBTree::new(1);
        for k in 0..1500u64 {
            assert_eq!(t.insert(k * 3, k), None);
        }
        assert_eq!(t.len(), 1500);
        for k in 0..1500u64 {
            assert_eq!(t.get(&(k * 3)), Some(k));
            assert_eq!(t.get(&(k * 3 + 1)), None);
        }
        for k in (0..1500u64).step_by(2) {
            assert_eq!(t.remove(&(k * 3)), Some(k));
        }
        assert_eq!(t.len(), 750);
        t.check_invariants();
    }

    #[test]
    fn insert_replaces_values() {
        let mut t = CobBTree::new(2);
        assert_eq!(t.insert(5, "a"), None);
        assert_eq!(t.insert(5, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&5), Some("b"));
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        let mut t: CobBTree<u64, u64> = CobBTree::new(3);
        let mut model = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(42);
        for step in 0..5000u64 {
            let key = rng.gen_range(0..900);
            match rng.gen_range(0..10) {
                0..=5 => assert_eq!(t.insert(key, step), model.insert(key, step), "step {step}"),
                6..=8 => assert_eq!(t.remove(&key), model.remove(&key), "step {step}"),
                _ => assert_eq!(t.get(&key), model.get(&key).copied(), "step {step}"),
            }
            if step % 1000 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        assert_eq!(
            t.to_sorted_vec(),
            model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_queries_match_model() {
        let mut t = CobBTree::new(4);
        let mut model = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2500 {
            let k = rng.gen_range(0..10_000u64);
            t.insert(k, k * 10);
            model.insert(k, k * 10);
        }
        for _ in 0..50 {
            let a = rng.gen_range(0..10_000u64);
            let b = rng.gen_range(a..10_000u64);
            let expected: Vec<(u64, u64)> = model.range(a..=b).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(t.range(&a, &b), expected);
        }
        // Degenerate ranges.
        assert_eq!(t.range(&5, &4), vec![]);
    }

    #[test]
    fn successor_predecessor_match_model() {
        let mut t = CobBTree::new(6);
        let mut model = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            let k = rng.gen_range(0..5_000u64);
            t.insert(k, k);
            model.insert(k, k);
        }
        for probe in (0..5_000u64).step_by(61) {
            let expected_succ = model.range(probe..).next().map(|(&k, &v)| (k, v));
            let expected_pred = model.range(..=probe).next_back().map(|(&k, &v)| (k, v));
            assert_eq!(t.successor(&probe), expected_succ, "succ {probe}");
            assert_eq!(t.predecessor(&probe), expected_pred, "pred {probe}");
        }
    }

    #[test]
    fn string_keys_work() {
        let mut t: CobBTree<String, u32> = CobBTree::new(9);
        for word in ["pear", "apple", "mango", "banana", "cherry"] {
            t.insert(word.to_string(), word.len() as u32);
        }
        assert_eq!(t.get(&"mango".to_string()), Some(5));
        let range = t.range(&"a".to_string(), &"c".to_string());
        assert_eq!(
            range.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["apple", "banana"]
        );
    }

    #[test]
    fn same_contents_same_distribution_regardless_of_history() {
        // Weak history independence at the dictionary level: inserting the
        // same key set in ascending vs. descending order (plus a
        // delete/reinsert episode) must not shift the layout distribution.
        // With a fixed seed the layout is a function of (contents, coins), so
        // we compare a coarse layout statistic across many seeds.
        let n = 150u64;
        let trials = 200u64;
        let mut first_slot_a = Vec::new();
        let mut first_slot_b = Vec::new();
        for t in 0..trials {
            let mut a = CobBTree::new(1_000 + t);
            for k in 0..n {
                a.insert(k, k);
            }
            let mut b = CobBTree::new(5_000 + t);
            for k in (0..n).rev() {
                b.insert(k, k);
            }
            for k in 0..n / 3 {
                b.remove(&k);
                b.insert(k, k);
            }
            assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
            let pos_a =
                a.occupancy().iter().position(|&x| x).unwrap() as f64 / a.total_slots() as f64;
            let pos_b =
                b.occupancy().iter().position(|&x| x).unwrap() as f64 / b.total_slots() as f64;
            first_slot_a.push(pos_a);
            first_slot_b.push(pos_b);
        }
        let mean_a: f64 = first_slot_a.iter().sum::<f64>() / trials as f64;
        let mean_b: f64 = first_slot_b.iter().sum::<f64>() / trials as f64;
        assert!(
            (mean_a - mean_b).abs() < 0.1,
            "layout statistic differs between histories: {mean_a} vs {mean_b}"
        );
    }

    #[test]
    fn traced_search_is_cheap() {
        use io_sim::IoConfig;
        let tracer = Tracer::enabled(IoConfig::new(4096, 1 << 14));
        let mut t: CobBTree<u64, u64> = CobBTree::with_parts(
            RngSource::from_seed(11),
            SharedCounters::new(),
            tracer.clone(),
            16,
        );
        for k in 0..30_000u64 {
            t.insert(k, k);
        }
        tracer.reset_cold();
        for probe in (0..30_000u64).step_by(293) {
            t.get(&probe);
        }
        let searches = 30_000 / 293 + 1;
        let per_search = tracer.stats().reads as f64 / searches as f64;
        // A full scan would be total_slots * 16 / 4096 ≈ hundreds of blocks;
        // a cache-oblivious search should touch a handful.
        assert!(
            per_search < 30.0,
            "per-search I/O {per_search} too high for a cache-oblivious B-tree"
        );
    }

    #[test]
    fn dictionary_trait_is_usable_generically() {
        fn sum_values<D: Dictionary<Key = u64, Value = u64>>(d: &D) -> u64 {
            d.to_sorted_vec().iter().map(|(_, v)| v).sum()
        }
        let mut t = CobBTree::new(13);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(sum_values(&t), 30);
    }
}

// Compile-time audit for the sharded service layer: the cache-oblivious
// B-tree (PMA + vEB trees + RNG + instrumentation handles) must be movable
// onto worker threads whenever its keys and values are.
#[cfg(test)]
mod send_sync_audit {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn cob_btree_is_send_and_sync() {
        assert_send_sync::<CobBTree<u64, u64>>();
        assert_send_sync::<CobBTree<String, Vec<u8>>>();
    }
}
