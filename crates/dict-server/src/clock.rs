//! The server's single clock access point.
//!
//! Wall-clock readings are *I/O policy* — epoch deadlines, socket
//! timeouts — and must never become layout input: the dictionary's at-rest
//! bytes are `f(contents, seed)` and timing only decides *when* batches
//! drain, never *what* they contain or in which arrival order. Confining
//! every `Instant` to this module keeps that auditable: hi-lint's
//! nondeterminism rule carves out exactly this file (see `hi-lint.toml`),
//! so a clock read creeping into routing or layout code anywhere else in
//! the crate still fails CI.

use std::sync::OnceLock;
use std::time::Instant;

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process's first call to this function.
///
/// A monotonic process-relative reading (never wall time): enough to
/// measure epoch ages and nothing else, so the value is useless as an
/// entropy or layout input even by accident.
pub fn now_micros() -> u64 {
    let anchor = *ANCHOR.get_or_init(Instant::now);
    Instant::now().duration_since(anchor).as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_process_relative() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(now_micros() > a);
    }
}
