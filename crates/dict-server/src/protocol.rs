//! The wire format: length-prefixed binary frames, hand-rolled on
//! `std::io` — no serde, no crates.io.
//!
//! # Frame grammar (protocol v2)
//!
//! ```text
//! frame    := len:u32be envelope
//! envelope := token:u64be sum:u32be body
//! body     := request | response          (direction decides which)
//!
//! request  := 0x01 key:u64be              GET
//!           | 0x02 key:u64be val:u64be    PUT
//!           | 0x03 key:u64be              DEL
//!           | 0x04 key:u64be              SUCC
//!           | 0x05 key:u64be              PRED
//!           | 0x06                        LEN
//!           | 0x07                        FLUSH
//!           | 0x08                        HEALTH
//!           | 0x09 shard:u64be reason:…   QUARANTINE (reason = rest of body, utf-8)
//!           | 0x0A shard:u64be            RESTORE
//!           | 0x0B                        PING
//!           | 0x0C client:u64be           HELLO (bind a client identity)
//!
//! response := 0x00                        DONE
//!           | 0x01 val:u64be              VALUE
//!           | 0x02                        NOT_FOUND
//!           | 0x03 key:u64be val:u64be    ENTRY
//!           | 0x04 n:u64be                COUNT
//!           | 0x05 gen:u64be              GENERATION
//!           | 0x06 shards:u64be k:u64be (shard:u64be rlen:u32be reason)*k   HEALTH
//!           | 0x10 shard:u64be reason:…   DEGRADED   (reason = rest of body)
//!           | 0x11                        OVERLOADED
//!           | 0x12 msg:…                  BAD_REQUEST
//!           | 0x13 msg:…                  UNAVAILABLE
//! ```
//!
//! `len` counts the envelope only and must lie in `1..=MAX_FRAME` (servers
//! may narrow the cap via configuration); a peer that announces more is told
//! `BAD_REQUEST` and disconnected before any byte of the oversized body is
//! read, so a hostile length prefix cannot reserve memory. Every numeric
//! field is big-endian. Strings are UTF-8 and always the *last* field of
//! their body, so their length is `len` minus the fixed prefix — no separate
//! count to cross-validate (the one exception is the HEALTH reason list,
//! whose entries carry an explicit `rlen` each).
//!
//! # The envelope: correlation, exactly-once, and integrity
//!
//! Every frame in *both* directions opens with a 12-byte envelope:
//!
//! * `token` — a client-drawn correlation id. The server echoes it verbatim
//!   on the response, so a pipelined client can match answers to requests
//!   even when a chaotic network duplicates or delays response frames. On
//!   mutating requests (`PUT`/`DEL`/`FLUSH`) from a `HELLO`-bound client it
//!   doubles as an **idempotency token**: the server's dedup window
//!   suppresses re-application of a token it has already answered and
//!   replays the retained response, making retries exactly-once.
//! * `sum` — a seeded checksum over `(token, body)` ([`frame_sum`]). TCP's
//!   16-bit checksum is famously porous; a flipped bit in a `PUT` value
//!   would otherwise be *applied* and acked. A sum mismatch decodes to a
//!   typed error — refused as `BAD_REQUEST` server-side, surfaced as a
//!   decode failure (and retried over a fresh connection) client-side —
//!   never a silently wrong value.
//!
//! Token 0 is reserved for "no correlation" (servers answer it but never
//! dedup it); `HELLO` with client id 0 is the anonymous default.

use std::io::{self, Read, Write};

/// Upper bound on a frame body in bytes. Requests are ≤ 17 bytes except
/// QUARANTINE's free-text reason; responses are small except HEALTH, whose
/// size is bounded by 64 shards × (bounded reason). 4 KiB covers both with
/// slack and caps what a hostile length prefix can make the server stage.
pub const MAX_FRAME: usize = 4096;

/// A client-to-server operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get { key: u64 },
    /// Upsert.
    Put { key: u64, value: u64 },
    /// Delete.
    Del { key: u64 },
    /// Smallest entry with key ≥ `key`.
    Succ { key: u64 },
    /// Largest entry with key ≤ `key`.
    Pred { key: u64 },
    /// Number of entries.
    Len,
    /// Canonicalize and commit the at-rest image; answers the committed
    /// generation.
    Flush,
    /// Shard-health snapshot.
    Health,
    /// Administratively quarantine a shard (health-management surface).
    Quarantine { shard: u64, reason: String },
    /// Re-admit a repaired shard.
    Restore { shard: u64 },
    /// Liveness probe; also a pure ordering marker in pipelined streams.
    Ping,
    /// Binds this connection to a client identity. The server keys its
    /// idempotency dedup window by this id, so a client that reconnects
    /// and re-HELLOs with the same id keeps its retry protection across
    /// connections. Id 0 is anonymous: answered, never deduped.
    Hello { client: u64 },
}

/// A server-to-client answer. Every variant is self-describing: a client
/// can always distinguish success, absence, degradation, shedding, and
/// protocol errors without out-of-band context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Acknowledged (PUT, DEL, PING, admin ops).
    Done,
    /// GET hit.
    Value(u64),
    /// GET/SUCC/PRED miss.
    NotFound,
    /// SUCC/PRED hit.
    Entry(u64, u64),
    /// LEN answer.
    Count(u64),
    /// FLUSH answer: the committed generation.
    Generation(u64),
    /// HEALTH answer: total shard count plus each quarantined shard's
    /// index and reason.
    Health {
        shards: u64,
        degraded: Vec<(u64, String)>,
    },
    /// The operation routed to (or could be answered by) a quarantined
    /// shard; refused rather than silently wrong.
    Degraded { shard: u64, reason: String },
    /// Shed by backpressure: the target shard's queue is full. Retry later.
    Overloaded,
    /// The peer's frame was malformed; the connection closes after this.
    BadRequest(String),
    /// The server cannot serve the request (shutting down, no persistence
    /// configured, storage error).
    Unavailable(String),
}

const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_DEL: u8 = 0x03;
const OP_SUCC: u8 = 0x04;
const OP_PRED: u8 = 0x05;
const OP_LEN: u8 = 0x06;
const OP_FLUSH: u8 = 0x07;
const OP_HEALTH: u8 = 0x08;
const OP_QUARANTINE: u8 = 0x09;
const OP_RESTORE: u8 = 0x0A;
const OP_PING: u8 = 0x0B;
const OP_HELLO: u8 = 0x0C;

const ST_DONE: u8 = 0x00;
const ST_VALUE: u8 = 0x01;
const ST_NOT_FOUND: u8 = 0x02;
const ST_ENTRY: u8 = 0x03;
const ST_COUNT: u8 = 0x04;
const ST_GENERATION: u8 = 0x05;
const ST_HEALTH: u8 = 0x06;
const ST_DEGRADED: u8 = 0x10;
const ST_OVERLOADED: u8 = 0x11;
const ST_BAD_REQUEST: u8 = 0x12;
const ST_UNAVAILABLE: u8 = 0x13;

/// Why a body failed to decode. The server folds this into a
/// [`Response::BadRequest`] whose text names the defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn err(msg: impl Into<String>) -> DecodeError {
    DecodeError(msg.into())
}

/// Little cursor over a frame body; every read is bounds-checked so a
/// truncated body decodes to a typed error, never a panic or a wrap.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .buf
            .get(self.at)
            .ok_or_else(|| err("body truncated: expected u8"))?;
        self.at += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let end = self
            .at
            .checked_add(4)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| err("body truncated: expected u32"))?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.buf[self.at..end]);
        self.at = end;
        Ok(u32::from_be_bytes(raw))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let end = self
            .at
            .checked_add(8)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| err("body truncated: expected u64"))?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.at..end]);
        self.at = end;
        Ok(u64::from_be_bytes(raw))
    }

    fn rest_utf8(&mut self) -> Result<String, DecodeError> {
        let s = std::str::from_utf8(&self.buf[self.at..])
            .map_err(|_| err("trailing string is not utf-8"))?
            .to_string();
        self.at = self.buf.len();
        Ok(s)
    }

    fn take_utf8(&mut self, n: usize) -> Result<String, DecodeError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| err("body truncated: expected string bytes"))?;
        let s = std::str::from_utf8(&self.buf[self.at..end])
            .map_err(|_| err("string is not utf-8"))?
            .to_string();
        self.at = end;
        Ok(s)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(err(format!(
                "{} trailing byte(s) after a complete body",
                self.buf.len() - self.at
            )))
        }
    }
}

impl Request {
    /// Serializes the request body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17);
        match self {
            Request::Get { key } => {
                out.push(OP_GET);
                out.extend_from_slice(&key.to_be_bytes());
            }
            Request::Put { key, value } => {
                out.push(OP_PUT);
                out.extend_from_slice(&key.to_be_bytes());
                out.extend_from_slice(&value.to_be_bytes());
            }
            Request::Del { key } => {
                out.push(OP_DEL);
                out.extend_from_slice(&key.to_be_bytes());
            }
            Request::Succ { key } => {
                out.push(OP_SUCC);
                out.extend_from_slice(&key.to_be_bytes());
            }
            Request::Pred { key } => {
                out.push(OP_PRED);
                out.extend_from_slice(&key.to_be_bytes());
            }
            Request::Len => out.push(OP_LEN),
            Request::Flush => out.push(OP_FLUSH),
            Request::Health => out.push(OP_HEALTH),
            Request::Quarantine { shard, reason } => {
                out.push(OP_QUARANTINE);
                out.extend_from_slice(&shard.to_be_bytes());
                out.extend_from_slice(reason.as_bytes());
            }
            Request::Restore { shard } => {
                out.push(OP_RESTORE);
                out.extend_from_slice(&shard.to_be_bytes());
            }
            Request::Ping => out.push(OP_PING),
            Request::Hello { client } => {
                out.push(OP_HELLO);
                out.extend_from_slice(&client.to_be_bytes());
            }
        }
        out
    }

    /// Parses a request body (no length prefix).
    pub fn decode(body: &[u8]) -> Result<Self, DecodeError> {
        let mut c = Cursor::new(body);
        let op = c.u8()?;
        let req = match op {
            OP_GET => Request::Get { key: c.u64()? },
            OP_PUT => Request::Put {
                key: c.u64()?,
                value: c.u64()?,
            },
            OP_DEL => Request::Del { key: c.u64()? },
            OP_SUCC => Request::Succ { key: c.u64()? },
            OP_PRED => Request::Pred { key: c.u64()? },
            OP_LEN => Request::Len,
            OP_FLUSH => Request::Flush,
            OP_HEALTH => Request::Health,
            OP_QUARANTINE => Request::Quarantine {
                shard: c.u64()?,
                reason: c.rest_utf8()?,
            },
            OP_RESTORE => Request::Restore { shard: c.u64()? },
            OP_PING => Request::Ping,
            OP_HELLO => Request::Hello { client: c.u64()? },
            other => return Err(err(format!("unknown request opcode 0x{other:02X}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17);
        match self {
            Response::Done => out.push(ST_DONE),
            Response::Value(v) => {
                out.push(ST_VALUE);
                out.extend_from_slice(&v.to_be_bytes());
            }
            Response::NotFound => out.push(ST_NOT_FOUND),
            Response::Entry(k, v) => {
                out.push(ST_ENTRY);
                out.extend_from_slice(&k.to_be_bytes());
                out.extend_from_slice(&v.to_be_bytes());
            }
            Response::Count(n) => {
                out.push(ST_COUNT);
                out.extend_from_slice(&n.to_be_bytes());
            }
            Response::Generation(g) => {
                out.push(ST_GENERATION);
                out.extend_from_slice(&g.to_be_bytes());
            }
            Response::Health { shards, degraded } => {
                out.push(ST_HEALTH);
                out.extend_from_slice(&shards.to_be_bytes());
                out.extend_from_slice(&(degraded.len() as u64).to_be_bytes());
                for (shard, reason) in degraded {
                    out.extend_from_slice(&shard.to_be_bytes());
                    out.extend_from_slice(&(reason.len() as u32).to_be_bytes());
                    out.extend_from_slice(reason.as_bytes());
                }
            }
            Response::Degraded { shard, reason } => {
                out.push(ST_DEGRADED);
                out.extend_from_slice(&shard.to_be_bytes());
                out.extend_from_slice(reason.as_bytes());
            }
            Response::Overloaded => out.push(ST_OVERLOADED),
            Response::BadRequest(msg) => {
                out.push(ST_BAD_REQUEST);
                out.extend_from_slice(msg.as_bytes());
            }
            Response::Unavailable(msg) => {
                out.push(ST_UNAVAILABLE);
                out.extend_from_slice(msg.as_bytes());
            }
        }
        out
    }

    /// Parses a response body (no length prefix).
    pub fn decode(body: &[u8]) -> Result<Self, DecodeError> {
        let mut c = Cursor::new(body);
        let st = c.u8()?;
        let resp = match st {
            ST_DONE => Response::Done,
            ST_VALUE => Response::Value(c.u64()?),
            ST_NOT_FOUND => Response::NotFound,
            ST_ENTRY => Response::Entry(c.u64()?, c.u64()?),
            ST_COUNT => Response::Count(c.u64()?),
            ST_GENERATION => Response::Generation(c.u64()?),
            ST_HEALTH => {
                let shards = c.u64()?;
                let k = c.u64()?;
                if k > shards {
                    return Err(err("health: more degraded entries than shards"));
                }
                let mut degraded = Vec::with_capacity(k as usize);
                for _ in 0..k {
                    let shard = c.u64()?;
                    let rlen = c.u32()? as usize;
                    degraded.push((shard, c.take_utf8(rlen)?));
                }
                Response::Health { shards, degraded }
            }
            ST_DEGRADED => Response::Degraded {
                shard: c.u64()?,
                reason: c.rest_utf8()?,
            },
            ST_OVERLOADED => Response::Overloaded,
            ST_BAD_REQUEST => Response::BadRequest(c.rest_utf8()?),
            ST_UNAVAILABLE => Response::Unavailable(c.rest_utf8()?),
            other => return Err(err(format!("unknown response status 0x{other:02X}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Bytes the v2 envelope prepends to every body: `token:u64be sum:u32be`.
pub const ENVELOPE_BYTES: usize = 12;

/// SplitMix64 finalizer — the workspace's stand-in for a seeded hash.
/// Pure function of its input; no entropy.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The envelope checksum: a splitmix64 fold over the token, the body
/// length and every body word. Deterministic, dependency-free, and strong
/// enough that any single flipped bit (the fault model's unit of wire
/// corruption) changes the sum.
pub fn frame_sum(token: u64, body: &[u8]) -> u32 {
    let mut acc = mix(token ^ (body.len() as u64));
    for chunk in body.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = mix(acc ^ u64::from_be_bytes(word));
    }
    (acc ^ (acc >> 32)) as u32
}

fn encode_envelope(token: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_BYTES + body.len());
    out.extend_from_slice(&token.to_be_bytes());
    out.extend_from_slice(&frame_sum(token, body).to_be_bytes());
    out.extend_from_slice(body);
    out
}

fn decode_envelope(framed: &[u8]) -> Result<(u64, &[u8]), DecodeError> {
    if framed.len() < ENVELOPE_BYTES {
        return Err(err(format!(
            "envelope truncated: {} byte(s), need at least {ENVELOPE_BYTES}",
            framed.len()
        )));
    }
    let mut t = [0u8; 8];
    t.copy_from_slice(&framed[..8]);
    let token = u64::from_be_bytes(t);
    let mut s = [0u8; 4];
    s.copy_from_slice(&framed[8..ENVELOPE_BYTES]);
    let sum = u32::from_be_bytes(s);
    let body = &framed[ENVELOPE_BYTES..];
    if frame_sum(token, body) != sum {
        return Err(err("frame checksum mismatch"));
    }
    Ok((token, body))
}

/// Best-effort token extraction for error replies: the first 8 bytes of
/// the envelope when present, 0 otherwise. Used to echo a token back on a
/// frame whose body (or checksum) failed to decode.
pub fn envelope_token(framed: &[u8]) -> u64 {
    match framed.get(..8) {
        Some(raw) => {
            let mut t = [0u8; 8];
            t.copy_from_slice(raw);
            u64::from_be_bytes(t)
        }
        None => 0,
    }
}

/// Serializes one enveloped request frame body (no length prefix).
pub fn encode_request(token: u64, req: &Request) -> Vec<u8> {
    encode_envelope(token, &req.encode())
}

/// Parses one enveloped request frame body, validating the checksum.
pub fn decode_request(framed: &[u8]) -> Result<(u64, Request), DecodeError> {
    let (token, body) = decode_envelope(framed)?;
    Ok((token, Request::decode(body)?))
}

/// Serializes one enveloped response frame body (no length prefix).
pub fn encode_response(token: u64, resp: &Response) -> Vec<u8> {
    encode_envelope(token, &resp.encode())
}

/// Parses one enveloped response frame body, validating the checksum.
pub fn decode_response(framed: &[u8]) -> Result<(u64, Response), DecodeError> {
    let (token, body) = decode_envelope(framed)?;
    Ok((token, Response::decode(body)?))
}

/// What [`read_frame`] observed on the wire.
#[derive(Debug)]
pub enum Frame {
    /// A complete body within bounds.
    Body(Vec<u8>),
    /// The peer closed cleanly between frames.
    Eof,
    /// The length prefix exceeded the reader's bound ([`MAX_FRAME`] by
    /// default) or was zero. The body was *not* read; the connection
    /// should answer `BAD_REQUEST` and close.
    Oversized(u32),
}

/// Reads one length-prefixed frame with the default [`MAX_FRAME`] bound.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Frame> {
    read_frame_limit(stream, MAX_FRAME)
}

/// Reads one length-prefixed frame, bounding the body at `max_frame`
/// bytes. A disconnect *inside* a frame (after some prefix or body bytes
/// arrived) is an `UnexpectedEof` error — distinct from the clean
/// between-frames [`Frame::Eof`].
pub fn read_frame_limit(stream: &mut impl Read, max_frame: usize) -> io::Result<Frame> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match stream.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(Frame::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "disconnect inside a length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len == 0 || len as usize > max_frame {
        return Ok(Frame::Oversized(len));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(Frame::Body(body))
}

/// Writes one length-prefixed frame.
pub fn write_frame(stream: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(!body.is_empty() && body.len() <= MAX_FRAME);
    stream.write_all(&(body.len() as u32).to_be_bytes())?;
    stream.write_all(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(r: Request) {
        assert_eq!(Request::decode(&r.encode()), Ok(r));
    }

    fn round_trip_response(r: Response) {
        assert_eq!(Response::decode(&r.encode()), Ok(r));
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::Get { key: 0 });
        round_trip_request(Request::Get { key: u64::MAX });
        round_trip_request(Request::Put { key: 7, value: 9 });
        round_trip_request(Request::Del { key: 3 });
        round_trip_request(Request::Succ { key: 1 });
        round_trip_request(Request::Pred { key: 2 });
        round_trip_request(Request::Len);
        round_trip_request(Request::Flush);
        round_trip_request(Request::Health);
        round_trip_request(Request::Quarantine {
            shard: 5,
            reason: "scrub: checksum mismatch".into(),
        });
        round_trip_request(Request::Quarantine {
            shard: 0,
            reason: String::new(),
        });
        round_trip_request(Request::Restore { shard: 5 });
        round_trip_request(Request::Ping);
        round_trip_request(Request::Hello { client: 0 });
        round_trip_request(Request::Hello { client: u64::MAX });
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(Response::Done);
        round_trip_response(Response::Value(42));
        round_trip_response(Response::NotFound);
        round_trip_response(Response::Entry(1, 2));
        round_trip_response(Response::Count(0));
        round_trip_response(Response::Generation(u64::MAX));
        round_trip_response(Response::Health {
            shards: 8,
            degraded: vec![(2, "panicked".into()), (5, String::new())],
        });
        round_trip_response(Response::Degraded {
            shard: 3,
            reason: "storage".into(),
        });
        round_trip_response(Response::Overloaded);
        round_trip_response(Response::BadRequest("why".into()));
        round_trip_response(Response::Unavailable("shutting down".into()));
    }

    #[test]
    fn truncated_bodies_decode_to_typed_errors() {
        // Fixed-size bodies: every proper prefix must fail with a typed
        // error (never panic, never mis-decode as something shorter).
        for body in [
            Request::Put { key: 7, value: 9 }.encode(),
            Request::Get { key: 3 }.encode(),
            Request::Restore { shard: 2 }.encode(),
        ] {
            for cut in 0..body.len() {
                assert!(Request::decode(&body[..cut]).is_err(), "cut at {cut}");
            }
        }
        for body in [
            Response::Entry(1, 2).encode(),
            Response::Value(9).encode(),
            Response::Health {
                shards: 4,
                degraded: vec![(1, "x".into())],
            }
            .encode(),
        ] {
            for cut in 0..body.len() {
                assert!(Response::decode(&body[..cut]).is_err(), "cut at {cut}");
            }
        }
        // Variable-length tails legally shrink, but every cut must still
        // decode cleanly — to an error or to a shorter valid body, never a
        // panic.
        let body = Request::Quarantine {
            shard: 1,
            reason: "reason".into(),
        }
        .encode();
        for cut in 0..body.len() {
            let _ = Request::decode(&body[..cut]);
        }
        assert!(Request::decode(&[]).is_err());
        assert!(Response::decode(&[]).is_err());
        assert!(Request::decode(&[0xFF]).is_err());
        assert!(Response::decode(&[0xFF]).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = Request::Len.encode();
        body.push(0);
        assert!(Request::decode(&body).is_err());
        let mut body = Response::Value(1).encode();
        body.push(9);
        assert!(Response::decode(&body).is_err());
    }

    #[test]
    fn health_with_inflated_count_is_rejected() {
        // k > shards would otherwise drive a huge with_capacity from 16
        // attacker bytes.
        let mut body = vec![ST_HEALTH];
        body.extend_from_slice(&1u64.to_be_bytes());
        body.extend_from_slice(&u64::MAX.to_be_bytes());
        assert!(Response::decode(&body).is_err());
    }

    #[test]
    fn envelope_round_trips_and_rejects_every_single_bit_corruption() {
        let req = Request::Put { key: 7, value: 9 };
        let framed = encode_request(0xDEAD_BEEF_u64, &req);
        assert_eq!(decode_request(&framed), Ok((0xDEAD_BEEF_u64, req.clone())));
        assert_eq!(envelope_token(&framed), 0xDEAD_BEEF_u64);

        let resp = Response::Value(42);
        let framed_resp = encode_response(3, &resp);
        assert_eq!(decode_response(&framed_resp), Ok((3, resp)));

        // Any single flipped bit anywhere in the envelope — token, sum,
        // or body — must surface as a typed decode error, never a
        // different (token, request) pair.
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut hurt = framed.clone();
                hurt[byte] ^= 1 << bit;
                match decode_request(&hurt) {
                    Err(_) => {}
                    Ok((t, r)) => panic!("bit {bit} of byte {byte} flipped silently: ({t}, {r:?})"),
                }
            }
        }
        // Every proper prefix of the enveloped frame is typed-rejected.
        for cut in 0..framed.len() {
            assert!(decode_request(&framed[..cut]).is_err(), "cut at {cut}");
        }
        assert_eq!(envelope_token(&[1, 2, 3]), 0);
    }

    #[test]
    fn frame_reader_respects_a_custom_limit() {
        let body = vec![7u8; 64];
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).expect("vec write");
        let mut rd: &[u8] = &framed;
        assert!(matches!(
            read_frame_limit(&mut rd, 32),
            Ok(Frame::Oversized(64))
        ));
        let mut rd: &[u8] = &framed;
        assert!(matches!(read_frame_limit(&mut rd, 64), Ok(Frame::Body(b)) if b == body));
    }

    #[test]
    fn frame_reader_distinguishes_eof_oversize_and_midframe_cut() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Ok(Frame::Eof)));

        let mut partial_prefix: &[u8] = &[0, 0];
        assert_eq!(
            read_frame(&mut partial_prefix)
                .expect_err("cut inside prefix")
                .kind(),
            io::ErrorKind::UnexpectedEof
        );

        let mut oversized: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        assert!(matches!(
            read_frame(&mut oversized),
            Ok(Frame::Oversized(0xFFFF_FFFF))
        ));
        let mut zero: &[u8] = &[0, 0, 0, 0];
        assert!(matches!(read_frame(&mut zero), Ok(Frame::Oversized(0))));

        let mut cut_body: &[u8] = &[0, 0, 0, 9, 1, 2];
        assert_eq!(
            read_frame(&mut cut_body)
                .expect_err("cut inside body")
                .kind(),
            io::ErrorKind::UnexpectedEof
        );

        let mut ok = Vec::new();
        write_frame(&mut ok, &Request::Ping.encode()).expect("vec write");
        let mut rd: &[u8] = &ok;
        match read_frame(&mut rd).expect("well-formed") {
            Frame::Body(b) => assert_eq!(Request::decode(&b), Ok(Request::Ping)),
            other => panic!("expected a body, got {other:?}"),
        }
    }
}
