//! Network front-end for the sharded history-independent dictionary.
//!
//! Three layers, one crate:
//!
//! - [`protocol`] — the hand-rolled length-prefixed binary wire format
//!   (`std::io` only; see the module docs for the full grammar).
//! - [`server`] — the TCP server: thread-per-connection framing feeding an
//!   epoch group-commit pipeline that drains through the sharded batch
//!   engine and responds in arrival order, with bounded queues
//!   (shed-on-overload) and typed degradation for quarantined shards.
//! - [`client`] — a small blocking client used by the load generator and
//!   the protocol/determinism batteries, with count-based exactly-once
//!   retries (one idempotency token per logical operation, resent
//!   verbatim; the server dedups inside a bounded per-client window).
//! - [`netfault`] — deterministic, count-based wire-fault injection (a
//!   [`netfault::ChaosProxy`] armed with [`netfault::NetFaultPlan`]s),
//!   the network mirror of `block_store`'s disk fault plans.
//!
//! The load-bearing invariant is stated and argued in `server`'s module
//! docs and pinned by `tests/server_determinism.rs`: request interleaving,
//! client count and epoch timing can shift *when* batches commit, but the
//! at-rest bytes stay the pure function `f(contents, seed)`.

#![forbid(unsafe_code)]

pub mod client;
mod clock;
pub mod netfault;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientConfig, ClientError};
pub use netfault::{ChaosProxy, NetFault, NetFaultPlan};
pub use protocol::{Frame, Request, Response, MAX_FRAME};
pub use server::{Server, ServerOptions};
