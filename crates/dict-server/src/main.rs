//! `dict-server`: serve a sharded HI dictionary over TCP.
//!
//! ```text
//! dict-server [--addr 127.0.0.1:0] [--addr-file PATH]
//!             [--backend hi-pma] [--seed N] [--shards N]
//!             [--epoch-micros N] [--epoch-ops N] [--queue-bound N]
//!             [--acceptors N] [--parallel-threshold N]
//!             [--max-frame N] [--dedup-window N] [--inflight-bound N]
//!             [--write-timeout-millis N] [--idle-timeout-millis N]
//!             [--persist PATH]
//! ```
//!
//! Binds the address (port 0 picks an ephemeral port), prints the bound
//! address on stdout as `listening on ADDR`, optionally writes the bare
//! address to `--addr-file` (how `ci.sh` discovers the port), then serves
//! until the process is killed. With `--persist`, the `FLUSH` operation
//! canonicalizes the served contents into the given block-store file.

use std::process::ExitCode;
use std::str::FromStr;

use anti_persistence::dict::{Backend, Dict, DictConfig};
use dict_server::{Server, ServerOptions};

struct Args {
    addr: String,
    addr_file: Option<String>,
    persist: Option<String>,
    config: DictConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        addr_file: None,
        persist: None,
        config: DictConfig {
            backend: Backend::HiPma,
            seed: 7,
            shards: 4,
            ..DictConfig::default()
        },
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--addr-file" => args.addr_file = Some(value("--addr-file")?),
            "--persist" => args.persist = Some(value("--persist")?),
            "--backend" => {
                args.config.backend = Backend::from_str(&value("--backend")?)?;
            }
            "--seed" => args.config.seed = parse_num(&value("--seed")?, "--seed")?,
            "--shards" => {
                args.config.shards = parse_num::<usize>(&value("--shards")?, "--shards")?;
            }
            "--epoch-micros" => {
                args.config.server.epoch_micros =
                    parse_num(&value("--epoch-micros")?, "--epoch-micros")?;
            }
            "--epoch-ops" => {
                args.config.server.epoch_ops = parse_num(&value("--epoch-ops")?, "--epoch-ops")?;
            }
            "--queue-bound" => {
                args.config.server.queue_bound =
                    parse_num(&value("--queue-bound")?, "--queue-bound")?;
            }
            "--acceptors" => {
                args.config.server.acceptors = parse_num(&value("--acceptors")?, "--acceptors")?;
            }
            "--parallel-threshold" => {
                args.config.parallel_threshold =
                    parse_num(&value("--parallel-threshold")?, "--parallel-threshold")?;
            }
            "--max-frame" => {
                args.config.server.max_frame = parse_num(&value("--max-frame")?, "--max-frame")?;
            }
            "--dedup-window" => {
                args.config.server.dedup_window =
                    parse_num(&value("--dedup-window")?, "--dedup-window")?;
            }
            "--inflight-bound" => {
                args.config.server.inflight_bound =
                    parse_num(&value("--inflight-bound")?, "--inflight-bound")?;
            }
            "--write-timeout-millis" => {
                args.config.server.write_timeout = std::time::Duration::from_millis(parse_num(
                    &value("--write-timeout-millis")?,
                    "--write-timeout-millis",
                )?);
            }
            "--idle-timeout-millis" => {
                args.config.server.idle_timeout = std::time::Duration::from_millis(parse_num(
                    &value("--idle-timeout-millis")?,
                    "--idle-timeout-millis",
                )?);
            }
            other => return Err(format!("unknown flag {other:?} (see the crate docs)")),
        }
    }
    Ok(args)
}

fn parse_num<T: FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: {raw:?} is not a valid number"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let persist = match &args.persist {
        Some(path) => Some(
            Dict::builder()
                .backend(args.config.backend)
                .seed(args.config.seed)
                .build_persistent(path)
                .map_err(|e| format!("--persist {path}: {e}"))?,
        ),
        None => None,
    };
    let server = Server::spawn(
        &args.addr,
        ServerOptions {
            config: args.config,
            persist,
        },
    )
    .map_err(|e| format!("bind {}: {e}", args.addr))?;
    println!("listening on {}", server.addr());
    if let Some(path) = &args.addr_file {
        std::fs::write(path, server.addr().to_string())
            .map_err(|e| format!("--addr-file {path}: {e}"))?;
    }
    // Serve until killed; the worker threads own all the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dict-server: {msg}");
            ExitCode::FAILURE
        }
    }
}
