//! Deterministic wire-fault injection: the network mirror of
//! `block_store`'s disk fault plans.
//!
//! A [`NetFaultPlan`] is a list of count-based [`NetFault`]s over the
//! *frame index* of one proxied direction — frame 0 is the first complete
//! length-prefixed frame relayed, frame 1 the second, and so on. No fault
//! consults a clock or a random source at injection time: which frame is
//! dropped, duplicated, truncated, delayed, flipped, or reset is a pure
//! function of the plan and the frame count, so a chaos run replays
//! bit-identically (the same discipline `block_store::FaultPlan` pins for
//! torn disk writes).
//!
//! A [`ChaosProxy`] sits between a real client and a real server, relays
//! whole frames in both directions, and applies one plan per direction.
//! Plan clones share their counters, and the counters span proxied
//! connections: a fault armed at frame `N` fires exactly once no matter
//! how many times the client reconnects through the proxy, which is what
//! makes "retry until the budget runs out" convergent in the soak tests.
//!
//! Faults are **frame-granular** except [`NetFault::Truncate`], which
//! cuts *inside* its frame (prefix, envelope, or body) and then severs
//! the connection — the wire-level torn write.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a blocked proxy read waits before re-checking shutdown.
const RELAY_POLL: Duration = Duration::from_millis(10);

/// Largest frame the proxy will buffer (prefix excluded). Generous —
/// the served protocol caps frames far lower; a prefix beyond this is a
/// corrupt stream and severs the connection.
const PROXY_MAX_FRAME: usize = 1 << 20;

/// One deterministic wire fault, addressed by frame index within its
/// plan's direction. All indices are counts, never times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Frame `at` is read off the source and never forwarded — the
    /// lost-request / lost-ack case.
    Drop { at: u64 },
    /// Frame `at` is forwarded twice back to back — the network-level
    /// duplicate the dedup window must suppress.
    Duplicate { at: u64 },
    /// Only the first `bytes` bytes of frame `at` (length prefix
    /// included) are forwarded, then both directions sever — the torn
    /// frame. `bytes` past the frame end degrades to a plain reset after
    /// a whole forward.
    Truncate { at: u64, bytes: usize },
    /// Frame `at` is held back and released only after `hold` subsequent
    /// frames pass (or at end of stream) — reordering it into a later
    /// epoch.
    Delay { at: u64, hold: u64 },
    /// Every frame whose index satisfies `mix(seed ^ index) % one_in == 0`
    /// has one seeded bit flipped past the length prefix — corruption the
    /// envelope checksum must catch. `one_in` of 0 never fires.
    BitFlip { seed: u64, one_in: u64 },
    /// The connection severs (both directions) just before frame `at`
    /// would forward.
    Reset { at: u64 },
    /// From frame `at` on, this direction goes half-open: bytes are read
    /// and discarded, nothing is forwarded, and the connection is *not*
    /// closed — the silent blackhole a deadline must escape.
    Stall { at: u64 },
}

/// What the proxy does with one frame (first matching fault wins; no
/// fault means forward unchanged).
enum Action {
    Forward,
    Drop,
    Duplicate,
    Truncate(usize),
    Delay(u64),
    FlipBit(u64),
    Reset,
    Stall,
}

struct PlanState {
    /// Next frame index to claim (monotonic across proxied connections).
    next: u64,
}

/// A deterministic, count-based wire-fault plan for one relay direction.
/// Clones share state, so the test keeps a handle while the proxy injects
/// — and frame counts keep advancing across reconnects.
#[derive(Clone, Default)]
pub struct NetFaultPlan {
    faults: Vec<NetFault>,
    shared: Option<Arc<Mutex<PlanState>>>,
}

impl NetFaultPlan {
    /// The no-fault plan: every frame forwards unchanged.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan armed with `faults` (checked per frame in order; the first
    /// match decides the frame's fate).
    pub fn new(faults: Vec<NetFault>) -> Self {
        Self {
            faults,
            shared: Some(Arc::new(Mutex::new(PlanState { next: 0 }))),
        }
    }

    fn state(&self) -> Option<std::sync::MutexGuard<'_, PlanState>> {
        self.shared
            .as_ref()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Claims the next frame index for this direction.
    fn begin_frame(&self) -> u64 {
        match self.state() {
            Some(mut st) => {
                let idx = st.next;
                st.next += 1;
                idx
            }
            None => 0,
        }
    }

    /// How many frames this plan has seen so far (test observability).
    pub fn frames_seen(&self) -> u64 {
        self.state().map(|st| st.next).unwrap_or(0)
    }

    /// The fate of frame `index`: the first matching armed fault wins.
    fn action(&self, index: u64) -> Action {
        for fault in &self.faults {
            match *fault {
                NetFault::Drop { at } if index == at => return Action::Drop,
                NetFault::Duplicate { at } if index == at => return Action::Duplicate,
                NetFault::Truncate { at, bytes } if index == at => return Action::Truncate(bytes),
                NetFault::Delay { at, hold } if index == at => return Action::Delay(hold),
                NetFault::BitFlip { seed, one_in }
                    if one_in > 0 && mix(seed ^ index).is_multiple_of(one_in) =>
                {
                    return Action::FlipBit(seed)
                }
                NetFault::Reset { at } if index == at => return Action::Reset,
                NetFault::Stall { at } if index >= at => return Action::Stall,
                _ => {}
            }
        }
        Action::Forward
    }
}

/// SplitMix64 finalizer — seeded bit selection for [`NetFault::BitFlip`].
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Flips one seeded bit of `framed` past the 4-byte length prefix, so
/// framing survives but the envelope (or body) is corrupt. Frames with no
/// payload past the prefix pass unchanged.
fn flip_bit(framed: &mut [u8], seed: u64, index: u64) {
    let payload_bits = framed.len().saturating_sub(4) * 8;
    if payload_bits == 0 {
        return;
    }
    let bit = (mix(seed ^ index ^ 0xF11B) % payload_bits as u64) as usize;
    framed[4 + bit / 8] ^= 1 << (bit % 8);
}

/// A TCP proxy that relays whole frames between a client and an upstream
/// server, applying one [`NetFaultPlan`] per direction. Arm it from a
/// test, point the client at [`ChaosProxy::addr`], and every fault is a
/// deterministic function of frame counts.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    relays: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and relays every accepted connection
    /// to `upstream`, with `c2s` governing client→server frames and `s2c`
    /// server→client frames.
    pub fn spawn(
        upstream: impl ToSocketAddrs,
        c2s: NetFaultPlan,
        s2c: NetFaultPlan,
    ) -> io::Result<ChaosProxy> {
        let upstream = upstream.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "upstream resolved to nothing")
        })?;
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let relays: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let relays = Arc::clone(&relays);
            std::thread::spawn(move || {
                accept_loop(&listener, upstream, &c2s, &s2c, &stop, &relays);
            })
        };
        Ok(ChaosProxy {
            addr,
            stop,
            acceptor: Some(acceptor),
            relays,
        })
    }

    /// The proxy's listening address — point the client here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, severs in-flight relays, and joins every thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // A nudge connection unblocks the acceptor's blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = self
            .relays
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    c2s: &NetFaultPlan,
    s2c: &NetFaultPlan,
    stop: &Arc<AtomicBool>,
    relays: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(RELAY_POLL);
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(server) = TcpStream::connect(upstream) else {
            continue;
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        let (Ok(client_rd), Ok(server_rd)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        let up = {
            let plan = c2s.clone();
            let stop = Arc::clone(stop);
            std::thread::spawn(move || relay(client_rd, server, &plan, &stop))
        };
        let down = {
            let plan = s2c.clone();
            let stop = Arc::clone(stop);
            std::thread::spawn(move || relay(server_rd, client, &plan, &stop))
        };
        let mut guard = relays.lock().unwrap_or_else(PoisonError::into_inner);
        guard.push(up);
        guard.push(down);
    }
}

/// What one poll-tolerant attempt to fill a buffer observed.
enum Pull {
    Full,
    Closed,
    Stopped,
}

/// Fills `buf` from `src`, tolerating read-timeout polls (used to observe
/// `stop`) and preserving partial progress. A close — clean boundary or
/// mid-buffer — just ends the relay, so both collapse into
/// [`Pull::Closed`].
fn pull(src: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> Pull {
    let mut filled = 0;
    while filled < buf.len() {
        match src.read(&mut buf[filled..]) {
            Ok(0) => return Pull::Closed,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Pull::Stopped;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Pull::Closed,
        }
    }
    Pull::Full
}

/// Severs both halves of the relayed connection.
fn sever(src: &TcpStream, dst: &TcpStream) {
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// One relay direction: read whole frames off `src`, consult the plan,
/// write the survivors to `dst`. Held (delayed) frames release after
/// their hold count elapses, or all together at end of stream — never
/// silently vanish.
fn relay(mut src: TcpStream, dst: TcpStream, plan: &NetFaultPlan, stop: &Arc<AtomicBool>) {
    let _ = src.set_read_timeout(Some(RELAY_POLL));
    let _ = dst.set_write_timeout(Some(Duration::from_secs(5)));
    // `&TcpStream` implements `Write`, so the writer view and the
    // `sever(&src, &dst)` view coexist without a second descriptor.
    let mut w = &dst;
    // Frames held by a Delay fault: `(release_at_index, frame_bytes)`.
    let mut held: Vec<(u64, Vec<u8>)> = Vec::new();
    // Once stalled, the relay blackholes: reads and discards forever.
    let mut stalled = false;
    loop {
        let mut prefix = [0u8; 4];
        match pull(&mut src, &mut prefix, stop) {
            Pull::Full => {}
            Pull::Closed => break,
            Pull::Stopped => {
                sever(&src, &dst);
                return;
            }
        }
        let len = u32::from_be_bytes(prefix) as usize;
        if len == 0 || len > PROXY_MAX_FRAME {
            // Corrupt stream past repair: sever rather than guess.
            sever(&src, &dst);
            return;
        }
        let mut framed = vec![0u8; 4 + len];
        framed[..4].copy_from_slice(&prefix);
        match pull(&mut src, &mut framed[4..], stop) {
            Pull::Full => {}
            Pull::Closed => break,
            Pull::Stopped => {
                sever(&src, &dst);
                return;
            }
        }
        if stalled {
            continue;
        }
        let index = plan.begin_frame();
        let wrote = match plan.action(index) {
            Action::Forward => w.write_all(&framed),
            Action::Drop => Ok(()),
            Action::Duplicate => w.write_all(&framed).and_then(|()| w.write_all(&framed)),
            Action::Truncate(bytes) => {
                let cut = bytes.min(framed.len());
                let _ = w.write_all(&framed[..cut]);
                let _ = w.flush();
                sever(&src, &dst);
                return;
            }
            Action::Delay(hold) => {
                held.push((index + hold, framed));
                Ok(())
            }
            Action::FlipBit(seed) => {
                flip_bit(&mut framed, seed, index);
                w.write_all(&framed)
            }
            Action::Reset => {
                sever(&src, &dst);
                return;
            }
            Action::Stall => {
                stalled = true;
                continue;
            }
        };
        if wrote.is_err() {
            break;
        }
        // Release any held frames whose hold has elapsed, in order.
        let mut i = 0;
        let mut dead = false;
        while i < held.len() {
            if held[i].0 <= index {
                let (_, frame) = held.remove(i);
                if w.write_all(&frame).is_err() {
                    dead = true;
                    break;
                }
            } else {
                i += 1;
            }
        }
        if dead || w.flush().is_err() {
            break;
        }
    }
    // End of stream: flush held frames (delayed, not lost), then pass the
    // close through so the peer observes EOF.
    if !stalled {
        for (_, frame) in held.drain(..) {
            let _ = w.write_all(&frame);
        }
        let _ = w.flush();
    }
    let _ = src.shutdown(Shutdown::Read);
    let _ = dst.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_counts_frames_and_fires_by_index() {
        let plan = NetFaultPlan::new(vec![NetFault::Drop { at: 1 }, NetFault::Reset { at: 3 }]);
        let clone = plan.clone();
        assert!(matches!(plan.action(0), Action::Forward));
        assert!(matches!(plan.action(1), Action::Drop));
        assert!(matches!(plan.action(2), Action::Forward));
        assert!(matches!(plan.action(3), Action::Reset));
        // Clones share the counter.
        assert_eq!(plan.begin_frame(), 0);
        assert_eq!(clone.begin_frame(), 1);
        assert_eq!(plan.frames_seen(), 2);
    }

    #[test]
    fn first_matching_fault_wins() {
        let plan = NetFaultPlan::new(vec![
            NetFault::Duplicate { at: 2 },
            NetFault::Drop { at: 2 },
        ]);
        assert!(matches!(plan.action(2), Action::Duplicate));
    }

    #[test]
    fn stall_is_sticky_from_its_index() {
        let plan = NetFaultPlan::new(vec![NetFault::Stall { at: 2 }]);
        assert!(matches!(plan.action(1), Action::Forward));
        assert!(matches!(plan.action(2), Action::Stall));
        assert!(matches!(plan.action(7), Action::Stall));
    }

    #[test]
    fn bit_flip_is_seed_deterministic_and_spares_the_prefix() {
        let mut a = vec![0u8; 4 + 16];
        let mut b = a.clone();
        flip_bit(&mut a, 7, 3);
        flip_bit(&mut b, 7, 3);
        assert_eq!(a, b, "same seed and index flip the same bit");
        assert_eq!(&a[..4], &[0u8; 4], "length prefix is never touched");
        let flipped: u32 = a.iter().map(|x| x.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flips");
    }

    #[test]
    fn bare_proxy_relays_frames_untouched() {
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let up_addr = upstream.local_addr().expect("upstream addr");
        let echo = std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().expect("accept");
            let mut buf = [0u8; 9];
            s.read_exact(&mut buf).expect("read framed");
            s.write_all(&buf).expect("echo back");
        });
        let mut proxy = ChaosProxy::spawn(up_addr, NetFaultPlan::none(), NetFaultPlan::none())
            .expect("proxy spawns");
        let mut c = TcpStream::connect(proxy.addr()).expect("connect via proxy");
        let frame = [0u8, 0, 0, 5, b'h', b'e', b'l', b'l', b'o'];
        c.write_all(&frame).expect("send");
        let mut back = [0u8; 9];
        c.read_exact(&mut back).expect("recv");
        assert_eq!(back, frame);
        echo.join().expect("echo thread");
        proxy.shutdown();
    }
}
