//! A small blocking client: one TCP connection, synchronous
//! request/response plus a split send/recv surface for pipelining (the
//! load generator and the protocol batteries both drive it).
//!
//! # Exactly-once retries
//!
//! Every frame carries a client-drawn correlation token (protocol v2).
//! The synchronous helpers ([`Client::get`], [`Client::put`], …) run
//! through [`Client::roundtrip`]: one token per *logical* operation,
//! reused verbatim across every retry attempt, so a server that already
//! applied the first attempt recognizes the resend inside its dedup
//! window and replays the retained response instead of applying twice.
//! That protection requires a client identity — construct with
//! [`ClientConfig::client_id`] ≠ 0 and the client binds it via `HELLO` on
//! every (re)connect. Identity 0 is anonymous: correlation still works,
//! dedup does not, so retried mutations may double-apply (fine for
//! idempotent value-overwrite workloads, wrong for anything counting).
//!
//! Failure handling is typed ([`ClientError`]) and the retry budget is
//! count-based — a fixed number of attempts with a doubling backoff
//! `Duration`, no deadline arithmetic — so the client stays inside the
//! workspace's determinism-hygiene rules (no `Instant` outside
//! `clock.rs`).

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use anti_persistence::dict::DictConfigError;

use crate::protocol::{
    decode_response, encode_request, read_frame_limit, Frame, Request, Response, MAX_FRAME,
};

/// How many consecutive non-matching (stale or duplicated) response
/// frames the client skips while hunting for one token before declaring
/// the stream desynchronized.
const STALE_SKIP_BOUND: usize = 256;

/// Client-side knobs, validated at [`Client::connect_with`] time through
/// the same [`DictConfigError`] surface the server uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// The identity bound via `HELLO` on every (re)connect. `0` means
    /// anonymous: no HELLO is sent and the server never dedups this
    /// client's retries. Pick distinct nonzero ids per logical client.
    pub client_id: u64,
    /// Socket read timeout (nonzero): how long one [`Client::recv`] waits
    /// for a response frame before surfacing [`ClientError::Timeout`].
    pub read_timeout: Duration,
    /// Retry budget in *attempts* (`≥ 1`) for the synchronous helpers —
    /// count-based, so exhaustion is a deterministic function of the
    /// fault sequence, not of scheduling luck.
    pub retry_budget: usize,
    /// Backoff slept before the second attempt; doubles per attempt.
    pub backoff: Duration,
    /// Largest response frame accepted (`≥ 1` bytes, envelope included).
    pub max_frame: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            client_id: 0,
            read_timeout: Duration::from_secs(10),
            retry_budget: 1,
            backoff: Duration::from_millis(20),
            max_frame: MAX_FRAME,
        }
    }
}

impl ClientConfig {
    /// Rejects degenerate knob values with the named-knob errors the rest
    /// of the workspace uses.
    pub fn validate(&self) -> Result<(), DictConfigError> {
        if self.retry_budget == 0 {
            return Err(DictConfigError::ZeroRetryBudget);
        }
        if self.read_timeout.is_zero() {
            return Err(DictConfigError::ZeroReadTimeout);
        }
        if self.max_frame == 0 {
            return Err(DictConfigError::ZeroMaxFrame);
        }
        Ok(())
    }
}

/// Everything that can go wrong on the client side of the wire, typed.
#[derive(Debug)]
pub enum ClientError {
    /// The [`ClientConfig`] was degenerate (named knob inside).
    Config(DictConfigError),
    /// A transport error that is none of the recognized shapes below.
    Io(io::Error),
    /// No response arrived within the configured read timeout.
    Timeout,
    /// The server (or the path to it) closed or reset the connection.
    ServerReset,
    /// The response frame failed to decode — checksum mismatch, torn
    /// body, or an unknown status byte. The value inside is the typed
    /// decode message; the connection is dropped, never trusted further.
    Decode(String),
    /// The response stream no longer lines up with the requests sent:
    /// a response for `got` arrived while `expected` was still owed.
    Desync { expected: u64, got: u64 },
    /// The server announced a frame larger than the configured bound.
    Oversized(u32),
    /// The retry budget ran out; `last` is the final attempt's error.
    RetryExhausted {
        attempts: usize,
        last: Box<ClientError>,
    },
    /// The server answered, but not with a shape this call can use
    /// (degraded shard, overload shed, refusal, …) — the typed response
    /// is carried whole.
    Unexpected(Response),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Config(e) => write!(f, "client configuration rejected: {e}"),
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Timeout => write!(f, "timed out waiting for a response"),
            ClientError::ServerReset => write!(f, "server closed or reset the connection"),
            ClientError::Decode(msg) => write!(f, "response failed to decode: {msg}"),
            ClientError::Desync { expected, got } => write!(
                f,
                "response stream desynchronized: expected token {expected}, got {got}"
            ),
            ClientError::Oversized(len) => {
                write!(f, "server sent an oversized frame ({len} bytes)")
            }
            ClientError::RetryExhausted { attempts, last } => {
                write!(
                    f,
                    "retry budget exhausted after {attempts} attempt(s): {last}"
                )
            }
            ClientError::Unexpected(resp) => write!(f, "server answered {resp:?}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Config(e) => Some(e),
            ClientError::Io(e) => Some(e),
            ClientError::RetryExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::Timeout,
            io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected => ClientError::ServerReset,
            _ => ClientError::Io(e),
        }
    }
}

impl ClientError {
    /// Whether a fresh attempt (reconnect + resend under the same token)
    /// can plausibly succeed. Everything transport-shaped retries; config
    /// errors and typed server answers do not.
    fn retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Timeout
                | ClientError::ServerReset
                | ClientError::Io(_)
                | ClientError::Decode(_)
                | ClientError::Desync { .. }
                | ClientError::Oversized(_)
        )
    }
}

/// Whether a typed server answer is a transient refusal worth retrying
/// (the shed path and the corrupt-frame path), as opposed to a durable
/// state the caller must see (degraded shard, unavailable flush).
fn transient_refusal(resp: &Response) -> bool {
    matches!(resp, Response::Overloaded | Response::BadRequest(_))
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A connected client. Requests may be pipelined: `send` any number of
/// requests, then `recv` exactly that many responses — the server answers
/// in arrival order per connection, and the client matches them back up
/// by token.
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    conn: Option<Conn>,
    next_token: u64,
    /// Tokens sent but not yet answered, in send order (the server
    /// answers per-connection in arrival order, so this is a FIFO).
    pending: VecDeque<u64>,
}

impl Client {
    /// Connects with the default [`ClientConfig`] (anonymous, 10 s read
    /// timeout, no retries).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Validates `cfg`, resolves `addr`, connects, and — when
    /// `cfg.client_id` is nonzero — binds the identity via `HELLO`.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        cfg: ClientConfig,
    ) -> Result<Client, ClientError> {
        cfg.validate().map_err(ClientError::Config)?;
        let addr = addr
            .to_socket_addrs()
            .map_err(ClientError::Io)?
            .next()
            .ok_or_else(|| {
                ClientError::Io(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "address resolved to nothing",
                ))
            })?;
        let mut client = Client {
            addr,
            cfg,
            conn: None,
            next_token: 0,
            pending: VecDeque::new(),
        };
        client.ensure_conn()?;
        Ok(client)
    }

    /// The next correlation token: a simple counter, unique per client
    /// lifetime. Zero is reserved (no correlation), so draws start at 1.
    fn draw_token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// Opens the TCP connection if none is live, re-binding the client
    /// identity via `HELLO` so the dedup window survives reconnects.
    fn ensure_conn(&mut self) -> Result<(), ClientError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some(Conn {
            reader,
            writer: BufWriter::new(stream),
        });
        self.pending.clear();
        if self.cfg.client_id != 0 {
            let hello_token = self.draw_token();
            let hello = Request::Hello {
                client: self.cfg.client_id,
            };
            self.write_framed(hello_token, &hello)?;
            self.flush_conn()?;
            match self.read_matching(hello_token) {
                Ok(Response::Done) => {}
                Ok(other) => {
                    self.drop_conn();
                    return Err(ClientError::Unexpected(other));
                }
                Err(e) => {
                    self.drop_conn();
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn drop_conn(&mut self) {
        self.conn = None;
        self.pending.clear();
    }

    fn write_framed(&mut self, token: u64, req: &Request) -> Result<(), ClientError> {
        let framed = encode_request(token, req);
        let Some(conn) = self.conn.as_mut() else {
            return Err(ClientError::ServerReset);
        };
        let write = (|| -> io::Result<()> {
            conn.writer
                .write_all(&(framed.len() as u32).to_be_bytes())?;
            conn.writer.write_all(&framed)
        })();
        write.map_err(|e| {
            self.drop_conn();
            ClientError::from(e)
        })
    }

    fn flush_conn(&mut self) -> Result<(), ClientError> {
        let Some(conn) = self.conn.as_mut() else {
            return Err(ClientError::ServerReset);
        };
        conn.writer.flush().map_err(|e| {
            self.drop_conn();
            ClientError::from(e)
        })
    }

    /// Reads one enveloped response frame off the live connection.
    fn read_one(&mut self) -> Result<(u64, Response), ClientError> {
        let max_frame = self.cfg.max_frame;
        let Some(conn) = self.conn.as_mut() else {
            return Err(ClientError::ServerReset);
        };
        let frame = read_frame_limit(&mut conn.reader, max_frame);
        let parsed = match frame {
            Ok(Frame::Body(body)) => decode_response(&body).map_err(|e| ClientError::Decode(e.0)),
            Ok(Frame::Eof) => Err(ClientError::ServerReset),
            Ok(Frame::Oversized(len)) => Err(ClientError::Oversized(len)),
            Err(e) => Err(ClientError::from(e)),
        };
        parsed.inspect_err(|_| self.drop_conn())
    }

    /// Reads frames until one carries `token`, skipping a bounded number
    /// of stale frames (responses whose ops already concluded — e.g. a
    /// duplicated frame injected on the wire). A frame for a *different
    /// still-pending* token means the stream lost a response: typed
    /// desync, connection dropped.
    fn read_matching(&mut self, token: u64) -> Result<Response, ClientError> {
        for _ in 0..STALE_SKIP_BOUND {
            let (got, resp) = self.read_one()?;
            if got == token {
                return Ok(resp);
            }
            if self.pending.contains(&got) {
                self.drop_conn();
                return Err(ClientError::Desync {
                    expected: token,
                    got,
                });
            }
            // Stale (already-answered or duplicated) frame: skip it.
        }
        self.drop_conn();
        Err(ClientError::Desync {
            expected: token,
            got: 0,
        })
    }

    /// Writes one request frame into the send buffer (pipelining form —
    /// call [`Self::flush`] or [`Self::recv`] to push it out) and returns
    /// its correlation token.
    pub fn send(&mut self, req: &Request) -> Result<u64, ClientError> {
        self.ensure_conn()?;
        let token = self.draw_token();
        self.write_framed(token, req)?;
        self.pending.push_back(token);
        Ok(token)
    }

    /// Flushes buffered request frames to the socket.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.flush_conn()
    }

    /// Reads the response to the *oldest* unanswered [`Self::send`]
    /// (flushing pending sends first, so a plain send/recv pair never
    /// deadlocks on a buffered request).
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        self.flush_conn()?;
        let Some(&expected) = self.pending.front() else {
            return Err(ClientError::Desync {
                expected: 0,
                got: 0,
            });
        };
        self.pending.pop_front();
        let mut skips = 0;
        loop {
            let (got, resp) = self.read_one()?;
            if got == expected {
                return Ok(resp);
            }
            if self.pending.contains(&got) {
                self.drop_conn();
                return Err(ClientError::Desync { expected, got });
            }
            skips += 1;
            if skips >= STALE_SKIP_BOUND {
                self.drop_conn();
                return Err(ClientError::Desync { expected, got });
            }
        }
    }

    /// One synchronous round trip, *without* retries (the pipelined
    /// surface's pairing of one send and one recv).
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }

    /// One logical operation with the configured retry budget: the token
    /// is drawn once and resent verbatim on every attempt, so a
    /// HELLO-bound client's retried mutation is applied exactly once no
    /// matter which attempt's frames survived the wire.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let token = self.draw_token();
        let mut backoff = self.cfg.backoff;
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.cfg.retry_budget {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            let outcome = self.attempt(token, req);
            match outcome {
                Ok(resp) => {
                    if transient_refusal(&resp) && attempt + 1 < self.cfg.retry_budget {
                        self.drop_conn();
                        last = Some(ClientError::Unexpected(resp));
                        continue;
                    }
                    return Ok(resp);
                }
                Err(e) if e.retryable() && attempt + 1 < self.cfg.retry_budget => {
                    last = Some(e);
                }
                Err(e) if e.retryable() => {
                    return Err(ClientError::RetryExhausted {
                        attempts: self.cfg.retry_budget,
                        last: Box::new(e),
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::RetryExhausted {
            attempts: self.cfg.retry_budget,
            last: Box::new(last.unwrap_or(ClientError::Timeout)),
        })
    }

    /// One attempt of [`Self::roundtrip`]: (re)connect, send under
    /// `token`, wait for the matching response.
    fn attempt(&mut self, token: u64, req: &Request) -> Result<Response, ClientError> {
        self.ensure_conn()?;
        self.write_framed(token, req)?;
        self.flush_conn()?;
        self.read_matching(token)
    }

    /// Point lookup: `Ok(Some(v))` on a hit, `Ok(None)` on a miss; any
    /// non-answer (degraded, overloaded, …) surfaces as
    /// [`ClientError::Unexpected`] carrying the typed response.
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, ClientError> {
        match self.roundtrip(&Request::Get { key })? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Upsert.
    pub fn put(&mut self, key: u64, value: u64) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Put { key, value })? {
            Response::Done => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Delete (acknowledged whether or not the key existed).
    pub fn del(&mut self, key: u64) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Del { key })? {
            Response::Done => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Smallest entry with key ≥ `key`.
    pub fn successor(&mut self, key: u64) -> Result<Option<(u64, u64)>, ClientError> {
        match self.roundtrip(&Request::Succ { key })? {
            Response::Entry(k, v) => Ok(Some((k, v))),
            Response::NotFound => Ok(None),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Largest entry with key ≤ `key`.
    pub fn predecessor(&mut self, key: u64) -> Result<Option<(u64, u64)>, ClientError> {
        match self.roundtrip(&Request::Pred { key })? {
            Response::Entry(k, v) => Ok(Some((k, v))),
            Response::NotFound => Ok(None),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Number of entries.
    pub fn len(&mut self) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Len)? {
            Response::Count(n) => Ok(n),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Whether the served dictionary is empty.
    pub fn is_empty(&mut self) -> Result<bool, ClientError> {
        Ok(self.len()? == 0)
    }

    /// Commits the at-rest image; returns the committed generation. A
    /// retried `FLUSH` from a HELLO-bound client replays the retained
    /// generation instead of committing a second image.
    pub fn flush_store(&mut self) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Flush)? {
            Response::Generation(g) => Ok(g),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Shard-health snapshot: `(shard_count, [(shard, reason)…])`.
    #[allow(clippy::type_complexity)]
    pub fn health(&mut self) -> Result<(u64, Vec<(u64, String)>), ClientError> {
        match self.roundtrip(&Request::Health)? {
            Response::Health { shards, degraded } => Ok((shards, degraded)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Liveness probe (also what keeps an otherwise-idle connection from
    /// the server's idle reaper).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Done => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
