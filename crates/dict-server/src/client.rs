//! A small blocking client: one TCP connection, synchronous
//! request/response plus a split send/recv surface for pipelining (the
//! load generator and the protocol batteries both drive it).

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{read_frame, write_frame, Frame, Request, Response};

/// A connected client. Requests may be pipelined: `send` any number of
/// requests, then `recv` exactly that many responses — the server answers
/// in arrival order per connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects (TCP, `NODELAY`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Writes one request frame into the send buffer (pipelining form —
    /// call [`Self::flush`] or [`Self::recv`] to push it out).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.writer, &req.encode())
    }

    /// Flushes buffered request frames to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Reads one response frame (flushing pending sends first, so a plain
    /// send/recv pair never deadlocks on a buffered request).
    pub fn recv(&mut self) -> io::Result<Response> {
        self.writer.flush()?;
        match read_frame(&mut self.reader)? {
            Frame::Body(body) => {
                Response::decode(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.0))
            }
            Frame::Eof => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            )),
            Frame::Oversized(len) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server sent an oversized frame ({len} bytes)"),
            )),
        }
    }

    /// One synchronous round trip.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    /// Point lookup: `Ok(Some(v))` on a hit, `Ok(None)` on a miss; any
    /// non-answer (degraded, overloaded, …) surfaces as a typed
    /// [`io::Error`] naming the response.
    pub fn get(&mut self, key: u64) -> io::Result<Option<u64>> {
        match self.request(&Request::Get { key })? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(unexpected(other)),
        }
    }

    /// Upsert.
    pub fn put(&mut self, key: u64, value: u64) -> io::Result<()> {
        match self.request(&Request::Put { key, value })? {
            Response::Done => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Delete (acknowledged whether or not the key existed).
    pub fn del(&mut self, key: u64) -> io::Result<()> {
        match self.request(&Request::Del { key })? {
            Response::Done => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Smallest entry with key ≥ `key`.
    pub fn successor(&mut self, key: u64) -> io::Result<Option<(u64, u64)>> {
        match self.request(&Request::Succ { key })? {
            Response::Entry(k, v) => Ok(Some((k, v))),
            Response::NotFound => Ok(None),
            other => Err(unexpected(other)),
        }
    }

    /// Largest entry with key ≤ `key`.
    pub fn predecessor(&mut self, key: u64) -> io::Result<Option<(u64, u64)>> {
        match self.request(&Request::Pred { key })? {
            Response::Entry(k, v) => Ok(Some((k, v))),
            Response::NotFound => Ok(None),
            other => Err(unexpected(other)),
        }
    }

    /// Number of entries.
    pub fn len(&mut self) -> io::Result<u64> {
        match self.request(&Request::Len)? {
            Response::Count(n) => Ok(n),
            other => Err(unexpected(other)),
        }
    }

    /// Whether the served dictionary is empty.
    pub fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Commits the at-rest image; returns the committed generation.
    pub fn flush_store(&mut self) -> io::Result<u64> {
        match self.request(&Request::Flush)? {
            Response::Generation(g) => Ok(g),
            other => Err(unexpected(other)),
        }
    }

    /// Shard-health snapshot: `(shard_count, [(shard, reason)…])`.
    #[allow(clippy::type_complexity)]
    pub fn health(&mut self) -> io::Result<(u64, Vec<(u64, String)>)> {
        match self.request(&Request::Health)? {
            Response::Health { shards, degraded } => Ok((shards, degraded)),
            other => Err(unexpected(other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.request(&Request::Ping)? {
            Response::Done => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> io::Error {
    io::Error::other(format!("server answered {resp:?}"))
}
